#include "store/snapshot.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <limits>
#include <memory>
#include <utility>

#include "core/features.h"
#include "store/writer.h"

namespace staq::store {
namespace {

// Section catalog. Every section is independently checksummed; the load
// path resolves them by name, so adding sections (format evolution) never
// shifts existing readers.
constexpr char kMeta[] = "meta";
constexpr char kCitySpec[] = "city/spec";
constexpr char kCityZones[] = "city/zones";
constexpr char kCityRoad[] = "city/road";
constexpr char kCityPois[] = "city/pois";
constexpr char kFeedStops[] = "feed/stops";
constexpr char kFeedRoutes[] = "feed/routes";
constexpr char kFeedTrips[] = "feed/trips";
constexpr char kFeedStopTimes[] = "feed/stop_times";
constexpr char kOfflineInterval[] = "offline/interval";
constexpr char kOfflineIso[] = "offline/iso";
constexpr char kOfflineHop[] = "offline/hop";
constexpr char kScenarioPois[] = "scenario/pois";

std::string LabelSection(size_t i, const char* leaf) {
  return "label/" + std::to_string(i) + "/" + leaf;
}

util::Status Malformed(const std::string& section) {
  return util::Status::DataLoss("snapshot section '" + section +
                                "' decodes short or malformed");
}

util::Status Inconsistent(const std::string& section, const std::string& why) {
  return util::Status::InvalidArgument("snapshot section '" + section +
                                       "': " + why);
}

/// Reads a zigzag varint into a bounded int (spec knobs, times).
bool ReadInt(ByteReader* in, int* out) {
  int64_t v;
  if (!in->ReadZigZag64(&v)) return false;
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool ReadTime(ByteReader* in, gtfs::TimeOfDay* out) {
  int v;
  if (!ReadInt(in, &v)) return false;
  *out = static_cast<gtfs::TimeOfDay>(v);
  return true;
}

uint64_t SectionElementCount(const Reader& reader, const std::string& name) {
  for (const SectionEntry& entry : reader.sections()) {
    if (entry.name == name) return entry.element_count;
  }
  return 0;
}

// --- POI column (shared by city, scenario, and per-state POI sets) ---------

void PutPois(std::vector<uint8_t>* out, const std::vector<synth::Poi>& pois) {
  std::vector<uint32_t> ids;
  std::vector<uint8_t> categories;
  std::vector<geo::Point> positions;
  ids.reserve(pois.size());
  categories.reserve(pois.size());
  positions.reserve(pois.size());
  for (const synth::Poi& poi : pois) {
    ids.push_back(poi.id);
    categories.push_back(static_cast<uint8_t>(poi.category));
    positions.push_back(poi.position);
  }
  PutDeltaColumn(out, ids);
  PutFixedColumn(out, categories);
  PutFixedColumn(out, positions);
}

util::Status ReadPois(ByteReader* in, const std::string& section,
                      std::vector<synth::Poi>* out) {
  std::vector<uint32_t> ids;
  std::vector<uint8_t> categories;
  std::vector<geo::Point> positions;
  if (!ReadDeltaColumn(in, &ids) || !ReadFixedColumn(in, &categories) ||
      !ReadFixedColumn(in, &positions)) {
    return Malformed(section);
  }
  if (categories.size() != ids.size() || positions.size() != ids.size()) {
    return Inconsistent(section, "POI column lengths differ");
  }
  out->clear();
  out->reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    if (categories[i] >= synth::kNumPoiCategories) {
      return Inconsistent(section, "POI category out of range");
    }
    synth::Poi poi;
    poi.id = ids[i];
    poi.category = static_cast<synth::PoiCategory>(categories[i]);
    poi.position = positions[i];
    out->push_back(poi);
  }
  return util::Status::OK();
}

// --- encoders --------------------------------------------------------------

std::vector<uint8_t> EncodeMeta(const serve::Scenario& scenario,
                                uint64_t base_sequence, uint32_t next_poi_id,
                                uint64_t num_states) {
  const synth::City& city = scenario.base_city();
  std::vector<uint8_t> b;
  PutVarint64(&b, base_sequence + scenario.epoch());
  PutVarint64(&b, next_poi_id);
  PutVarint64(&b, num_states);
  PutLengthPrefixed(&b, city.spec.name);
  PutLengthPrefixed(&b, scenario.interval().label);
  PutVarint64(&b, city.zones.size());
  PutVarint64(&b, scenario.pois().size());
  PutVarint64(&b, city.feed.num_stops());
  PutVarint64(&b, city.feed.num_trips());
  PutVarint64(&b, city.feed.num_stop_times());
  return b;
}

std::vector<uint8_t> EncodeSpec(const synth::City& city) {
  const synth::CitySpec& spec = city.spec;
  std::vector<uint8_t> b;
  PutLengthPrefixed(&b, spec.name);
  PutFixed(&b, spec.seed);
  PutFixed(&b, spec.scale);
  PutZigZag64(&b, spec.zones_x);
  PutZigZag64(&b, spec.zones_y);
  PutFixed(&b, spec.zone_spacing_m);
  PutFixed(&b, spec.centre_density_scale_m);
  PutZigZag64(&b, spec.road_nodes_per_zone_axis);
  PutFixed(&b, spec.diagonal_edge_prob);
  PutFixed(&b, spec.road_detour_factor);
  PutZigZag64(&b, spec.num_radial_routes);
  PutZigZag64(&b, spec.num_orbital_routes);
  PutZigZag64(&b, spec.num_crosstown_routes);
  PutFixed(&b, spec.stop_spacing_m);
  PutFixed(&b, spec.bus_speed_mps);
  PutFixed(&b, spec.dwell_s);
  PutFixed(&b, spec.peak_headway_s);
  PutFixed(&b, spec.offpeak_headway_s);
  PutFixed(&b, spec.weekend_headway_multiplier);
  PutFixed(&b, spec.route_headway_jitter);
  PutFixed(&b, spec.flat_fare);
  PutZigZag64(&b, spec.service_start_hour);
  PutZigZag64(&b, spec.service_end_hour);
  PutFixed(&b, spec.base_zone_population);
  PutVarint64(&b, spec.pois.size());
  for (const synth::PoiSpec& ps : spec.pois) {
    PutFixed(&b, static_cast<uint8_t>(ps.category));
    PutZigZag64(&b, ps.count);
    PutFixed(&b, static_cast<uint8_t>(ps.placement));
  }
  PutFixed(&b, city.extent.min_x);
  PutFixed(&b, city.extent.min_y);
  PutFixed(&b, city.extent.max_x);
  PutFixed(&b, city.extent.max_y);
  return b;
}

util::Status DecodeSpec(ByteReader in, synth::CitySpec* spec,
                        geo::BBox* extent) {
  bool ok = in.ReadLengthPrefixed(&spec->name);
  ok = ok && in.ReadFixed(&spec->seed);
  ok = ok && in.ReadFixed(&spec->scale);
  ok = ok && ReadInt(&in, &spec->zones_x);
  ok = ok && ReadInt(&in, &spec->zones_y);
  ok = ok && in.ReadFixed(&spec->zone_spacing_m);
  ok = ok && in.ReadFixed(&spec->centre_density_scale_m);
  ok = ok && ReadInt(&in, &spec->road_nodes_per_zone_axis);
  ok = ok && in.ReadFixed(&spec->diagonal_edge_prob);
  ok = ok && in.ReadFixed(&spec->road_detour_factor);
  ok = ok && ReadInt(&in, &spec->num_radial_routes);
  ok = ok && ReadInt(&in, &spec->num_orbital_routes);
  ok = ok && ReadInt(&in, &spec->num_crosstown_routes);
  ok = ok && in.ReadFixed(&spec->stop_spacing_m);
  ok = ok && in.ReadFixed(&spec->bus_speed_mps);
  ok = ok && in.ReadFixed(&spec->dwell_s);
  ok = ok && in.ReadFixed(&spec->peak_headway_s);
  ok = ok && in.ReadFixed(&spec->offpeak_headway_s);
  ok = ok && in.ReadFixed(&spec->weekend_headway_multiplier);
  ok = ok && in.ReadFixed(&spec->route_headway_jitter);
  ok = ok && in.ReadFixed(&spec->flat_fare);
  ok = ok && ReadInt(&in, &spec->service_start_hour);
  ok = ok && ReadInt(&in, &spec->service_end_hour);
  ok = ok && in.ReadFixed(&spec->base_zone_population);
  uint64_t num_poi_specs = 0;
  ok = ok && in.ReadVarint64(&num_poi_specs);
  if (!ok) return Malformed(kCitySpec);
  spec->pois.clear();
  for (uint64_t i = 0; i < num_poi_specs; ++i) {
    uint8_t category, placement;
    synth::PoiSpec ps;
    if (!in.ReadFixed(&category) || !ReadInt(&in, &ps.count) ||
        !in.ReadFixed(&placement)) {
      return Malformed(kCitySpec);
    }
    if (category >= synth::kNumPoiCategories || placement > 3) {
      return Inconsistent(kCitySpec, "POI spec enum out of range");
    }
    ps.category = static_cast<synth::PoiCategory>(category);
    ps.placement = static_cast<synth::PoiPlacement>(placement);
    spec->pois.push_back(ps);
  }
  ok = in.ReadFixed(&extent->min_x) && in.ReadFixed(&extent->min_y) &&
       in.ReadFixed(&extent->max_x) && in.ReadFixed(&extent->max_y);
  if (!ok) return Malformed(kCitySpec);
  return util::Status::OK();
}

std::vector<uint8_t> EncodeZones(const std::vector<synth::Zone>& zones) {
  std::vector<uint32_t> ids;
  std::vector<geo::Point> centroids;
  std::vector<double> population, vulnerability;
  for (const synth::Zone& z : zones) {
    ids.push_back(z.id);
    centroids.push_back(z.centroid);
    population.push_back(z.population);
    vulnerability.push_back(z.vulnerability);
  }
  std::vector<uint8_t> b;
  PutDeltaColumn(&b, ids);
  PutFixedColumn(&b, centroids);
  PutFixedColumn(&b, population);
  PutFixedColumn(&b, vulnerability);
  return b;
}

util::Status DecodeZones(ByteReader in, std::vector<synth::Zone>* out) {
  std::vector<uint32_t> ids;
  std::vector<geo::Point> centroids;
  std::vector<double> population, vulnerability;
  if (!ReadDeltaColumn(&in, &ids) || !ReadFixedColumn(&in, &centroids) ||
      !ReadFixedColumn(&in, &population) ||
      !ReadFixedColumn(&in, &vulnerability)) {
    return Malformed(kCityZones);
  }
  if (centroids.size() != ids.size() || population.size() != ids.size() ||
      vulnerability.size() != ids.size()) {
    return Inconsistent(kCityZones, "zone column lengths differ");
  }
  out->clear();
  out->reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    synth::Zone z;
    z.id = ids[i];
    z.centroid = centroids[i];
    z.population = population[i];
    z.vulnerability = vulnerability[i];
    out->push_back(z);
  }
  return util::Status::OK();
}

std::vector<uint8_t> EncodeRoad(const synth::City& city) {
  const graph::Graph& road = city.road;
  std::vector<uint32_t> heads;
  std::vector<double> lengths;
  heads.reserve(road.num_arcs());
  lengths.reserve(road.num_arcs());
  for (const graph::Arc& arc : road.arcs()) {
    heads.push_back(arc.head);
    lengths.push_back(arc.length_m);
  }
  std::vector<uint8_t> b;
  PutFixedColumn(&b, road.positions());
  PutDeltaColumn(&b, road.offsets());
  PutDeltaColumn(&b, heads);
  PutFixedColumn(&b, lengths);
  PutDeltaColumn(&b, city.zone_node);
  return b;
}

util::Status DecodeRoad(ByteReader in, size_t num_zones, graph::Graph* road,
                        std::vector<graph::NodeId>* zone_node) {
  std::vector<geo::Point> positions;
  std::vector<uint32_t> offsets, heads;
  std::vector<double> lengths;
  if (!ReadFixedColumn(&in, &positions) || !ReadDeltaColumn(&in, &offsets) ||
      !ReadDeltaColumn(&in, &heads) || !ReadFixedColumn(&in, &lengths) ||
      !ReadDeltaColumn(&in, zone_node)) {
    return Malformed(kCityRoad);
  }
  if (heads.size() != lengths.size()) {
    return Inconsistent(kCityRoad, "arc column lengths differ");
  }
  std::vector<graph::Arc> arcs;
  arcs.reserve(heads.size());
  for (size_t i = 0; i < heads.size(); ++i) {
    arcs.push_back(graph::Arc{heads[i], lengths[i]});
  }
  util::Result<graph::Graph> built = graph::Graph::FromParts(
      std::move(positions), std::move(offsets), std::move(arcs));
  if (!built.ok()) return built.status();
  *road = std::move(built).value();
  if (zone_node->size() != num_zones) {
    return Inconsistent(kCityRoad, "zone_node length != zone count");
  }
  for (graph::NodeId node : *zone_node) {
    if (node >= road->num_nodes()) {
      return Inconsistent(kCityRoad, "zone_node references unknown node");
    }
  }
  return util::Status::OK();
}

std::vector<uint8_t> EncodeStops(const gtfs::Feed& feed) {
  std::vector<uint8_t> b;
  PutVarint64(&b, feed.num_stops());
  std::vector<geo::Point> positions;
  positions.reserve(feed.num_stops());
  for (const gtfs::Stop& stop : feed.stops()) {
    PutLengthPrefixed(&b, stop.name);
    positions.push_back(stop.position);
  }
  PutFixedColumn(&b, positions);
  return b;
}

std::vector<uint8_t> EncodeRoutes(const gtfs::Feed& feed) {
  std::vector<uint8_t> b;
  PutVarint64(&b, feed.num_routes());
  std::vector<double> fares;
  fares.reserve(feed.num_routes());
  for (const gtfs::Route& route : feed.routes()) {
    PutLengthPrefixed(&b, route.name);
    fares.push_back(route.flat_fare);
  }
  PutFixedColumn(&b, fares);
  return b;
}

std::vector<uint8_t> EncodeTrips(const gtfs::Feed& feed) {
  std::vector<uint32_t> routes, first, count;
  std::vector<uint8_t> days;
  for (const gtfs::Trip& trip : feed.trips()) {
    routes.push_back(trip.route);
    days.push_back(trip.days);
    first.push_back(trip.first_stop_time);
    count.push_back(trip.num_stop_times);
  }
  std::vector<uint8_t> b;
  PutDeltaColumn(&b, routes);
  PutFixedColumn(&b, days);
  PutDeltaColumn(&b, first);
  PutDeltaColumn(&b, count);
  return b;
}

std::vector<uint8_t> EncodeStopTimes(const gtfs::Feed& feed) {
  std::vector<uint32_t> trips, stops;
  std::vector<int32_t> arrivals, departures;
  trips.reserve(feed.num_stop_times());
  stops.reserve(feed.num_stop_times());
  arrivals.reserve(feed.num_stop_times());
  departures.reserve(feed.num_stop_times());
  for (const gtfs::StopTime& st : feed.stop_times()) {
    trips.push_back(st.trip);
    stops.push_back(st.stop);
    arrivals.push_back(st.arrival);
    departures.push_back(st.departure);
  }
  std::vector<uint8_t> b;
  PutDeltaColumn(&b, trips);
  PutDeltaColumn(&b, stops);
  PutDeltaColumn(&b, arrivals);
  PutDeltaColumn(&b, departures);
  return b;
}

util::Status DecodeFeed(ByteReader stops_in, ByteReader routes_in,
                        ByteReader trips_in, ByteReader times_in,
                        gtfs::Feed* out) {
  uint64_t num_stops = 0;
  if (!stops_in.ReadVarint64(&num_stops)) return Malformed(kFeedStops);
  std::vector<gtfs::Stop> stops(static_cast<size_t>(
      num_stops <= stops_in.remaining() ? num_stops : 0));
  if (stops.size() != num_stops) {
    return Inconsistent(kFeedStops, "absurd stop count");
  }
  for (uint64_t i = 0; i < num_stops; ++i) {
    stops[i].id = static_cast<gtfs::StopId>(i);
    if (!stops_in.ReadLengthPrefixed(&stops[i].name)) {
      return Malformed(kFeedStops);
    }
  }
  std::vector<geo::Point> positions;
  if (!ReadFixedColumn(&stops_in, &positions) ||
      positions.size() != num_stops) {
    return Malformed(kFeedStops);
  }
  for (uint64_t i = 0; i < num_stops; ++i) stops[i].position = positions[i];

  uint64_t num_routes = 0;
  if (!routes_in.ReadVarint64(&num_routes)) return Malformed(kFeedRoutes);
  std::vector<gtfs::Route> routes(static_cast<size_t>(
      num_routes <= routes_in.remaining() ? num_routes : 0));
  if (routes.size() != num_routes) {
    return Inconsistent(kFeedRoutes, "absurd route count");
  }
  for (uint64_t i = 0; i < num_routes; ++i) {
    routes[i].id = static_cast<gtfs::RouteId>(i);
    if (!routes_in.ReadLengthPrefixed(&routes[i].name)) {
      return Malformed(kFeedRoutes);
    }
  }
  std::vector<double> fares;
  if (!ReadFixedColumn(&routes_in, &fares) || fares.size() != num_routes) {
    return Malformed(kFeedRoutes);
  }
  for (uint64_t i = 0; i < num_routes; ++i) routes[i].flat_fare = fares[i];

  std::vector<uint32_t> trip_routes, trip_first, trip_count;
  std::vector<uint8_t> trip_days;
  if (!ReadDeltaColumn(&trips_in, &trip_routes) ||
      !ReadFixedColumn(&trips_in, &trip_days) ||
      !ReadDeltaColumn(&trips_in, &trip_first) ||
      !ReadDeltaColumn(&trips_in, &trip_count)) {
    return Malformed(kFeedTrips);
  }
  if (trip_days.size() != trip_routes.size() ||
      trip_first.size() != trip_routes.size() ||
      trip_count.size() != trip_routes.size()) {
    return Inconsistent(kFeedTrips, "trip column lengths differ");
  }
  std::vector<gtfs::Trip> trips(trip_routes.size());
  for (size_t i = 0; i < trips.size(); ++i) {
    trips[i].id = static_cast<gtfs::TripId>(i);
    trips[i].route = trip_routes[i];
    trips[i].days = trip_days[i];
    trips[i].first_stop_time = trip_first[i];
    trips[i].num_stop_times = trip_count[i];
  }

  std::vector<uint32_t> st_trips, st_stops;
  std::vector<int32_t> st_arrivals, st_departures;
  if (!ReadDeltaColumn(&times_in, &st_trips) ||
      !ReadDeltaColumn(&times_in, &st_stops) ||
      !ReadDeltaColumn(&times_in, &st_arrivals) ||
      !ReadDeltaColumn(&times_in, &st_departures)) {
    return Malformed(kFeedStopTimes);
  }
  if (st_stops.size() != st_trips.size() ||
      st_arrivals.size() != st_trips.size() ||
      st_departures.size() != st_trips.size()) {
    return Inconsistent(kFeedStopTimes, "stop_time column lengths differ");
  }
  std::vector<gtfs::StopTime> stop_times(st_trips.size());
  for (size_t i = 0; i < stop_times.size(); ++i) {
    stop_times[i].trip = st_trips[i];
    stop_times[i].stop = st_stops[i];
    stop_times[i].arrival = st_arrivals[i];
    stop_times[i].departure = st_departures[i];
  }

  util::Result<gtfs::Feed> built =
      gtfs::Feed::FromParts(std::move(stops), std::move(routes),
                            std::move(trips), std::move(stop_times));
  if (!built.ok()) return built.status();
  *out = std::move(built).value();
  return util::Status::OK();
}

std::vector<uint8_t> EncodeInterval(const serve::OfflineState& offline) {
  std::vector<uint8_t> b;
  PutZigZag64(&b, offline.interval.start);
  PutZigZag64(&b, offline.interval.end);
  PutFixed(&b, static_cast<uint8_t>(offline.interval.day));
  PutLengthPrefixed(&b, offline.interval.label);
  PutFixed(&b, offline.isochrones->config().tau_s);
  PutFixed(&b, offline.isochrones->config().omega_kph);
  PutFixed(&b, offline.build_seconds);
  return b;
}

util::Status DecodeInterval(ByteReader in, gtfs::TimeInterval* interval,
                            core::IsochroneConfig* iso_config,
                            double* build_seconds) {
  uint8_t day = 0;
  bool ok = ReadTime(&in, &interval->start) && ReadTime(&in, &interval->end) &&
            in.ReadFixed(&day) && in.ReadLengthPrefixed(&interval->label) &&
            in.ReadFixed(&iso_config->tau_s) &&
            in.ReadFixed(&iso_config->omega_kph) && in.ReadFixed(build_seconds);
  if (!ok) return Malformed(kOfflineInterval);
  if (day > static_cast<uint8_t>(gtfs::Day::kSunday)) {
    return Inconsistent(kOfflineInterval, "service day out of range");
  }
  interval->day = static_cast<gtfs::Day>(day);
  return util::Status::OK();
}

std::vector<uint8_t> EncodeIsochrones(const core::IsochroneSet& iso) {
  std::vector<uint32_t> counts;
  std::vector<geo::Point> vertices;
  counts.reserve(iso.size());
  for (uint32_t z = 0; z < iso.size(); ++z) {
    const auto& poly = iso.For(z).vertices();
    counts.push_back(static_cast<uint32_t>(poly.size()));
    vertices.insert(vertices.end(), poly.begin(), poly.end());
  }
  std::vector<uint8_t> b;
  PutDeltaColumn(&b, counts);
  PutFixedColumn(&b, vertices);
  return b;
}

util::Status DecodeIsochrones(ByteReader in, size_t num_zones,
                              std::vector<geo::Polygon>* out) {
  std::vector<uint32_t> counts;
  std::vector<geo::Point> vertices;
  if (!ReadDeltaColumn(&in, &counts) || !ReadFixedColumn(&in, &vertices)) {
    return Malformed(kOfflineIso);
  }
  if (counts.size() != num_zones) {
    return Inconsistent(kOfflineIso, "polygon count != zone count");
  }
  uint64_t total = 0;
  for (uint32_t c : counts) total += c;
  if (total != vertices.size()) {
    return Inconsistent(kOfflineIso, "vertex column length mismatch");
  }
  out->clear();
  out->reserve(num_zones);
  size_t cursor = 0;
  for (uint32_t c : counts) {
    out->emplace_back(std::vector<geo::Point>(
        vertices.begin() + cursor, vertices.begin() + cursor + c));
    cursor += c;
  }
  return util::Status::OK();
}

void EncodeHopDirection(std::vector<uint8_t>* b, const core::HopTreeSet& hops,
                        core::HopDirection direction) {
  std::vector<uint32_t> counts, zones, services, routes;
  std::vector<double> means;
  std::vector<geo::Point> positions;
  for (uint32_t z = 0; z < hops.num_zones(); ++z) {
    const core::HopTree& tree = direction == core::HopDirection::kOutbound
                                    ? hops.Outbound(z)
                                    : hops.Inbound(z);
    counts.push_back(static_cast<uint32_t>(tree.size()));
    for (const core::HopLeaf& leaf : tree.leaves()) {
      zones.push_back(leaf.zone);
      services.push_back(leaf.service_count);
      routes.push_back(leaf.route_count);
      means.push_back(leaf.mean_journey_s);
      positions.push_back(leaf.position);
    }
  }
  PutDeltaColumn(b, counts);
  PutDeltaColumn(b, zones);
  PutDeltaColumn(b, services);
  PutDeltaColumn(b, routes);
  PutFixedColumn(b, means);
  PutFixedColumn(b, positions);
}

util::Status DecodeHopDirection(ByteReader* in, size_t num_zones,
                                std::vector<core::HopTree>* out) {
  std::vector<uint32_t> counts, zones, services, routes;
  std::vector<double> means;
  std::vector<geo::Point> positions;
  if (!ReadDeltaColumn(in, &counts) || !ReadDeltaColumn(in, &zones) ||
      !ReadDeltaColumn(in, &services) || !ReadDeltaColumn(in, &routes) ||
      !ReadFixedColumn(in, &means) || !ReadFixedColumn(in, &positions)) {
    return Malformed(kOfflineHop);
  }
  if (counts.size() != num_zones) {
    return Inconsistent(kOfflineHop, "tree count != zone count");
  }
  uint64_t total = 0;
  for (uint32_t c : counts) total += c;
  if (zones.size() != total || services.size() != total ||
      routes.size() != total || means.size() != total ||
      positions.size() != total) {
    return Inconsistent(kOfflineHop, "leaf column lengths differ");
  }
  out->clear();
  out->reserve(num_zones);
  size_t cursor = 0;
  for (uint32_t root = 0; root < num_zones; ++root) {
    std::vector<core::HopLeaf> leaves(counts[root]);
    for (uint32_t i = 0; i < counts[root]; ++i, ++cursor) {
      if (zones[cursor] >= num_zones) {
        return Inconsistent(kOfflineHop, "leaf references unknown zone");
      }
      leaves[i].zone = zones[cursor];
      leaves[i].service_count = services[cursor];
      leaves[i].route_count = routes[cursor];
      leaves[i].mean_journey_s = means[cursor];
      leaves[i].position = positions[cursor];
    }
    out->emplace_back(root, std::move(leaves));
  }
  return util::Status::OK();
}

std::vector<uint8_t> EncodeHops(const core::HopTreeSet& hops) {
  std::vector<uint8_t> b;
  EncodeHopDirection(&b, hops, core::HopDirection::kOutbound);
  EncodeHopDirection(&b, hops, core::HopDirection::kInbound);
  PutDeltaColumn(&b, hops.stop_zone());
  return b;
}

util::Status DecodeHops(ByteReader in, size_t num_zones, size_t num_stops,
                        const gtfs::TimeInterval& interval,
                        std::unique_ptr<core::HopTreeSet>* out) {
  std::vector<core::HopTree> outbound, inbound;
  util::Status st = DecodeHopDirection(&in, num_zones, &outbound);
  if (!st.ok()) return st;
  st = DecodeHopDirection(&in, num_zones, &inbound);
  if (!st.ok()) return st;
  std::vector<uint32_t> stop_zone;
  if (!ReadDeltaColumn(&in, &stop_zone)) return Malformed(kOfflineHop);
  if (stop_zone.size() != num_stops) {
    return Inconsistent(kOfflineHop, "stop_zone length != stop count");
  }
  for (uint32_t z : stop_zone) {
    if (z >= num_zones) {
      return Inconsistent(kOfflineHop, "stop_zone references unknown zone");
    }
  }
  *out = std::make_unique<core::HopTreeSet>(interval, std::move(outbound),
                                            std::move(inbound),
                                            std::move(stop_zone));
  return util::Status::OK();
}

// --- exact label states ----------------------------------------------------

std::vector<uint8_t> EncodeLabelKey(const serve::LabelKey& key,
                                    const serve::ExactLabelState& state) {
  std::vector<uint8_t> b;
  PutFixed(&b, static_cast<uint8_t>(key.category));
  PutFixed(&b, static_cast<uint8_t>(key.cost));
  PutFixed(&b, key.gac.lambda_tan);
  PutFixed(&b, key.gac.lambda_wt);
  PutFixed(&b, key.gac.lambda_ivt);
  PutFixed(&b, key.gac.lambda_et);
  PutFixed(&b, key.gac.transfer_penalty_s);
  PutFixed(&b, key.gac.value_of_time);
  PutFixed(&b, key.gravity.decay_scale_m);
  PutFixed(&b, key.gravity.keep_scale);
  PutZigZag64(&b, key.gravity.sample_rate_per_hour);
  PutFixed(&b, key.seed);
  PutVarint64(&b, state.build_spqs);
  PutVarint64(&b, state.relabeled_zones);
  return b;
}

util::Status DecodeLabelKey(ByteReader in, const std::string& section,
                            serve::LabelKey* key,
                            serve::ExactLabelState* state) {
  uint8_t category = 0, cost = 0;
  uint64_t build_spqs = 0, relabeled = 0;
  bool ok = in.ReadFixed(&category) && in.ReadFixed(&cost) &&
            in.ReadFixed(&key->gac.lambda_tan) &&
            in.ReadFixed(&key->gac.lambda_wt) &&
            in.ReadFixed(&key->gac.lambda_ivt) &&
            in.ReadFixed(&key->gac.lambda_et) &&
            in.ReadFixed(&key->gac.transfer_penalty_s) &&
            in.ReadFixed(&key->gac.value_of_time) &&
            in.ReadFixed(&key->gravity.decay_scale_m) &&
            in.ReadFixed(&key->gravity.keep_scale) &&
            ReadInt(&in, &key->gravity.sample_rate_per_hour) &&
            in.ReadFixed(&key->seed) && in.ReadVarint64(&build_spqs) &&
            in.ReadVarint64(&relabeled);
  if (!ok) return Malformed(section);
  if (category >= synth::kNumPoiCategories ||
      cost > static_cast<uint8_t>(core::CostKind::kGeneralizedCost)) {
    return Inconsistent(section, "label key enum out of range");
  }
  key->category = static_cast<synth::PoiCategory>(category);
  key->cost = static_cast<core::CostKind>(cost);
  state->build_spqs = build_spqs;
  state->relabeled_zones = static_cast<uint32_t>(relabeled);
  return util::Status::OK();
}

std::vector<uint8_t> EncodeLabels(const std::vector<core::ZoneLabel>& labels) {
  std::vector<double> mac, acsd;
  std::vector<uint32_t> trips, infeasible, walk_only;
  for (const core::ZoneLabel& label : labels) {
    mac.push_back(label.mac);
    acsd.push_back(label.acsd);
    trips.push_back(label.num_trips);
    infeasible.push_back(label.num_infeasible);
    walk_only.push_back(label.num_walk_only);
  }
  std::vector<uint8_t> b;
  PutFixedColumn(&b, mac);
  PutFixedColumn(&b, acsd);
  PutDeltaColumn(&b, trips);
  PutDeltaColumn(&b, infeasible);
  PutDeltaColumn(&b, walk_only);
  return b;
}

util::Status DecodeLabels(ByteReader in, const std::string& section,
                          size_t num_zones,
                          std::vector<core::ZoneLabel>* out) {
  std::vector<double> mac, acsd;
  std::vector<uint32_t> trips, infeasible, walk_only;
  if (!ReadFixedColumn(&in, &mac) || !ReadFixedColumn(&in, &acsd) ||
      !ReadDeltaColumn(&in, &trips) || !ReadDeltaColumn(&in, &infeasible) ||
      !ReadDeltaColumn(&in, &walk_only)) {
    return Malformed(section);
  }
  if (mac.size() != num_zones || acsd.size() != num_zones ||
      trips.size() != num_zones || infeasible.size() != num_zones ||
      walk_only.size() != num_zones) {
    return Inconsistent(section, "label column length != zone count");
  }
  out->assign(num_zones, core::ZoneLabel{});
  for (size_t z = 0; z < num_zones; ++z) {
    (*out)[z].mac = mac[z];
    (*out)[z].acsd = acsd[z];
    (*out)[z].num_trips = trips[z];
    (*out)[z].num_infeasible = infeasible[z];
    (*out)[z].num_walk_only = walk_only[z];
  }
  return util::Status::OK();
}

std::vector<uint8_t> EncodeTodam(const core::Todam& todam) {
  std::vector<uint32_t> trip_counts, pois, alpha_counts;
  std::vector<int32_t> departs;
  std::vector<double> alpha;
  for (uint32_t z = 0; z < todam.num_zones(); ++z) {
    const auto& zone_trips = todam.TripsFor(z);
    trip_counts.push_back(static_cast<uint32_t>(zone_trips.size()));
    for (const core::TripEntry& trip : zone_trips) {
      pois.push_back(trip.poi);
      departs.push_back(trip.depart);
    }
  }
  for (const auto& row : todam.alpha()) {
    alpha_counts.push_back(static_cast<uint32_t>(row.size()));
    alpha.insert(alpha.end(), row.begin(), row.end());
  }
  std::vector<uint8_t> b;
  PutVarint64(&b, todam.num_zones());
  PutDeltaColumn(&b, trip_counts);
  PutDeltaColumn(&b, pois);
  PutDeltaColumn(&b, departs);
  PutDeltaColumn(&b, alpha_counts);
  PutFixedColumn(&b, alpha);
  return b;
}

util::Status DecodeTodam(ByteReader in, const std::string& section,
                         size_t num_zones, size_t num_pois,
                         core::Todam* out) {
  uint64_t stored_zones = 0;
  std::vector<uint32_t> trip_counts, pois, alpha_counts;
  std::vector<int32_t> departs;
  std::vector<double> alpha;
  if (!in.ReadVarint64(&stored_zones) || !ReadDeltaColumn(&in, &trip_counts) ||
      !ReadDeltaColumn(&in, &pois) || !ReadDeltaColumn(&in, &departs) ||
      !ReadDeltaColumn(&in, &alpha_counts) || !ReadFixedColumn(&in, &alpha)) {
    return Malformed(section);
  }
  if (stored_zones != num_zones || trip_counts.size() != num_zones ||
      alpha_counts.size() != num_zones) {
    return Inconsistent(section, "TODAM zone count mismatch");
  }
  uint64_t total_trips = 0;
  for (uint32_t c : trip_counts) total_trips += c;
  if (pois.size() != total_trips || departs.size() != total_trips) {
    return Inconsistent(section, "TODAM trip column lengths differ");
  }
  uint64_t total_alpha = 0;
  for (uint32_t c : alpha_counts) total_alpha += c;
  if (alpha.size() != total_alpha) {
    return Inconsistent(section, "TODAM alpha column length mismatch");
  }
  std::vector<std::vector<core::TripEntry>> trips(num_zones);
  size_t cursor = 0;
  for (size_t z = 0; z < num_zones; ++z) {
    trips[z].resize(trip_counts[z]);
    for (uint32_t i = 0; i < trip_counts[z]; ++i, ++cursor) {
      if (pois[cursor] >= num_pois) {
        return Inconsistent(section, "trip references unknown POI");
      }
      trips[z][i] = core::TripEntry{pois[cursor], departs[cursor]};
    }
  }
  std::vector<std::vector<double>> alpha_rows(num_zones);
  cursor = 0;
  for (size_t z = 0; z < num_zones; ++z) {
    alpha_rows[z].assign(alpha.begin() + cursor,
                         alpha.begin() + cursor + alpha_counts[z]);
    cursor += alpha_counts[z];
  }
  *out = core::Todam::FromParts(std::move(trips), std::move(alpha_rows));
  return util::Status::OK();
}

std::vector<uint8_t> EncodeNorm(const std::vector<double>& norm) {
  // Pure raw doubles (kRaw): no count prefix, no per-value framing. The
  // element count travels in the footer entry, and the mmap read path
  // memcpy's the column straight out of the page cache.
  std::vector<uint8_t> b(norm.size() * sizeof(double));
  if (!norm.empty()) std::memcpy(b.data(), norm.data(), b.size());
  return b;
}

// --- load ------------------------------------------------------------------

util::Result<serve::RestoredScenario> LoadSnapshotImpl(
    const std::string& path, Reader::Options options) {
  Reader reader;
  util::Status st = reader.Open(path, options);
  if (!st.ok()) return st;

  auto section = [&reader](const char* name,
                           SectionEncoding enc) -> util::Result<ByteReader> {
    return reader.Section(name, enc);
  };

  auto meta = section(kMeta, SectionEncoding::kStruct);
  if (!meta.ok()) return meta.status();
  ByteReader meta_in = meta.value();
  uint64_t epoch = 0, next_poi_id = 0, num_states = 0;
  std::string city_name, interval_label;
  uint64_t meta_zones = 0, meta_pois = 0, meta_stops = 0, meta_trips = 0,
           meta_stop_times = 0;
  bool meta_ok = meta_in.ReadVarint64(&epoch) &&
                 meta_in.ReadVarint64(&next_poi_id) &&
                 meta_in.ReadVarint64(&num_states) &&
                 meta_in.ReadLengthPrefixed(&city_name) &&
                 meta_in.ReadLengthPrefixed(&interval_label) &&
                 meta_in.ReadVarint64(&meta_zones) &&
                 meta_in.ReadVarint64(&meta_pois) &&
                 meta_in.ReadVarint64(&meta_stops) &&
                 meta_in.ReadVarint64(&meta_trips) &&
                 meta_in.ReadVarint64(&meta_stop_times);
  if (!meta_ok) return Malformed(kMeta);

  synth::CitySpec spec;
  geo::BBox extent;
  auto spec_in = section(kCitySpec, SectionEncoding::kStruct);
  if (!spec_in.ok()) return spec_in.status();
  st = DecodeSpec(spec_in.value(), &spec, &extent);
  if (!st.ok()) return st;

  std::vector<synth::Zone> zones;
  auto zones_in = section(kCityZones, SectionEncoding::kStruct);
  if (!zones_in.ok()) return zones_in.status();
  st = DecodeZones(zones_in.value(), &zones);
  if (!st.ok()) return st;
  if (zones.size() != meta_zones) {
    return Inconsistent(kCityZones, "zone count disagrees with meta");
  }

  graph::Graph road;
  std::vector<graph::NodeId> zone_node;
  auto road_in = section(kCityRoad, SectionEncoding::kStruct);
  if (!road_in.ok()) return road_in.status();
  st = DecodeRoad(road_in.value(), zones.size(), &road, &zone_node);
  if (!st.ok()) return st;

  gtfs::Feed feed;
  auto stops_in = section(kFeedStops, SectionEncoding::kStruct);
  auto routes_in = section(kFeedRoutes, SectionEncoding::kStruct);
  auto trips_in = section(kFeedTrips, SectionEncoding::kStruct);
  auto times_in = section(kFeedStopTimes, SectionEncoding::kDelta);
  if (!stops_in.ok()) return stops_in.status();
  if (!routes_in.ok()) return routes_in.status();
  if (!trips_in.ok()) return trips_in.status();
  if (!times_in.ok()) return times_in.status();
  st = DecodeFeed(stops_in.value(), routes_in.value(), trips_in.value(),
                  times_in.value(), &feed);
  if (!st.ok()) return st;

  std::vector<synth::Poi> base_pois;
  auto city_pois_in = section(kCityPois, SectionEncoding::kStruct);
  if (!city_pois_in.ok()) return city_pois_in.status();
  st = ReadPois(&city_pois_in.value(), kCityPois, &base_pois);
  if (!st.ok()) return st;

  gtfs::TimeInterval interval;
  core::IsochroneConfig iso_config;
  double build_seconds = 0.0;
  auto interval_in = section(kOfflineInterval, SectionEncoding::kStruct);
  if (!interval_in.ok()) return interval_in.status();
  st = DecodeInterval(interval_in.value(), &interval, &iso_config,
                      &build_seconds);
  if (!st.ok()) return st;

  std::vector<geo::Polygon> polygons;
  auto iso_in = section(kOfflineIso, SectionEncoding::kStruct);
  if (!iso_in.ok()) return iso_in.status();
  st = DecodeIsochrones(iso_in.value(), zones.size(), &polygons);
  if (!st.ok()) return st;
  auto isochrones =
      std::make_unique<core::IsochroneSet>(iso_config, std::move(polygons));

  std::unique_ptr<core::HopTreeSet> hop_trees;
  auto hop_in = section(kOfflineHop, SectionEncoding::kDelta);
  if (!hop_in.ok()) return hop_in.status();
  st = DecodeHops(hop_in.value(), zones.size(), feed.num_stops(), interval,
                  &hop_trees);
  if (!st.ok()) return st;

  std::vector<synth::Poi> scenario_pois;
  auto scenario_pois_in = section(kScenarioPois, SectionEncoding::kStruct);
  if (!scenario_pois_in.ok()) return scenario_pois_in.status();
  st = ReadPois(&scenario_pois_in.value(), kScenarioPois, &scenario_pois);
  if (!st.ok()) return st;

  // Assemble the city first: the offline state's feature extractor points
  // into it, so the city must already be at its final address.
  synth::City city;
  city.spec = std::move(spec);
  city.zones = std::move(zones);
  city.road = std::move(road);
  city.zone_node = std::move(zone_node);
  city.feed = std::move(feed);
  city.pois = std::move(base_pois);
  city.extent = extent;
  auto city_ptr = std::make_shared<const synth::City>(std::move(city));
  const size_t num_zones = city_ptr->zones.size();

  auto offline = std::make_unique<serve::OfflineState>(
      *city_ptr, interval, std::move(isochrones), std::move(hop_trees));
  offline->build_seconds = build_seconds;

  serve::RestoredScenario restored;
  restored.city = city_ptr;
  restored.pois = std::move(scenario_pois);
  restored.offline =
      std::shared_ptr<const serve::OfflineState>(std::move(offline));
  restored.source_epoch = epoch;
  restored.next_poi_id = static_cast<uint32_t>(next_poi_id);

  for (uint64_t i = 0; i < num_states; ++i) {
    serve::LabelKey key;
    auto state = std::make_shared<serve::ExactLabelState>();

    const std::string key_name = LabelSection(i, "key");
    auto key_in = reader.Section(key_name, SectionEncoding::kStruct);
    if (!key_in.ok()) return key_in.status();
    st = DecodeLabelKey(key_in.value(), key_name, &key, state.get());
    if (!st.ok()) return st;

    const std::string pois_name = LabelSection(i, "pois");
    auto pois_in = reader.Section(pois_name, SectionEncoding::kStruct);
    if (!pois_in.ok()) return pois_in.status();
    st = ReadPois(&pois_in.value(), pois_name, &state->pois);
    if (!st.ok()) return st;

    const std::string norm_name = LabelSection(i, "norm");
    auto norm_in = reader.Section(norm_name, SectionEncoding::kRaw);
    if (!norm_in.ok()) return norm_in.status();
    const uint64_t norm_count = SectionElementCount(reader, norm_name);
    ByteReader norm_reader = norm_in.value();
    if (norm_count != num_zones ||
        !norm_reader.ReadFixedColumn(static_cast<size_t>(norm_count),
                                     &state->zone_norm)) {
      return Malformed(norm_name);
    }

    const std::string labels_name = LabelSection(i, "labels");
    auto labels_in = reader.Section(labels_name, SectionEncoding::kStruct);
    if (!labels_in.ok()) return labels_in.status();
    st = DecodeLabels(labels_in.value(), labels_name, num_zones,
                      &state->labels);
    if (!st.ok()) return st;

    const std::string todam_name = LabelSection(i, "todam");
    auto todam_in = reader.Section(todam_name, SectionEncoding::kDelta);
    if (!todam_in.ok()) return todam_in.status();
    st = DecodeTodam(todam_in.value(), todam_name, num_zones,
                     state->pois.size(), &state->todam);
    if (!st.ok()) return st;

    restored.label_states.emplace_back(key, std::move(state));
  }
  return restored;
}

util::Status SaveSnapshotImpl(const serve::Scenario& scenario,
                              uint32_t next_poi_id, const std::string& path,
                              uint64_t base_sequence) {
  // Sort the materialised states by canonical key so the same serving
  // state always writes byte-identical snapshots (the memo map iterates in
  // hash order).
  auto states = scenario.MaterializedStates();
  std::sort(states.begin(), states.end(),
            [](const auto& a, const auto& b) {
              return a.first.Canonical() < b.first.Canonical();
            });
  const synth::City& city = scenario.base_city();
  const serve::OfflineState& offline = scenario.offline();

  Writer writer;
  util::Status st = writer.Open(path);
  if (!st.ok()) return st;
  auto add = [&st, &writer](const std::string& name, SectionEncoding enc,
                            std::vector<uint8_t> payload, uint64_t count) {
    if (st.ok()) st = writer.AddSection(name, enc, std::move(payload), count);
  };

  add(kMeta, SectionEncoding::kStruct,
      EncodeMeta(scenario, base_sequence, next_poi_id, states.size()), 1);
  add(kCitySpec, SectionEncoding::kStruct, EncodeSpec(city), 1);
  add(kCityZones, SectionEncoding::kStruct, EncodeZones(city.zones),
      city.zones.size());
  add(kCityRoad, SectionEncoding::kStruct, EncodeRoad(city),
      city.road.num_nodes());
  add(kCityPois, SectionEncoding::kStruct, [&city] {
        std::vector<uint8_t> b;
        PutPois(&b, city.pois);
        return b;
      }(),
      city.pois.size());
  add(kFeedStops, SectionEncoding::kStruct, EncodeStops(city.feed),
      city.feed.num_stops());
  add(kFeedRoutes, SectionEncoding::kStruct, EncodeRoutes(city.feed),
      city.feed.num_routes());
  add(kFeedTrips, SectionEncoding::kStruct, EncodeTrips(city.feed),
      city.feed.num_trips());
  add(kFeedStopTimes, SectionEncoding::kDelta, EncodeStopTimes(city.feed),
      city.feed.num_stop_times());
  add(kOfflineInterval, SectionEncoding::kStruct, EncodeInterval(offline), 1);
  add(kOfflineIso, SectionEncoding::kStruct,
      EncodeIsochrones(*offline.isochrones), offline.isochrones->size());
  add(kOfflineHop, SectionEncoding::kDelta, EncodeHops(*offline.hop_trees),
      offline.hop_trees->num_zones());
  add(kScenarioPois, SectionEncoding::kStruct, [&scenario] {
        std::vector<uint8_t> b;
        PutPois(&b, scenario.pois());
        return b;
      }(),
      scenario.pois().size());

  for (size_t i = 0; i < states.size(); ++i) {
    const serve::LabelKey& key = states[i].first;
    const serve::ExactLabelState& state = *states[i].second;
    add(LabelSection(i, "key"), SectionEncoding::kStruct,
        EncodeLabelKey(key, state), 1);
    add(LabelSection(i, "pois"), SectionEncoding::kStruct, [&state] {
          std::vector<uint8_t> b;
          PutPois(&b, state.pois);
          return b;
        }(),
        state.pois.size());
    add(LabelSection(i, "norm"), SectionEncoding::kRaw,
        EncodeNorm(state.zone_norm), state.zone_norm.size());
    add(LabelSection(i, "labels"), SectionEncoding::kStruct,
        EncodeLabels(state.labels), state.labels.size());
    add(LabelSection(i, "todam"), SectionEncoding::kDelta,
        EncodeTodam(state.todam), state.todam.num_trips());
  }
  if (!st.ok()) return st;
  return writer.Finish();
}

}  // namespace

util::Status SaveSnapshot(const serve::Scenario& scenario,
                          uint32_t next_poi_id, const std::string& path,
                          uint64_t base_sequence) {
  try {
    return SaveSnapshotImpl(scenario, next_poi_id, path, base_sequence);
  } catch (const std::exception& e) {
    // Injected faults (failpoints) and allocation failures surface as a
    // clean status; the torn file, if any, is unreadable by design.
    return util::Status::IoError(std::string("snapshot save failed: ") +
                                 e.what());
  }
}

util::Result<serve::RestoredScenario> LoadSnapshot(const std::string& path,
                                                   Reader::Options options) {
  try {
    return LoadSnapshotImpl(path, options);
  } catch (const std::exception& e) {
    return util::Status::IoError(std::string("snapshot load failed: ") +
                                 e.what());
  }
}

util::Result<SnapshotInfo> InspectSnapshot(const std::string& path) {
  Reader reader;
  // Buffered mode: inspect reads one tiny section; mapping the whole file
  // buys nothing.
  Reader::Options options;
  options.mode = Reader::Mode::kBuffered;
  util::Status st = reader.Open(path, options);
  if (!st.ok()) return st;

  auto meta = reader.Section(kMeta, SectionEncoding::kStruct);
  if (!meta.ok()) return meta.status();
  ByteReader in = meta.value();
  SnapshotInfo info;
  uint64_t next_poi_id = 0;
  bool ok = in.ReadVarint64(&info.source_epoch) &&
            in.ReadVarint64(&next_poi_id) &&
            in.ReadVarint64(&info.num_label_states) &&
            in.ReadLengthPrefixed(&info.city_name) &&
            in.ReadLengthPrefixed(&info.interval_label) &&
            in.ReadVarint64(&info.num_zones) &&
            in.ReadVarint64(&info.num_pois) &&
            in.ReadVarint64(&info.num_stops) &&
            in.ReadVarint64(&info.num_trips) &&
            in.ReadVarint64(&info.num_stop_times);
  if (!ok) return Malformed(kMeta);
  info.next_poi_id = static_cast<uint32_t>(next_poi_id);
  info.format_version = reader.format_version();
  info.file_size = reader.file_size();
  info.sections = reader.sections();
  return info;
}

util::Status VerifySnapshot(const std::string& path) {
  Reader reader;
  Reader::Options options;
  options.mode = Reader::Mode::kBuffered;
  options.verify_checksums = false;  // VerifyAllBlocks checks everything
  util::Status st = reader.Open(path, options);
  if (!st.ok()) return st;
  return reader.VerifyAllBlocks();
}

}  // namespace staq::store
