// Full serving-state snapshots (the staq::store public API).
//
// SaveSnapshot serialises one serve::Scenario — the synthetic city, the
// GTFS feed, the interval's offline structures (isochrones, hop trees) and
// every materialised exact label state — into the checksummed columnar
// container of writer.h/reader.h. LoadSnapshot reassembles a
// serve::RestoredScenario that a ScenarioStore / AqServer can publish as
// epoch 0 without running the offline cold build: the warm-start path.
//
// Bit-identity contract: a loaded scenario answers every query with
// exactly the bytes a from-scratch build would produce. Doubles are stored
// as raw IEEE bits, integer columns delta/zigzag-coded losslessly, and the
// deterministic derived structures (departure index, k-d trees, feature
// extractor) are rebuilt rather than stored — their builders are pure
// functions of the stored state.
//
// Failure taxonomy follows reader.h: not-a-snapshot / unknown version /
// structurally inconsistent -> kInvalidArgument; checksum mismatch,
// truncation, or a section that decodes short -> kDataLoss; filesystem
// errors -> kIoError. Injected faults (util/failpoint.h) surface as
// kIoError statuses, never as escaping exceptions, so callers like the
// AqServer warm start can fall back to a cold build.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/scenario.h"
#include "store/format.h"
#include "store/reader.h"
#include "util/status.h"

namespace staq::store {

/// Serialises `scenario` plus the owning store's POI id cursor to `path`.
/// The scenario is immutable, so this is safe while the store keeps
/// serving queries and installing new epochs. Writes are atomic at the
/// file level: a failed save leaves a torn file every reader rejects.
///
/// `base_sequence` is the owning store's sequence offset
/// (ScenarioStore::base_sequence()): the persisted source epoch becomes
/// base_sequence + scenario.epoch(), i.e. the *absolute* mutation sequence,
/// so WAL replay chains across generations of snapshots.
util::Status SaveSnapshot(const serve::Scenario& scenario,
                          uint32_t next_poi_id, const std::string& path,
                          uint64_t base_sequence = 0);

/// Loads a snapshot into the ingredients of a warm-started ScenarioStore.
/// `options` selects the read mode (mmap zero-copy by default) and
/// checksum verification.
util::Result<serve::RestoredScenario> LoadSnapshot(
    const std::string& path, Reader::Options options = {});

/// Summary of a snapshot file, decoded from the footer and the meta
/// section only (no bulk columns are read or verified).
struct SnapshotInfo {
  uint32_t format_version = 0;
  uint64_t file_size = 0;
  uint64_t source_epoch = 0;
  uint32_t next_poi_id = 0;
  std::string city_name;
  std::string interval_label;
  uint64_t num_zones = 0;
  uint64_t num_pois = 0;
  uint64_t num_stops = 0;
  uint64_t num_trips = 0;
  uint64_t num_stop_times = 0;
  uint64_t num_label_states = 0;
  std::vector<SectionEntry> sections;
};

/// `staq_cli snapshot inspect`: header + footer + meta, nothing else.
util::Result<SnapshotInfo> InspectSnapshot(const std::string& path);

/// `staq_cli snapshot verify`: opens the file and checks every block
/// checksum of every section. OK means the container is intact (it does
/// not re-run the semantic validation LoadSnapshot performs).
util::Status VerifySnapshot(const std::string& path);

}  // namespace staq::store
