// On-disk container format of the snapshot store.
//
// A snapshot file is a sequence of named, checksummed sections behind a
// footer index (the ClickHouse data-part shape, reduced to one file):
//
//   +--------------------------------------------------------------+
//   | header: magic "STAQSNP1" | format_version u32 | flags u32    |
//   +--------------------------------------------------------------+
//   | section payloads, 8-byte aligned, written append-only        |
//   |   each payload is split into <= kBlockSize blocks;           |
//   |   every block has an XXH64 digest in the footer's block table|
//   +--------------------------------------------------------------+
//   | footer blob (varint-encoded):                                |
//   |   per section: name, encoding, offset, size, element count,  |
//   |                block checksums                               |
//   +--------------------------------------------------------------+
//   | trailer (24 bytes): footer_offset u64 | footer_xxh64 u64 |   |
//   |                     tail magic "STAQEND1"                    |
//   +--------------------------------------------------------------+
//
// Readers open from the tail: validate both magics and the version,
// checksum the footer blob, then resolve sections by name. Payload block
// checksums are verified on first access of each section (or all at once
// by Reader::VerifyAllBlocks). Every integrity failure maps to kDataLoss
// and every format violation to kInvalidArgument — a corrupt file can
// never crash the process or half-install a scenario.
//
// Versioning policy: kFormatVersion bumps on any incompatible layout
// change; readers reject newer majors outright (no forward compat) and
// keep decode paths for older ones for as long as ROADMAP retention asks.
// Adding a *new* section is backward compatible by construction — old
// readers never look it up, new readers treat its absence as "feature not
// present in this snapshot".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace staq::store {

/// Leading file magic ("STAQSNP1" as little-endian u64).
inline constexpr uint64_t kHeaderMagic = 0x31504E5351415453ull;
/// Trailing magic ("STAQEND1"), written last: its presence proves the
/// footer made it to disk, so truncation anywhere is detected cheaply.
inline constexpr uint64_t kTrailerMagic = 0x31444E4551415453ull;

/// Current container format version.
inline constexpr uint32_t kFormatVersion = 1;

/// Payload bytes covered by one checksum. 256 KiB keeps the block table
/// tiny (8 bytes per 256 KiB) while localising corruption reports.
inline constexpr size_t kBlockSize = 256 * 1024;

/// Fixed sizes of the non-section file regions.
inline constexpr size_t kHeaderSize = 16;   // magic + version + flags
inline constexpr size_t kTrailerSize = 24;  // footer offset + digest + magic

/// How a section's payload bytes are produced/consumed. Stored per section
/// so `snapshot inspect` can explain a file and readers can reject a
/// mismatched decode attempt.
enum class SectionEncoding : uint8_t {
  kRaw = 0,      // fixed-width little-endian values (mmap-viewable)
  kVarint = 1,   // LEB128 varints (zigzag where signed)
  kDelta = 2,    // consecutive deltas, zigzag varint
  kStruct = 3,   // heterogeneous record stream (coding.h primitives)
};

const char* SectionEncodingName(SectionEncoding e);

/// Footer entry describing one section.
struct SectionEntry {
  std::string name;
  SectionEncoding encoding = SectionEncoding::kStruct;
  uint64_t offset = 0;          // absolute file offset of the payload
  uint64_t size = 0;            // payload bytes
  uint64_t element_count = 0;   // decoded elements (informational)
  std::vector<uint64_t> block_checksums;  // XXH64 per kBlockSize block
};

}  // namespace staq::store
