// Block checksums for the snapshot store.
//
// Every payload block and the footer of a snapshot file carry a 64-bit
// XXH64 digest (Yann Collet's xxHash, reimplemented here from the public
// specification — the container must stay dependency-free). XXH64 is the
// same family ClickHouse and LZ4 frame use for on-disk block integrity:
// non-cryptographic, ~word-at-a-time fast, and strong enough that a torn
// write, a truncated tail, or a flipped bit is detected with probability
// 1 - 2^-64 per block.
#pragma once

#include <cstddef>
#include <cstdint>

namespace staq::store {

/// XXH64 digest of `data[0..size)` with the given seed.
uint64_t XxHash64(const void* data, size_t size, uint64_t seed = 0);

}  // namespace staq::store
