// Access-cost definitions (paper §III-C).
//
// Two access costs are computed per trip (o, d, t):
//  * JT  — journey time: c(o,d,t) = AT(d) - t.
//  * GAC — generalized access cost, the UK DfT TAG M3.2 formulation
//    (paper Eq. 1):
//      c = λ1·TAN + λ2·WT + λ3·IVT + λ4·ET + TP + FARE/VOT
//    where TAN is access walk time, WT waiting time, IVT in-vehicle time,
//    ET egress walk time, TP the interchange penalty, and FARE/VOT converts
//    money into equivalent seconds via the value of time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gtfs/feed.h"

namespace staq::router {

/// One leg of a reconstructed journey.
struct JourneyLeg {
  enum class Type { kWalk, kWait, kRide };
  Type type = Type::kWalk;
  gtfs::TimeOfDay start = 0;
  gtfs::TimeOfDay end = 0;
  uint32_t route = gtfs::kInvalidId;  // kRide only
  uint32_t from_stop = gtfs::kInvalidId;
  uint32_t to_stop = gtfs::kInvalidId;

  gtfs::TimeOfDay Duration() const { return end - start; }
};

/// A resolved (o, d, t) journey with its cost decomposition.
struct Journey {
  bool feasible = false;
  gtfs::TimeOfDay depart = 0;  // the query time t
  gtfs::TimeOfDay arrive = 0;  // AT(d)

  // Component seconds; sums match arrive - depart.
  double access_walk_s = 0.0;    // TAN
  double transfer_walk_s = 0.0;  // folded into TAN per DfT practice
  double wait_s = 0.0;           // WT (initial + interchange waits)
  double in_vehicle_s = 0.0;     // IVT
  double egress_walk_s = 0.0;    // ET
  int num_boardings = 0;
  double total_fare = 0.0;

  std::vector<JourneyLeg> legs;

  /// JT in seconds: AT(d) - t.
  double JourneyTimeSeconds() const {
    return static_cast<double>(arrive - depart);
  }
  bool IsWalkOnly() const { return feasible && num_boardings == 0; }
};

/// Weighting factors for Eq. 1, defaulted to DfT TAG M3.2 guidance values:
/// walking and waiting weighted ~2x in-vehicle time, a ~10-minute penalty
/// per interchange, and a value of time of ~£9/hour.
struct GacWeights {
  double lambda_tan = 2.0;          // λ1, access (+transfer) walk weight
  double lambda_wt = 2.5;           // λ2, wait weight
  double lambda_ivt = 1.0;          // λ3, in-vehicle weight
  double lambda_et = 2.0;           // λ4, egress walk weight
  double transfer_penalty_s = 600;  // TP per interchange (boardings - 1)
  double value_of_time = 9.0 / 3600.0;  // VOT in currency units per second

  /// Validates that every weight is usable (non-negative, VOT positive).
  bool Valid() const {
    return lambda_tan >= 0 && lambda_wt >= 0 && lambda_ivt >= 0 &&
           lambda_et >= 0 && transfer_penalty_s >= 0 && value_of_time > 0;
  }
};

/// Evaluates Eq. 1 on a journey, in generalized seconds. Infeasible
/// journeys return +infinity.
double GeneralizedAccessCost(const Journey& journey, const GacWeights& w);

/// Human-readable one-line description ("walk 4m, route 12 7:05->7:21, ...").
std::string DescribeJourney(const Journey& journey);

}  // namespace staq::router
