// Travel-time profiles: the arrival function of an OD pair over a
// departure window.
//
// Related work (§II) analyses accessibility with travel-time cubes —
// dense (o, d, t) arrays of journey times. A profile query computes one
// fibre of that cube: earliest arrival for each sampled departure time in
// an interval, plus the summary statistics (mean/σ of journey time) that
// the TODAM estimates by sparse sampling. Profiles are the exact reference
// the TODAM's per-pair samples approximate, and power analyses such as
// "how does waiting for the next service penalise this pair".
#pragma once

#include <vector>

#include "router/router.h"

namespace staq::router {

/// One sampled departure.
struct ProfilePoint {
  gtfs::TimeOfDay depart = 0;
  gtfs::TimeOfDay arrive = 0;  // meaningful only when feasible
  bool feasible = false;

  double JourneyTimeSeconds() const {
    return static_cast<double>(arrive - depart);
  }
};

/// Summary of a profile's feasible points.
struct ProfileStats {
  uint32_t num_points = 0;
  uint32_t num_feasible = 0;
  double mean_jt_s = 0.0;
  double stddev_jt_s = 0.0;  // the exact per-pair analogue of ACSD
  double min_jt_s = 0.0;
  double max_jt_s = 0.0;
};

/// Samples the arrival function of (origin -> dest) for departures
/// from `v.start` to `v.end` (exclusive) every `step_s` seconds.
/// Requires step_s > 0.
std::vector<ProfilePoint> SampleProfile(Router* router,
                                        const geo::Point& origin,
                                        const geo::Point& dest,
                                        const gtfs::TimeInterval& v,
                                        int step_s = 60);

/// Aggregates a sampled profile. Profiles with no feasible point return a
/// zeroed struct with num_feasible == 0.
ProfileStats SummarizeProfile(const std::vector<ProfilePoint>& profile);

}  // namespace staq::router
