#include "router/connections.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/stopwatch.h"

namespace staq::router {

ConnectionArray::ConnectionArray(const gtfs::Feed* feed) : feed_(feed) {
  STAQ_CHECK(feed != nullptr, "ConnectionArray requires a feed");
  util::Stopwatch watch;

  // One connection per consecutive stop-time pair of every trip.
  const auto& stop_times = feed_->stop_times();
  size_t n = 0;
  for (const gtfs::Trip& trip : feed_->trips()) {
    if (trip.num_stop_times >= 2) n += trip.num_stop_times - 1;
  }
  dep_time_.reserve(n);
  arr_time_.reserve(n);
  dep_stop_.reserve(n);
  arr_stop_.reserve(n);
  trip_.reserve(n);
  days_.reserve(n);
  for (const gtfs::Trip& trip : feed_->trips()) {
    const uint32_t end = trip.first_stop_time + trip.num_stop_times;
    for (uint32_t i = trip.first_stop_time; i + 1 < end; ++i) {
      const gtfs::StopTime& from = stop_times[i];
      const gtfs::StopTime& to = stop_times[i + 1];
      dep_time_.push_back(from.departure);
      arr_time_.push_back(to.arrival);
      dep_stop_.push_back(from.stop);
      arr_stop_.push_back(to.stop);
      trip_.push_back(trip.id);
      days_.push_back(trip.days);
    }
  }

  // Sort by (departure, trip, sequence). The build order above is already
  // (trip, sequence), and stable_sort preserves it within equal departures,
  // so the comparator only needs the primary key — and the tie order every
  // scan sees is fully deterministic.
  std::vector<uint32_t> order(dep_time_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return dep_time_[a] < dep_time_[b];
  });
  auto permute = [&order](auto& column) {
    auto src = column;
    for (size_t i = 0; i < order.size(); ++i) column[i] = src[order[i]];
  };
  permute(dep_time_);
  permute(arr_time_);
  permute(dep_stop_);
  permute(arr_stop_);
  permute(trip_);
  permute(days_);

  for (auto& flag : once_) flag = std::make_unique<std::once_flag>();
  build_seconds_ = watch.ElapsedSeconds();
}

size_t ConnectionArray::DayView::LowerBound(gtfs::TimeOfDay t) const {
  return static_cast<size_t>(
      std::lower_bound(dep_time.begin(), dep_time.end(), t) -
      dep_time.begin());
}

const ConnectionArray::DayView& ConnectionArray::ForDay(gtfs::Day day) const {
  const size_t d = static_cast<size_t>(day);
  STAQ_CHECK(d < 7, "day out of range");
  std::call_once(*once_[d], [this, d, day] {
    DayView& view = day_views_[d];
    size_t n = 0;
    for (gtfs::DayMask mask : days_) {
      if (gtfs::RunsOn(mask, day)) ++n;
    }
    view.dep_time.reserve(n);
    view.arr_time.reserve(n);
    view.dep_stop.reserve(n);
    view.arr_stop.reserve(n);
    view.trip.reserve(n);
    for (size_t i = 0; i < days_.size(); ++i) {
      if (!gtfs::RunsOn(days_[i], day)) continue;
      view.dep_time.push_back(dep_time_[i]);
      view.arr_time.push_back(arr_time_[i]);
      view.dep_stop.push_back(dep_stop_[i]);
      view.arr_stop.push_back(arr_stop_[i]);
      view.trip.push_back(trip_[i]);
    }
  });
  return day_views_[d];
}

std::shared_ptr<const ConnectionArray> ConnectionArray::EnsureFor(
    std::shared_ptr<const ConnectionArray> existing, const gtfs::Feed* feed) {
  if (existing != nullptr && existing->feed() == feed) return existing;
  return std::make_shared<const ConnectionArray>(feed);
}

}  // namespace staq::router
