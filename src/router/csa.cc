#include "router/csa.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

namespace staq::router {

namespace {
constexpr gtfs::TimeOfDay kNever = INT32_MAX;
constexpr double kInf = std::numeric_limits<double>::infinity();
/// "Unreachable" sentinel for the lower-bound matrices. Small enough that
/// kFar + kFar and arrival + kFar stay far from int32 overflow.
constexpr int32_t kFar = 1 << 29;
/// The min-plus closure is cubic in stops; above this, pruning stays off.
constexpr size_t kMaxBoundStops = 1024;
}  // namespace

CsaEngine::CsaEngine(const gtfs::Feed* feed, const RouterOptions& options,
                     std::shared_ptr<const ConnectionArray> connections,
                     const WalkTable* walk_table)
    : feed_(feed),
      options_(options),
      connections_(std::move(connections)),
      walk_table_(walk_table),
      wait_cap_(static_cast<gtfs::TimeOfDay>(options.max_boarding_wait_s)) {
  const size_t num_stops = feed_->num_stops();
  egress_epoch_.assign(num_stops, 0);
  egress_head_.assign(num_stops, -1);
  min_arr_.assign(num_stops, kNever);
  riding_cnt_.assign(feed_->num_trips(), 0);

  // Transfer CSR with the walk seconds rounded once: the footpath closure
  // is one of the scan's hottest loops and must not call lround per offer.
  transfer_offset_.assign(num_stops + 1, 0);
  for (uint32_t s = 0; s < num_stops; ++s) {
    transfer_offset_[s + 1] =
        transfer_offset_[s] +
        static_cast<uint32_t>(walk_table_->Transfers(s).size());
  }
  transfer_hops_.resize(transfer_offset_[num_stops]);
  for (uint32_t s = 0; s < num_stops; ++s) {
    uint32_t at = transfer_offset_[s];
    for (const WalkHop& hop : walk_table_->Transfers(s)) {
      transfer_hops_[at++] =
          IntHop{hop.stop,
                 static_cast<gtfs::TimeOfDay>(std::lround(hop.walk_s)),
                 static_cast<float>(hop.walk_s)};
    }
  }
}

gtfs::TimeOfDay CsaEngine::RelaxLimit(double worst_total,
                                      gtfs::TimeOfDay depart,
                                      gtfs::TimeOfDay latest_arrival) const {
  if (!options_.bounded_relaxation || !std::isfinite(worst_total)) {
    return latest_arrival;
  }
  // Same bound as Router::RelaxLimit: keep labels whose arrival - depart is
  // strictly below the worst still-improvable total.
  double cutoff = std::ceil(worst_total);
  if (cutoff >= static_cast<double>(latest_arrival - depart)) {
    return latest_arrival;
  }
  return depart + static_cast<gtfs::TimeOfDay>(cutoff) - 1;
}

void CsaEngine::EnsureBounds() {
  bounds_built_ = true;
  const size_t num_stops = feed_->num_stops();
  if (num_stops == 0 || num_stops > kMaxBoundStops) return;

  // Admissible edge costs: a connection's pure ride time (waits, dwells and
  // service-day masks dropped — only ever an underestimate) and the exact
  // integer footpath costs the scan adds.
  std::vector<int32_t> d(num_stops * num_stops, kFar);
  for (size_t i = 0; i < num_stops; ++i) d[i * num_stops + i] = 0;
  for (gtfs::TripId t = 0; t < static_cast<gtfs::TripId>(feed_->num_trips());
       ++t) {
    const gtfs::StopTime* end = feed_->trip_end(t);
    for (const gtfs::StopTime* st = feed_->trip_begin(t); st + 1 < end; ++st) {
      int32_t w = (st + 1)->arrival - st->departure;
      if (w < 0) w = 0;
      int32_t& cell = d[st->stop * num_stops + (st + 1)->stop];
      cell = std::min(cell, w);
    }
  }
  for (uint32_t s = 0; s < num_stops; ++s) {
    const uint32_t t1 = transfer_offset_[s + 1];
    for (uint32_t h = transfer_offset_[s]; h < t1; ++h) {
      int32_t& cell = d[s * num_stops + transfer_hops_[h].stop];
      cell = std::min(cell, transfer_hops_[h].walk);
    }
  }

  // Floyd–Warshall min-plus closure, row-contiguous inner loop.
  for (size_t k = 0; k < num_stops; ++k) {
    const int32_t* dk = d.data() + k * num_stops;
    for (size_t i = 0; i < num_stops; ++i) {
      const int32_t dik = d[i * num_stops + k];
      if (dik >= kFar) continue;
      int32_t* di = d.data() + i * num_stops;
      for (size_t j = 0; j < num_stops; ++j) {
        di[j] = std::min(di[j], dik + dk[j]);
      }
    }
  }

  // Transposed so one egress stop's bounds over all source stops are one
  // contiguous row in the per-call target_lb_ build.
  lb_to_.resize(num_stops * num_stops);
  for (size_t s = 0; s < num_stops; ++s) {
    for (size_t e = 0; e < num_stops; ++e) {
      lb_to_[e * num_stops + s] = d[s * num_stops + e];
    }
  }
}

bool CsaEngine::Prunable(size_t col, uint32_t stop, gtfs::TimeOfDay at) const {
  const WindowLane& def = *col_def_[col];
  const double elapsed = static_cast<double>(at - def.depart);
  const double* best = best_total_.data() + col * u_stride_;
  const size_t num_stops = feed_->num_stops();
  for (size_t k = 0; k < def.num_targets; ++k) {
    const uint32_t u = def.targets[k];
    const int32_t lb =
        target_lb_[static_cast<size_t>(u) * num_stops + stop];
    // lb >= kFar means this target's egress set is unreachable from the
    // stop, so the write cannot serve the target at all.
    if (lb < kFar && elapsed + static_cast<double>(lb) < best[u]) {
      return false;
    }
  }
  return true;
}

void CsaEngine::EnsureLaneCapacity(size_t num_lanes) {
  if (num_lanes <= lane_stride_ && !arr_.empty()) return;
  // Only ever grows between calls (no live columns), so the wholesale
  // re-fill cannot lose in-flight state.
  lane_stride_ = std::max(num_lanes, lane_stride_);
  const size_t stops = feed_->num_stops();
  const size_t trips = feed_->num_trips();
  arr_.assign(stops * lane_stride_, kNever);
  meta_.assign(stops * lane_stride_, Label{});
  trip_time_.assign(trips * lane_stride_, kNever);
  trip_stop_.assign(trips * lane_stride_, 0);
  touched_.resize(lane_stride_);
  boarded_.resize(lane_stride_);
  for (auto& v : touched_) v.clear();
  for (auto& v : boarded_) v.clear();
  col_def_.resize(lane_stride_);
  col_latest_.resize(lane_stride_);
  col_worst_.resize(lane_stride_);
  col_worst_ret_.resize(lane_stride_);
  col_relax_.resize(lane_stride_);
  col_retire_.resize(lane_stride_);
  col_retired_.resize(lane_stride_);
  flags_.assign(lane_stride_ + 8, 0);
}

void CsaEngine::UpdateWorst(size_t col) {
  const WindowLane& def = *col_def_[col];
  const double* best = best_total_.data() + col * u_stride_;
  double worst = 0.0;
  double worst_ret = 0.0;
  for (size_t k = 0; k < def.num_targets; ++k) {
    const uint32_t u = def.targets[k];
    worst = std::max(worst, best[u]);
    if (prune_) {
      if (min_tlb_[u] < kFar) {
        worst_ret =
            std::max(worst_ret, best[u] - static_cast<double>(min_tlb_[u]));
      }
    } else {
      worst_ret = std::max(worst_ret, best[u]);
    }
  }
  col_worst_[col] = worst;
  col_worst_ret_[col] = worst_ret;
  col_relax_[col] = RelaxLimit(worst, def.depart, col_latest_[col]);
  double retire = std::min(static_cast<double>(def.depart) + worst_ret,
                           static_cast<double>(col_latest_[col]) + 1.0);
  col_retire_[col] = retire;
  next_retire_ = std::min(next_retire_, retire);
}

void CsaEngine::Improve(size_t col, uint32_t stop, gtfs::TimeOfDay arrival) {
  // Egress relaxation across every unique target wanting this stop. Router
  // settles targets when the stop pops; settling at write time instead sees
  // the same final bests because arrivals only ever decrease — and a write
  // the Router's settle loop would have cut off (arrival past its stopping
  // bound) can by the same bound never beat a recorded best. Foreign
  // targets hold -inf, so a shared entry can never improve them.
  if (egress_epoch_[stop] == call_epoch_) {
    const gtfs::TimeOfDay depart = col_def_[col]->depart;
    double* best_total = best_total_.data() + col * u_stride_;
    double* best_walk = best_walk_.data() + col * u_stride_;
    uint32_t* best_stop = best_stop_.data() + col * u_stride_;
    bool improved = false;
    for (int32_t e = egress_head_[stop]; e >= 0; e = egress_pool_[e].next) {
      const EgressEntry& eg = egress_pool_[e];
      double total = static_cast<double>(arrival - depart) + eg.walk_s;
      if (total < best_total[eg.target]) {
        best_total[eg.target] = total;
        best_stop[eg.target] = stop;
        best_walk[eg.target] = eg.walk_s;
        improved = true;
      }
    }
    if (improved) UpdateWorst(col);
  }

  // Eager footpath closure: the Router walks transfers when the stop
  // settles; closing them on every strict improvement reaches the same
  // fixed point (each re-improvement re-relaxes with a strictly earlier
  // time). Strict improvement also bounds the recursion — a zero-walk
  // cycle re-offers an equal arrival, which does not write.
  const uint32_t t1 = transfer_offset_[stop + 1];
  for (uint32_t h = transfer_offset_[stop]; h < t1; ++h) {
    const IntHop& hop = transfer_hops_[h];
    gtfs::TimeOfDay at = arrival + hop.walk;
    // Hops are sorted by walk time, so the first over-limit hop ends the
    // scan — every later hop lands past the relax limit too.
    if (at > col_relax_[col]) break;
    gtfs::TimeOfDay& cur = arr_[hop.stop * lane_stride_ + col];
    if (at < cur) {
      // continue, not break: the prune bound is per-stop, so a later
      // (longer-walk) hop may still be worth writing.
      if (prune_ && Prunable(col, hop.stop, at)) continue;
      if (cur == kNever) touched_[col].push_back(hop.stop);
      cur = at;
      min_arr_[hop.stop] = std::min(min_arr_[hop.stop], at);
      Label& next = meta_[hop.stop * lane_stride_ + col];
      next.arrival = at;
      next.kind = Label::Kind::kTransfer;
      next.pred_stop = stop;
      next.trip = gtfs::kInvalidId;
      next.board_time = 0;
      next.walk_s = hop.walk_f;
      Improve(col, hop.stop, at);
    }
  }
}

bool CsaEngine::Activate(size_t col) {
  const WindowLane& def = *col_def_[col];
  const double horizon = options_.horizon_s;
  col_latest_[col] = def.depart + static_cast<gtfs::TimeOfDay>(horizon);
  col_retired_[col] = 0;

  // Per-target walk-only baselines (identical to Router::RouteMany);
  // foreign targets get -inf so the shared egress map skips them.
  double* best_total = best_total_.data() + col * u_stride_;
  double* best_walk = best_walk_.data() + col * u_stride_;
  uint32_t* best_stop = best_stop_.data() + col * u_stride_;
  std::fill(best_total, best_total + u_stride_, -kInf);
  double worst = 0.0;
  double worst_ret = 0.0;
  bool dead = prune_;
  for (size_t k = 0; k < def.num_targets; ++k) {
    const uint32_t u = def.targets[k];
    double direct = direct_walk_[u];
    best_total[u] = direct <= horizon ? direct : kInf;
    best_walk[u] = 0.0;
    best_stop[u] = gtfs::kInvalidId;
    worst = std::max(worst, best_total[u]);
    if (prune_) {
      if (acc_lb_[u] < kFar) dead = false;
      // Unreachable targets (min_tlb_ >= kFar) can never change and drop
      // out of the retirement bound entirely.
      if (min_tlb_[u] < kFar) {
        worst_ret = std::max(
            worst_ret, best_total[u] - static_cast<double>(min_tlb_[u]));
      }
    } else {
      worst_ret = std::max(worst_ret, best_total[u]);
    }
  }
  // Every target decided at birth: no ride or footpath chain reaches any
  // of them from this origin's access stops, so the walk baselines are
  // final and the lane never joins the live range.
  if (dead) return false;
  col_worst_[col] = worst;
  col_worst_ret_[col] = worst_ret;
  col_relax_[col] = RelaxLimit(worst, def.depart, col_latest_[col]);
  max_relax_ = std::max(max_relax_, col_relax_[col]);
  double retire = std::min(static_cast<double>(def.depart) + worst_ret,
                           static_cast<double>(col_latest_[col]) + 1.0);
  col_retire_[col] = retire;
  next_retire_ = std::min(next_retire_, retire);

  // Seed every access label first — the Router's seeding order — then run
  // egress/footpath closure from the seeds.
  for (const IntHop& hop : access_int_) {
    gtfs::TimeOfDay at = def.depart + hop.walk;
    if (at > col_relax_[col]) continue;
    gtfs::TimeOfDay& cur = arr_[hop.stop * lane_stride_ + col];
    if (at < cur) {
      if (prune_ && Prunable(col, hop.stop, at)) continue;
      if (cur == kNever) touched_[col].push_back(hop.stop);
      cur = at;
      min_arr_[hop.stop] = std::min(min_arr_[hop.stop], at);
      Label& label = meta_[hop.stop * lane_stride_ + col];
      label.arrival = at;
      label.kind = Label::Kind::kAccess;
      label.pred_stop = gtfs::kInvalidId;
      label.trip = gtfs::kInvalidId;
      label.walk_s = hop.walk_f;
    }
  }
  for (const IntHop& hop : access_int_) {
    gtfs::TimeOfDay at = arr_[hop.stop * lane_stride_ + col];
    if (at != kNever) Improve(col, hop.stop, at);
  }
  return true;
}

Journey CsaEngine::Reconstruct(size_t col, gtfs::TimeOfDay depart,
                               uint32_t egress_stop,
                               double egress_walk_s) const {
  // Mirror of Router::Reconstruct over the lane's labels.
  Journey j;
  j.feasible = true;
  j.depart = depart;

  std::vector<JourneyLeg> reversed;
  uint32_t stop = egress_stop;
  int guard = 0;
  while (stop != gtfs::kInvalidId && guard++ < 1024) {
    const Label& label = meta_[stop * lane_stride_ + col];
    switch (label.kind) {
      case Label::Kind::kAccess: {
        JourneyLeg walk;
        walk.type = JourneyLeg::Type::kWalk;
        walk.end = label.arrival;
        walk.start = label.arrival -
                     static_cast<gtfs::TimeOfDay>(std::lround(label.walk_s));
        walk.to_stop = stop;
        reversed.push_back(walk);
        j.access_walk_s += label.walk_s;
        stop = gtfs::kInvalidId;
        break;
      }
      case Label::Kind::kRide: {
        JourneyLeg ride;
        ride.type = JourneyLeg::Type::kRide;
        ride.route = feed_->trip(label.trip).route;
        ride.from_stop = label.pred_stop;
        ride.to_stop = stop;
        ride.start = label.board_time;
        ride.end = label.arrival;
        reversed.push_back(ride);
        j.in_vehicle_s += static_cast<double>(ride.end - ride.start);
        ++j.num_boardings;
        j.total_fare += feed_->route(ride.route).flat_fare;

        const Label& board_label = meta_[label.pred_stop * lane_stride_ + col];
        gtfs::TimeOfDay waited = label.board_time - board_label.arrival;
        if (waited > 0) {
          JourneyLeg wait;
          wait.type = JourneyLeg::Type::kWait;
          wait.start = board_label.arrival;
          wait.end = label.board_time;
          wait.from_stop = wait.to_stop = label.pred_stop;
          reversed.push_back(wait);
          j.wait_s += static_cast<double>(waited);
        }
        stop = label.pred_stop;
        break;
      }
      case Label::Kind::kTransfer: {
        JourneyLeg walk;
        walk.type = JourneyLeg::Type::kWalk;
        walk.end = label.arrival;
        walk.start = label.arrival -
                     static_cast<gtfs::TimeOfDay>(std::lround(label.walk_s));
        walk.from_stop = label.pred_stop;
        walk.to_stop = stop;
        reversed.push_back(walk);
        j.transfer_walk_s += label.walk_s;
        stop = label.pred_stop;
        break;
      }
      case Label::Kind::kNone:
        assert(false && "reconstruction reached an unlabeled stop");
        stop = gtfs::kInvalidId;
        break;
    }
  }

  std::reverse(reversed.begin(), reversed.end());
  j.legs = std::move(reversed);

  gtfs::TimeOfDay at_stop = meta_[egress_stop * lane_stride_ + col].arrival;
  JourneyLeg walk;
  walk.type = JourneyLeg::Type::kWalk;
  walk.start = at_stop;
  walk.end =
      at_stop + static_cast<gtfs::TimeOfDay>(std::lround(egress_walk_s));
  walk.from_stop = egress_stop;
  j.legs.push_back(walk);
  j.egress_walk_s = egress_walk_s;
  j.arrive = walk.end;
  return j;
}

void CsaEngine::Finalize(size_t col) {
  const WindowLane& def = *col_def_[col];
  const gtfs::TimeOfDay depart = def.depart;
  const double* best_total = best_total_.data() + col * u_stride_;
  const double* best_walk = best_walk_.data() + col * u_stride_;
  const uint32_t* best_stop = best_stop_.data() + col * u_stride_;
  for (size_t k = 0; k < def.num_targets; ++k) {
    const uint32_t u = def.targets[k];
    Journey& j = def.out[k];
    if (best_total[u] == kInf) {
      j = Journey{};
      j.depart = depart;  // infeasible
      continue;
    }
    if (best_stop[u] == gtfs::kInvalidId) {
      // Pure walk wins.
      j = Journey{};
      j.feasible = true;
      j.depart = depart;
      j.arrive = depart + static_cast<gtfs::TimeOfDay>(
                              std::lround(direct_walk_[u]));
      j.access_walk_s = direct_walk_[u];
      JourneyLeg leg;
      leg.type = JourneyLeg::Type::kWalk;
      leg.start = depart;
      leg.end = j.arrive;
      j.legs.clear();
      j.legs.push_back(leg);
      continue;
    }
    j = Reconstruct(col, depart, best_stop[u], best_walk[u]);
  }
}

void CsaEngine::ClearColumn(size_t col) {
  for (uint32_t stop : touched_[col]) {
    arr_[stop * lane_stride_ + col] = kNever;
  }
  touched_[col].clear();
  for (uint32_t trip : boarded_[col]) {
    trip_time_[trip * lane_stride_ + col] = kNever;
    --riding_cnt_[trip];
  }
  boarded_[col].clear();
}

void CsaEngine::RouteMany(const geo::Point& origin, const geo::Point* targets,
                          size_t num_targets, gtfs::Day day,
                          gtfs::TimeOfDay depart, Journey* out,
                          const std::vector<WalkHop>* origin_access) {
  if (num_targets == 0) return;
  identity_targets_.resize(num_targets);
  std::iota(identity_targets_.begin(), identity_targets_.end(), 0u);
  WindowLane lane;
  lane.depart = depart;
  lane.targets = identity_targets_.data();
  lane.num_targets = num_targets;
  lane.out = out;
  RouteWindow(origin, targets, num_targets, &lane, 1, day, origin_access);
}

void CsaEngine::RouteWindow(const geo::Point& origin,
                            const geo::Point* unique_targets,
                            size_t num_unique, const WindowLane* lanes,
                            size_t num_lanes, gtfs::Day day,
                            const std::vector<WalkHop>* origin_access) {
  if (num_lanes == 0) return;
  ++call_epoch_;
  egress_pool_.clear();

  // Window calls amortise the one-time lower-bound closure behind
  // target-directed write pruning; single-departure calls never pay for it
  // (but reuse it when a prior window call on this engine built it).
  if (num_lanes > 1 && !bounds_built_) EnsureBounds();
  const size_t num_stops = feed_->num_stops();
  prune_ = !lb_to_.empty();
  if (prune_) target_lb_.assign(num_unique * num_stops, kFar);

  // Shared zone-level egress map + direct-walk baselines over the unique
  // targets; built once, read by every lane.
  direct_walk_.resize(num_unique);
  for (size_t u = 0; u < num_unique; ++u) {
    direct_walk_[u] = walk_table_->WalkSecondsBetween(origin,
                                                      unique_targets[u]);
    walk_table_->AccessStops(unique_targets[u], &egress_scratch_,
                             &neighbor_scratch_);
    for (const WalkHop& hop : egress_scratch_) {
      if (egress_epoch_[hop.stop] != call_epoch_) {
        egress_epoch_[hop.stop] = call_epoch_;
        egress_head_[hop.stop] = -1;
      }
      egress_pool_.push_back(EgressEntry{hop.walk_s, static_cast<uint32_t>(u),
                                         egress_head_[hop.stop]});
      egress_head_[hop.stop] = static_cast<int32_t>(egress_pool_.size()) - 1;
      if (prune_) {
        // Fold this egress candidate into the target's remaining-time
        // bound: floor() keeps the (double) walk admissible.
        const int32_t walk = static_cast<int32_t>(std::floor(hop.walk_s));
        const int32_t* row = lb_to_.data() +
                             static_cast<size_t>(hop.stop) * num_stops;
        int32_t* tl = target_lb_.data() + u * num_stops;
        for (size_t s = 0; s < num_stops; ++s) {
          tl[s] = std::min(tl[s], row[s] + walk);
        }
      }
    }
  }

  if (origin_access == nullptr) {
    walk_table_->AccessStops(origin, &access_scratch_, &neighbor_scratch_);
    origin_access = &access_scratch_;
  }
  access_int_.resize(origin_access->size());
  for (size_t a = 0; a < origin_access->size(); ++a) {
    const WalkHop& hop = (*origin_access)[a];
    access_int_[a] =
        IntHop{hop.stop, static_cast<gtfs::TimeOfDay>(std::lround(hop.walk_s)),
               static_cast<float>(hop.walk_s)};
  }

  // Per-target derived bounds for this call. min_tlb_ feeds lane
  // retirement: a journey settled from sweep time tau onward costs at
  // least (tau - depart) + min_tlb_[u]. acc_lb_ >= kFar proves the target
  // unreachable (by rides OR footpath chains) from every access stop of
  // this origin, which decides the target at lane birth.
  if (prune_) {
    min_tlb_.assign(num_unique, kFar);
    acc_lb_.assign(num_unique, kFar);
    for (size_t u = 0; u < num_unique; ++u) {
      const int32_t* tl = target_lb_.data() + u * num_stops;
      int32_t m = kFar;
      for (size_t s = 0; s < num_stops; ++s) m = std::min(m, tl[s]);
      min_tlb_[u] = m;
      int32_t a = kFar;
      for (const IntHop& hop : access_int_) a = std::min(a, tl[hop.stop]);
      acc_lb_[u] = a;
    }
  }

  // A lane's transit search can only start once the sweep reaches its
  // earliest seeded arrival: depart + the origin's closest access walk.
  gtfs::TimeOfDay min_offset = 0;
  if (!access_int_.empty()) {
    gtfs::TimeOfDay best = kNever;
    for (const IntHop& hop : access_int_) best = std::min(best, hop.walk);
    min_offset = best;
  }

  // Pending lanes in activation (= departure) order; the lane's rank in
  // this order is its column in the lane-major arrays.
  std::vector<uint32_t>& order = lane_order_;
  order.resize(num_lanes);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [lanes](uint32_t a, uint32_t b) {
                     return lanes[a].depart < lanes[b].depart;
                   });

  EnsureLaneCapacity(num_lanes);
  u_stride_ = num_unique;
  best_total_.resize(num_lanes * u_stride_);
  best_walk_.resize(num_lanes * u_stride_);
  best_stop_.resize(num_lanes * u_stride_);
  for (size_t col = 0; col < num_lanes; ++col) {
    col_def_[col] = &lanes[order[col]];
  }
  next_retire_ = kInf;
  active_count_ = 0;
  max_relax_ = -1;
  std::fill(min_arr_.begin(), min_arr_.end(), kNever);

  size_t pi = 0;  // next column to activate
  size_t lo = 0;  // columns [lo, pi) hold every live lane
  if (!access_int_.empty()) {
    const ConnectionArray::DayView& view = connections_->ForDay(day);
    auto activation = [&](size_t col) {
      return col_def_[col]->depart + min_offset;
    };
    size_t i = view.LowerBound(activation(0));
    while (i < view.size() && (pi < num_lanes || active_count_ > 0)) {
      const gtfs::TimeOfDay tau = view.dep_time[i];

      while (pi < num_lanes && activation(pi) <= tau) {
        if (Activate(pi)) {
          ++active_count_;
        } else {
          Finalize(pi);
          ClearColumn(pi);
          col_retired_[pi] = 1;
        }
        ++pi;
      }
      while (lo < pi && col_retired_[lo]) ++lo;

      // Retire lanes no later connection can improve: every journey found
      // from here on departs a stop at >= tau, so its total exceeds
      // tau - depart (the Router's settle-loop stopping bound). The pass
      // runs only when tau crosses the earliest retire bound — retiring a
      // lane late is result-neutral because relax_limit already rejects
      // every write past the same bound. The pass also refreshes
      // max_relax_, the live lanes' shared relax upper bound.
      if (active_count_ > 0 && static_cast<double>(tau) >= next_retire_) {
        next_retire_ = kInf;
        max_relax_ = -1;
        for (size_t col = lo; col < pi; ++col) {
          if (col_retired_[col]) continue;
          // Exact bound, not the (rounded) col_retire_ schedule: retiring a
          // lane even one time-unit early could drop a boundary write.
          const gtfs::TimeOfDay depart = col_def_[col]->depart;
          if (static_cast<double>(tau - depart) >= col_worst_ret_[col] ||
              tau > col_latest_[col]) {
            Finalize(col);
            ClearColumn(col);
            col_retired_[col] = 1;
            --active_count_;
          } else {
            next_retire_ = std::min(
                next_retire_,
                std::max(col_retire_[col], static_cast<double>(tau) + 1.0));
            max_relax_ = std::max(max_relax_, col_relax_[col]);
          }
        }
        while (lo < pi && col_retired_[lo]) ++lo;
      }

      if (active_count_ == 0) {
        if (pi >= num_lanes) break;
        i = view.LowerBound(activation(pi));
        continue;
      }

      // Whole-connection skip before any lane row is touched: no lane is
      // riding the trip and none has reached dep_stop by tau (min_arr_ is
      // a conservative lower bound — stale-low after retires), or the
      // connection arrives past every live lane's relax limit. In either
      // case no lane could flag below.
      const gtfs::TripId trip = view.trip[i];
      const uint32_t dep_stop = view.dep_stop[i];
      const gtfs::TimeOfDay arr = view.arr_time[i];
      if ((riding_cnt_[trip] == 0 && min_arr_[dep_stop] > tau) ||
          arr > max_relax_) {
        ++i;
        continue;
      }

      // Pre-filter: one branch-free pass over the connection's lane-major
      // rows flags exactly the columns the slow path must touch — a lane
      // whose boarding window is open and that is not yet riding (it must
      // board, even if this connection's write fails, because the board
      // time feeds every later label of the trip), or a riding lane whose
      // arrival actually improves arr_stop. Lanes whose relax limit the
      // arrival exceeds never flag: skipping such a boarding outright is
      // result-neutral, since the trip's later connections arrive later
      // still and relax limits only shrink, so no later write was possible
      // either. Cleared/retired columns read kNever and cannot flag. Edge
      // bytes of the 8-wide gather words are zeroed so the word-skip below
      // never reads stale flags.
      gtfs::TimeOfDay* tt = trip_time_.data() +
                            static_cast<size_t>(trip) * lane_stride_;
      const gtfs::TimeOfDay* ar = arr_.data() +
                                  static_cast<size_t>(dep_stop) * lane_stride_;
      const uint32_t arr_stop = view.arr_stop[i];
      const gtfs::TimeOfDay* cu = arr_.data() +
                                  static_cast<size_t>(arr_stop) * lane_stride_;
      const gtfs::TimeOfDay* relax = col_relax_.data();
      const gtfs::TimeOfDay window_lo = tau - wait_cap_;
      uint8_t* flags = flags_.data();
      const size_t b0 = lo & ~size_t{7};
      const size_t b1 = (pi + 7) & ~size_t{7};
      for (size_t col = b0; col < lo; ++col) flags[col] = 0;
      for (size_t col = pi; col < b1; ++col) flags[col] = 0;
      for (size_t col = lo; col < pi; ++col) {
        const gtfs::TimeOfDay at = ar[col];
        const uint8_t riding = static_cast<uint8_t>(tt[col] != kNever);
        const uint8_t window = static_cast<uint8_t>(at >= window_lo) &
                               static_cast<uint8_t>(at <= tau);
        const uint8_t write = static_cast<uint8_t>(arr < cu[col]);
        flags[col] = static_cast<uint8_t>(
            ((window & static_cast<uint8_t>(riding ^ 1)) | (riding & write)) &
            static_cast<uint8_t>(arr <= relax[col]));
      }
      slow_cols_.clear();
      for (size_t base = b0; base < b1; base += 8) {
        uint64_t word;
        std::memcpy(&word, flags + base, sizeof(word));
        if (word == 0) continue;
        for (size_t b = 0; b < 8; ++b) {
          if (flags[base + b]) {
            slow_cols_.push_back(static_cast<uint32_t>(base + b));
          }
        }
      }

      if (!slow_cols_.empty()) {
        uint32_t* ts = trip_stop_.data() +
                       static_cast<size_t>(trip) * lane_stride_;
        for (uint32_t col : slow_cols_) {
          if (tt[col] == kNever) {
            // Pre-filter guaranteed the boarding condition.
            boarded_[col].push_back(trip);
            ++riding_cnt_[trip];
            tt[col] = tau;
            ts[col] = dep_stop;
          }
          gtfs::TimeOfDay& cur = arr_[static_cast<size_t>(arr_stop) *
                                          lane_stride_ + col];
          if (arr < cur) {
            // Boarding above stays unguarded: a provably-useless arrival
            // write says nothing about later stops of the same trip.
            if (prune_ && Prunable(col, arr_stop, arr)) continue;
            if (cur == kNever) touched_[col].push_back(arr_stop);
            cur = arr;
            min_arr_[arr_stop] = std::min(min_arr_[arr_stop], arr);
            Label& label = meta_[static_cast<size_t>(arr_stop) *
                                     lane_stride_ + col];
            label.arrival = arr;
            label.kind = Label::Kind::kRide;
            label.pred_stop = ts[col];
            label.trip = trip;
            label.board_time = tt[col];
            label.walk_s = 0;
            Improve(col, arr_stop, arr);
          }
        }
      }
      ++i;
    }
  }

  // Drain: lanes still live when the connections ran out, plus lanes the
  // sweep never reached (or that had no access stops at all). The latter
  // still seed and close footpaths — a rounded multi-hop walk can beat the
  // direct walk — exactly like an activated lane that boarded nothing.
  for (size_t col = lo; col < pi; ++col) {
    if (col_retired_[col]) continue;
    Finalize(col);
    ClearColumn(col);
    col_retired_[col] = 1;
  }
  for (; pi < num_lanes; ++pi) {
    Activate(pi);
    Finalize(pi);
    ClearColumn(pi);
    col_retired_[pi] = 1;
  }
}

}  // namespace staq::router
