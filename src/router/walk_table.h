// Walking access and transfer tables.
//
// Walk times between arbitrary points and stops are approximated as
// straight-line distance inflated by a detour factor divided by walking
// speed — the standard approximation when a per-query road search would
// dominate (and what keeps a single SPQ in the ~10ms range the paper
// reports). Stop-to-stop transfer candidates are precomputed once.
#pragma once

#include <memory>
#include <vector>

#include "geo/grid_index.h"
#include "gtfs/feed.h"

namespace staq::router {

/// A stop reachable on foot, with the walk time.
struct WalkHop {
  gtfs::StopId stop = 0;
  double walk_s = 0.0;
};

/// Walking parameters. Paper defaults: ω = 4.5 km/h, τ = 600 s.
struct WalkParams {
  double speed_mps = 4.5 / 3.6;   // ω
  double detour_factor = 1.3;     // street-network detour over straight line
  double max_access_walk_s = 600; // τ: access / egress walk budget
  double max_transfer_walk_s = 300;  // interchange walk budget

  /// Seconds to walk `meters` of straight-line distance.
  double WalkSeconds(double meters) const {
    return meters * detour_factor / speed_mps;
  }
  /// Straight-line metres walkable within `seconds`.
  double ReachMeters(double seconds) const {
    return seconds * speed_mps / detour_factor;
  }
};

/// Precomputed access/transfer structure over a feed's stops.
class WalkTable {
 public:
  WalkTable(const gtfs::Feed* feed, WalkParams params);

  const WalkParams& params() const { return params_; }

  /// Stops reachable on foot from `p` within the access budget, ascending
  /// by walk time.
  std::vector<WalkHop> AccessStops(const geo::Point& p) const;

  /// Reuse-buffer variant of AccessStops for the router hot path: fills
  /// `*out` (cleared first) using `*scratch` for the underlying index
  /// query. Both buffers retain their capacity across calls, so a warmed-up
  /// caller allocates nothing. Results are identical to AccessStops(p).
  void AccessStops(const geo::Point& p, std::vector<WalkHop>* out,
                   std::vector<geo::Neighbor>* scratch) const;

  /// Precomputed foot transfers from `stop` (excluding the stop itself),
  /// ascending by walk time.
  const std::vector<WalkHop>& Transfers(gtfs::StopId stop) const {
    return transfers_[stop];
  }

  /// Walk time between two arbitrary points (no budget applied).
  double WalkSecondsBetween(const geo::Point& a, const geo::Point& b) const {
    return params_.WalkSeconds(geo::Distance(a, b));
  }

 private:
  const gtfs::Feed* feed_;
  WalkParams params_;
  std::unique_ptr<geo::GridIndex> stop_index_;
  std::vector<std::vector<WalkHop>> transfers_;
};

}  // namespace staq::router
