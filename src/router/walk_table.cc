#include "router/walk_table.h"

#include <algorithm>

namespace staq::router {

WalkTable::WalkTable(const gtfs::Feed* feed, WalkParams params)
    : feed_(feed), params_(params) {
  std::vector<geo::IndexedPoint> points;
  points.reserve(feed_->num_stops());
  for (const gtfs::Stop& s : feed_->stops()) {
    points.push_back(geo::IndexedPoint{s.position, s.id});
  }
  double access_reach = params_.ReachMeters(params_.max_access_walk_s);
  if (!points.empty()) {
    stop_index_ = std::make_unique<geo::GridIndex>(
        std::move(points), std::max(access_reach, 50.0));
  }

  // Transfer lists: stops within the transfer walk budget of each stop.
  transfers_.assign(feed_->num_stops(), {});
  double transfer_reach = params_.ReachMeters(params_.max_transfer_walk_s);
  if (stop_index_) {
    for (const gtfs::Stop& s : feed_->stops()) {
      for (const geo::Neighbor& n :
           stop_index_->WithinRadius(s.position, transfer_reach)) {
        if (n.id == s.id) continue;
        transfers_[s.id].push_back(
            WalkHop{n.id, params_.WalkSeconds(n.distance)});
      }
    }
  }
}

std::vector<WalkHop> WalkTable::AccessStops(const geo::Point& p) const {
  std::vector<WalkHop> out;
  std::vector<geo::Neighbor> scratch;
  AccessStops(p, &out, &scratch);
  return out;
}

void WalkTable::AccessStops(const geo::Point& p, std::vector<WalkHop>* out,
                            std::vector<geo::Neighbor>* scratch) const {
  out->clear();
  if (!stop_index_) return;
  double reach = params_.ReachMeters(params_.max_access_walk_s);
  stop_index_->WithinRadius(p, reach, scratch);
  out->reserve(scratch->size());
  for (const geo::Neighbor& n : *scratch) {
    out->push_back(WalkHop{n.id, params_.WalkSeconds(n.distance)});
  }
}

}  // namespace staq::router
