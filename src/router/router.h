// Multi-modal (walk + transit) earliest-arrival router.
//
// This is the library's SPQ oracle — the role OpenTripPlanner plays in the
// paper (§IV-D). A query (origin point, destination point, day, departure
// time) is answered with the earliest-arrival journey, decomposed into the
// components the JT and GAC cost functions need.
//
// Algorithm: label-correcting Dijkstra over stops in the time dimension.
// Settling a stop scans its next departure per route (FIFO timetables make
// the earliest boarding dominate later ones) and rides each trip forward,
// then relaxes precomputed foot transfers. Access and egress legs connect
// arbitrary points to stops within the walking budget; a pure-walk journey
// is always considered.
#pragma once

#include <cstdint>
#include <vector>

#include "gtfs/feed.h"
#include "router/cost.h"
#include "router/walk_table.h"

namespace staq::router {

/// Router configuration.
struct RouterOptions {
  WalkParams walk;
  /// Maximum journey duration considered. The horizon bounds transit stop
  /// labels (and the pure-walk baseline); a journey whose final egress walk
  /// extends slightly past the horizon may still be returned. Journeys
  /// whose total duration fits within the horizon are found optimally.
  double horizon_s = 3 * 3600;
  /// Maximum wait for any single boarding.
  double max_boarding_wait_s = 3600;
};

/// Earliest-arrival router over one Feed. Reuses internal scratch space
/// across queries via epoch versioning; a Router instance is therefore NOT
/// safe for concurrent queries — use one Router per thread.
class Router {
 public:
  Router(const gtfs::Feed* feed, RouterOptions options);

  const RouterOptions& options() const { return options_; }
  const WalkTable& walk_table() const { return walk_table_; }

  /// Answers the SPQ (o, d, t): earliest-arrival journey leaving `origin`
  /// at `depart` on `day`. Returns an infeasible Journey when `dest` cannot
  /// be reached within the horizon.
  Journey Route(const geo::Point& origin, const geo::Point& dest,
                gtfs::Day day, gtfs::TimeOfDay depart);

 private:
  struct Label {
    enum class Kind : uint8_t { kNone, kAccess, kRide, kTransfer };
    gtfs::TimeOfDay arrival = 0;
    Kind kind = Kind::kNone;
    uint32_t pred_stop = gtfs::kInvalidId;  // kRide: boarding stop; kTransfer: origin stop
    gtfs::TripId trip = gtfs::kInvalidId;   // kRide
    gtfs::TimeOfDay board_time = 0;         // kRide: departure at boarding stop
    float walk_s = 0;                       // kAccess / kTransfer walk time
  };

  /// Resets per-query scratch lazily via the epoch counter.
  bool Fresh(uint32_t stop) const { return stop_epoch_[stop] == epoch_; }
  Label& Touch(uint32_t stop);

  void RideTrip(gtfs::TripId trip, uint32_t from_stop_time_index,
                uint32_t board_stop, gtfs::TimeOfDay board_time,
                gtfs::TimeOfDay latest_arrival);
  Journey Reconstruct(const geo::Point& origin, const geo::Point& dest,
                      gtfs::TimeOfDay depart, uint32_t egress_stop,
                      double egress_walk_s) const;

  const gtfs::Feed* feed_;
  RouterOptions options_;
  WalkTable walk_table_;

  // Scratch: labels + priority queue, versioned by epoch_ so a new query
  // needs no O(n) clear.
  uint32_t epoch_ = 0;
  std::vector<uint32_t> stop_epoch_;
  std::vector<Label> labels_;
  std::vector<uint32_t> trip_epoch_;
  std::vector<uint32_t> trip_board_index_;  // earliest stop_time index boarded
  struct QueueEntry {
    gtfs::TimeOfDay time;
    uint32_t stop;
    bool operator>(const QueueEntry& o) const { return time > o.time; }
  };
  std::vector<QueueEntry> queue_storage_;
  std::vector<gtfs::RouteId> seen_routes_scratch_;
};

}  // namespace staq::router
