// Multi-modal (walk + transit) earliest-arrival router.
//
// This is the library's SPQ oracle — the role OpenTripPlanner plays in the
// paper (§IV-D). A query (origin point, destination point, day, departure
// time) is answered with the earliest-arrival journey, decomposed into the
// components the JT and GAC cost functions need.
//
// Algorithm: label-correcting Dijkstra over stops in the time dimension.
// Settling a stop scans its next departure per route (FIFO timetables make
// the earliest boarding dominate later ones) and rides each trip forward,
// then relaxes precomputed foot transfers. Access and egress legs connect
// arbitrary points to stops within the walking budget; a pure-walk journey
// is always considered.
//
// Two batching levers keep the zone-labeling hot path fast without changing
// a single output bit:
//  * RouteMany answers all SPQs that share an origin and departure with ONE
//    expansion — the expansion itself never depends on the destination, so
//    each target reads its answer out of the shared search (per-target
//    egress candidates live in an epoch-stamped pooled map, replacing the
//    per-query O(num_stops) egress table).
//  * Bounded relaxation prunes every label write that would arrive at or
//    after depart + (worst best-known total across targets). Such entries
//    would pop only after the search has already stopped improving, and
//    can never appear on a reconstructed path, so results are bit-identical
//    to the unpruned search (see RouterOptions::bounded_relaxation).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gtfs/feed.h"
#include "router/cost.h"
#include "router/walk_table.h"

namespace staq::router {

class ConnectionArray;
class CsaEngine;

/// Which engine answers SPQs (see router/csa.h for the contract between
/// the two).
enum class RoutingEngine : uint8_t {
  /// Label-correcting Dijkstra (this file) — the oracle foil.
  kLabelCorrecting,
  /// Connection Scan over a preprocessed connection array. Journey times,
  /// feasibility, and the MAC/ACSD aggregates built from them are
  /// bit-identical to kLabelCorrecting; equal-cost journeys may decompose
  /// into different legs (same bounded equivalence as the Router's own
  /// heap-vs-bucket tie-breaks).
  kCsa,
};

/// Router configuration.
struct RouterOptions {
  WalkParams walk;
  /// Maximum journey duration considered. The horizon bounds transit stop
  /// labels (and the pure-walk baseline); a journey whose final egress walk
  /// extends slightly past the horizon may still be returned. Journeys
  /// whose total duration fits within the horizon are found optimally.
  double horizon_s = 3 * 3600;
  /// Maximum wait for any single boarding.
  double max_boarding_wait_s = 3600;
  /// Prune relaxations that provably cannot improve any target: a label
  /// arriving at or after depart + best-known-total would be popped only
  /// after the search breaks, so skipping it is result-preserving (the
  /// equivalence is asserted by tests). Off reproduces the pre-batching
  /// search frontier exactly — kept as the benchmark baseline and as a
  /// verification foil.
  bool bounded_relaxation = true;
  /// Stop the boarding scan once every distinct line — (route, direction),
  /// keyed by the trip's next stop — serving the stop has claimed its
  /// earliest departure (FIFO timetables make later same-direction
  /// departures of a claimed line irrelevant). Skipped iterations can never
  /// board, so results are unchanged; off reproduces the original scan,
  /// which walks the full max_boarding_wait_s window — kept for the
  /// benchmark baseline.
  bool boarding_route_break = true;
  /// Queue discipline. true (default): Dial-style bucket queue — O(1) push,
  /// cursor-scan pop, lazily epoch-reset. false: the original binary heap.
  /// Arrival times (hence journey times, feasibility, MAC/ACSD) are
  /// identical under both disciplines; only the tie-break among equal-time
  /// relaxations — and therefore the decomposition of some equal-cost
  /// journeys into legs — can differ. Kept for the benchmark baseline.
  bool bucket_queue = true;
  /// Engine selection. kCsa answers every query via the Connection Scan
  /// engine (router/csa.h), exposed through Router::csa() for the profile
  /// (window) entry point the labeling hot path uses.
  RoutingEngine engine = RoutingEngine::kLabelCorrecting;
  /// Pre-built connection array to share (kCsa only; must be built from
  /// the same feed the Router is given). Null = the Router builds its own.
  /// Passing one array to every per-thread Router amortises the build —
  /// the array is immutable, so sharing is free — and is how serve keeps
  /// one array alive across scenario epochs.
  std::shared_ptr<const ConnectionArray> connections;
};

/// Earliest-arrival router over one Feed. Reuses internal scratch space
/// across queries via epoch versioning; a Router instance is therefore NOT
/// safe for concurrent queries — use one Router per thread.
class Router {
 public:
  /// Validates `options` with STAQ_CHECK: non-positive horizons, boarding
  /// waits, or walk budgets would silently turn every query into an empty
  /// search, so they abort instead.
  Router(const gtfs::Feed* feed, RouterOptions options);
  ~Router();

  // The CSA engine holds pointers into this Router (walk table, options),
  // so the instance must stay put.
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  const RouterOptions& options() const { return options_; }
  const WalkTable& walk_table() const { return walk_table_; }

  /// The Connection Scan engine when options().engine == kCsa, else null.
  /// The labeling hot path uses it directly for window (profile) queries.
  CsaEngine* csa() { return csa_.get(); }
  const CsaEngine* csa() const { return csa_.get(); }

  /// Answers the SPQ (o, d, t): earliest-arrival journey leaving `origin`
  /// at `depart` on `day`. Returns an infeasible Journey when `dest` cannot
  /// be reached within the horizon.
  Journey Route(const geo::Point& origin, const geo::Point& dest,
                gtfs::Day day, gtfs::TimeOfDay depart);

  /// One-to-many SPQ batch: answers (origin, targets[t], depart) for every
  /// t with a single shared expansion, writing `num_targets` journeys into
  /// `out`. Each journey is bit-identical to the corresponding Route call.
  /// `origin_access`, when non-null, must equal AccessStops(origin) — pass
  /// a cached copy so repeated batches from one origin skip the seeding
  /// lookup.
  void RouteMany(const geo::Point& origin, const geo::Point* targets,
                 size_t num_targets, gtfs::Day day, gtfs::TimeOfDay depart,
                 Journey* out,
                 const std::vector<WalkHop>* origin_access = nullptr);

  /// Convenience overload returning the batch by value.
  std::vector<Journey> RouteMany(const geo::Point& origin,
                                 const std::vector<geo::Point>& targets,
                                 gtfs::Day day, gtfs::TimeOfDay depart);

 private:
  struct Label {
    enum class Kind : uint8_t { kNone, kAccess, kRide, kTransfer };
    gtfs::TimeOfDay arrival = 0;
    Kind kind = Kind::kNone;
    uint32_t pred_stop = gtfs::kInvalidId;  // kRide: boarding stop; kTransfer: origin stop
    gtfs::TripId trip = gtfs::kInvalidId;   // kRide
    gtfs::TimeOfDay board_time = 0;         // kRide: departure at boarding stop
    float walk_s = 0;                       // kAccess / kTransfer walk time
  };

  /// One merged egress candidate: stop -> (target, walk) pairs chained
  /// through `next` into per-stop lists headed by egress_head_.
  struct EgressEntry {
    double walk_s = 0.0;
    uint32_t target = 0;
    int32_t next = -1;
  };

  /// Resets per-query scratch lazily via the epoch counter.
  bool Fresh(uint32_t stop) const { return stop_epoch_[stop] == epoch_; }
  Label& Touch(uint32_t stop);

  /// Latest arrival still worth labeling: relaxations past this bound can
  /// never improve any target (see bounded_relaxation).
  gtfs::TimeOfDay RelaxLimit(double worst_total, gtfs::TimeOfDay depart,
                             gtfs::TimeOfDay latest_arrival) const;

  /// Identity of a FIFO-comparable line through a stop: the route plus the
  /// trip's next stop (the direction proxy). Two directions of one route
  /// usually share a RouteId; only same-direction trips obey the FIFO
  /// boarding dominance the scan relies on. `stop_time_index` must not be a
  /// trip's final call.
  uint64_t LineKey(gtfs::RouteId route, uint32_t stop_time_index) const {
    return (static_cast<uint64_t>(route) << 32) |
           feed_->stop_times()[stop_time_index + 1].stop;
  }

  void RideTrip(gtfs::TripId trip, uint32_t from_stop_time_index,
                uint32_t board_stop, gtfs::TimeOfDay board_time,
                gtfs::TimeOfDay latest_arrival);

  /// Settles one queue entry: relaxes egress candidates, boards departures,
  /// and walks foot transfers. `worst` / `relax_limit` shrink as targets
  /// improve.
  void SettleStop(uint32_t stop, gtfs::TimeOfDay now, gtfs::Day day,
                  gtfs::TimeOfDay depart, gtfs::TimeOfDay latest_arrival,
                  double& worst, gtfs::TimeOfDay& relax_limit);
  Journey Reconstruct(const geo::Point& origin, const geo::Point& dest,
                      gtfs::TimeOfDay depart, uint32_t egress_stop,
                      double egress_walk_s) const;

  const gtfs::Feed* feed_;
  RouterOptions options_;
  WalkTable walk_table_;

  // Connection Scan engine (options_.engine == kCsa): every RouteMany is
  // dispatched to it, and the label-correcting machinery below sits idle as
  // the equivalence oracle.
  std::shared_ptr<const ConnectionArray> connections_;
  std::unique_ptr<CsaEngine> csa_;

  // Distinct lines (route, next stop) serving each stop; lets the boarding
  // scan terminate as soon as every line has claimed its earliest
  // departure.
  std::vector<uint32_t> stop_line_count_;

  // Coarse per-stop departure index: dep_index_[stop * dep_cells_ + c] is
  // the index of the stop's first departure at or after time
  // c << kDepCellShift. Replaces the per-settle binary search over the
  // day's departures with one read plus a short in-cell scan.
  size_t dep_cells_ = 0;
  std::vector<uint32_t> dep_index_;

  /// Enqueues `stop` at arrival time `at` under the configured queue
  /// discipline.
  void PushQueue(gtfs::TimeOfDay at, uint32_t stop);

  // Scratch: labels + queue, versioned by epoch_ so a new query needs no
  // O(n) clear.
  uint32_t epoch_ = 0;
  std::vector<uint32_t> stop_epoch_;
  std::vector<Label> labels_;
  std::vector<uint32_t> trip_epoch_;
  std::vector<uint32_t> trip_board_index_;  // earliest stop_time index boarded
  std::vector<uint64_t> seen_lines_scratch_;

  // Dial-style bucket queue: arrivals are integer seconds in
  // [depart, depart + horizon], so bucket b holds stops reachable at
  // depart + b. Push is O(1); popping scans the cursor forward, which costs
  // at most one pass over the horizon per query and in practice far less
  // (the settle loop breaks at the best-known total). Buckets are lazily
  // reset via bucket_epoch_; queue_pending_ lets the scan stop as soon as
  // the queue drains.
  gtfs::TimeOfDay query_depart_ = 0;
  std::vector<std::vector<uint32_t>> buckets_;
  std::vector<uint32_t> bucket_epoch_;
  uint32_t queue_pending_ = 0;
  size_t max_bucket_ = 0;

  // Binary-heap fallback (RouterOptions::bucket_queue == false).
  struct QueueEntry {
    gtfs::TimeOfDay time;
    uint32_t stop;
    friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
      return a.time > b.time;
    }
  };
  std::vector<QueueEntry> queue_storage_;

  // Merged egress map, versioned by the same epoch (replaces the per-query
  // O(num_stops) egress table).
  std::vector<uint32_t> egress_epoch_;
  std::vector<int32_t> egress_head_;
  std::vector<EgressEntry> egress_pool_;

  // Walk-lookup reuse buffers (retain capacity across queries).
  std::vector<WalkHop> access_scratch_;
  std::vector<WalkHop> egress_scratch_;
  std::vector<geo::Neighbor> neighbor_scratch_;

  // Per-target search state, resized per RouteMany call.
  std::vector<double> tgt_direct_walk_;
  std::vector<double> tgt_best_total_;
  std::vector<double> tgt_best_walk_;
  std::vector<uint32_t> tgt_best_stop_;
};

}  // namespace staq::router
