#include "router/profile.h"

#include <cassert>
#include <cmath>

namespace staq::router {

std::vector<ProfilePoint> SampleProfile(Router* router,
                                        const geo::Point& origin,
                                        const geo::Point& dest,
                                        const gtfs::TimeInterval& v,
                                        int step_s) {
  assert(step_s > 0);
  std::vector<ProfilePoint> profile;
  for (gtfs::TimeOfDay t = v.start; t < v.end; t += step_s) {
    Journey journey = router->Route(origin, dest, v.day, t);
    ProfilePoint point;
    point.depart = t;
    point.feasible = journey.feasible;
    point.arrive = journey.feasible ? journey.arrive : t;
    profile.push_back(point);
  }
  return profile;
}

ProfileStats SummarizeProfile(const std::vector<ProfilePoint>& profile) {
  ProfileStats stats;
  stats.num_points = static_cast<uint32_t>(profile.size());
  double sum = 0.0, sum_sq = 0.0;
  bool first = true;
  for (const ProfilePoint& point : profile) {
    if (!point.feasible) continue;
    double jt = point.JourneyTimeSeconds();
    ++stats.num_feasible;
    sum += jt;
    sum_sq += jt * jt;
    if (first || jt < stats.min_jt_s) stats.min_jt_s = jt;
    if (first || jt > stats.max_jt_s) stats.max_jt_s = jt;
    first = false;
  }
  if (stats.num_feasible > 0) {
    double n = static_cast<double>(stats.num_feasible);
    stats.mean_jt_s = sum / n;
    double var = sum_sq / n - stats.mean_jt_s * stats.mean_jt_s;
    stats.stddev_jt_s = var > 0 ? std::sqrt(var) : 0.0;
  }
  return stats;
}

}  // namespace staq::router
