#include "router/cost.h"

#include <limits>

#include "util/strings.h"

namespace staq::router {

double GeneralizedAccessCost(const Journey& journey, const GacWeights& w) {
  if (!journey.feasible) return std::numeric_limits<double>::infinity();
  double tan = journey.access_walk_s + journey.transfer_walk_s;
  double transfers =
      journey.num_boardings > 1 ? journey.num_boardings - 1 : 0;
  return w.lambda_tan * tan + w.lambda_wt * journey.wait_s +
         w.lambda_ivt * journey.in_vehicle_s +
         w.lambda_et * journey.egress_walk_s +
         w.transfer_penalty_s * transfers +
         journey.total_fare / w.value_of_time;
}

std::string DescribeJourney(const Journey& journey) {
  if (!journey.feasible) return "infeasible";
  std::vector<std::string> parts;
  for (const JourneyLeg& leg : journey.legs) {
    switch (leg.type) {
      case JourneyLeg::Type::kWalk:
        parts.push_back(util::Format("walk %ds", leg.Duration()));
        break;
      case JourneyLeg::Type::kWait:
        parts.push_back(util::Format("wait %ds", leg.Duration()));
        break;
      case JourneyLeg::Type::kRide:
        parts.push_back(util::Format(
            "ride route %u %s->%s", leg.route,
            gtfs::FormatTime(leg.start).c_str(),
            gtfs::FormatTime(leg.end).c_str()));
        break;
    }
  }
  return util::Format("[%s -> %s] ", gtfs::FormatTime(journey.depart).c_str(),
                      gtfs::FormatTime(journey.arrive).c_str()) +
         util::Join(parts, ", ");
}

}  // namespace staq::router
