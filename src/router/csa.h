// Connection Scan engine (CSA) over a preprocessed ConnectionArray.
//
// Answers the same one-to-many earliest-arrival queries as the
// label-correcting Router, but by one linear sweep over the day's
// time-sorted connections instead of a priority-queue search: a connection
// (dep_stop, arr_stop, τ_dep, τ_arr, trip) relaxes arr_stop when its trip
// was already boarded or when dep_stop was reached by τ_dep within the
// boarding-wait budget. Footpaths are closed eagerly on every arrival
// improvement and egress targets are settled at write time, which makes the
// final per-target bests — journey times, feasibility, and therefore every
// MAC/ACSD aggregate — exactly equal to the Router's (the golden
// equivalence suite pins this). Equal-cost journeys may decompose into
// different legs than the Router's, exactly like the Router's own
// heap-vs-bucket tie-breaks; see DESIGN.md §11 for the equivalence
// contract.
//
// The profile (window) entry point is what the labeling hot path uses: all
// departure times of one TODAM rate window are answered with ONE sweep.
// Each distinct departure is a *lane* — an independent replica of the
// single-query scan state — and every connection is offered to the lanes
// active at its departure time. Lanes activate when the sweep reaches their
// earliest seeded arrival and retire (finalising their journeys) as soon as
// no later connection can improve them, so the number of live lanes tracks
// the spread of unfinished searches, not the window length. Per-lane
// results are bit-identical to running that departure's scan alone — lanes
// share only the connection decode, the origin's access stops, and the
// zone-level egress table.
//
// Lane state is stored structure-of-arrays, lane-major per stop and per
// trip: a connection's boarding test reads two contiguous rows
// (trip_time_[trip][*] and arr_[dep_stop][*]) instead of chasing one
// ~50KB private state block per lane, and a branch-free pre-filter walks
// those rows to find the (rare) lanes that actually board or improve. The
// slow path then replays the exact single-lane logic, so the layout is
// invisible in the results.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "router/connections.h"
#include "router/cost.h"
#include "router/router.h"
#include "router/walk_table.h"

namespace staq::router {

/// One departure of a window (profile) query: a departure time plus the
/// subset of the call's unique targets it must answer. `targets` holds
/// indices into the unique-target array passed alongside; `out` receives
/// one journey per entry, in the same order.
struct WindowLane {
  gtfs::TimeOfDay depart = 0;
  const uint32_t* targets = nullptr;
  size_t num_targets = 0;
  Journey* out = nullptr;
};

/// Connection Scan engine over one feed. Holds per-query scratch (epoch
/// versioned, like Router), so one instance per thread; the ConnectionArray
/// it scans is immutable and shared across threads. Construct via a Router
/// with RoutingEngine::kCsa — the Router owns the engine and dispatches to
/// it, keeping one walk table and one options set between the two.
class CsaEngine {
 public:
  /// `feed`, `connections` (built from `feed`) and `walk_table` must
  /// outlive the engine. Options are validated by the owning Router.
  CsaEngine(const gtfs::Feed* feed, const RouterOptions& options,
            std::shared_ptr<const ConnectionArray> connections,
            const WalkTable* walk_table);

  const ConnectionArray& connections() const { return *connections_; }

  /// One-to-many earliest arrival; same contract as Router::RouteMany.
  void RouteMany(const geo::Point& origin, const geo::Point* targets,
                 size_t num_targets, gtfs::Day day, gtfs::TimeOfDay depart,
                 Journey* out,
                 const std::vector<WalkHop>* origin_access = nullptr);

  /// Profile query: answers every lane of one rate window with a single
  /// sweep. `unique_targets` is the deduplicated target table the lanes
  /// index into; each lane's journeys are bit-identical to a RouteMany call
  /// for (origin, its targets, its depart). `origin_access`, when non-null,
  /// must equal AccessStops(origin).
  void RouteWindow(const geo::Point& origin, const geo::Point* unique_targets,
                   size_t num_unique, const WindowLane* lanes,
                   size_t num_lanes, gtfs::Day day,
                   const std::vector<WalkHop>* origin_access = nullptr);

 private:
  /// Per-stop search label; mirrors Router::Label field for field so the
  /// reconstruction (and its tie behaviour) is the same code shape.
  struct Label {
    enum class Kind : uint8_t { kNone, kAccess, kRide, kTransfer };
    gtfs::TimeOfDay arrival = 0;
    Kind kind = Kind::kNone;
    uint32_t pred_stop = gtfs::kInvalidId;
    gtfs::TripId trip = gtfs::kInvalidId;
    gtfs::TimeOfDay board_time = 0;
    float walk_s = 0;
  };

  /// One merged egress candidate (stop -> (unique target, walk)), chained
  /// through `next` into per-stop lists headed by egress_head_.
  struct EgressEntry {
    double walk_s = 0.0;
    uint32_t target = 0;
    int32_t next = -1;
  };

  /// One footpath/seed hop with the rounded-seconds integer the scan adds
  /// and the float the journey leg records — both precomputed so the hot
  /// closure loop never calls lround.
  struct IntHop {
    uint32_t stop = 0;
    gtfs::TimeOfDay walk = 0;  // lround(walk_s)
    float walk_f = 0.0f;
  };

  gtfs::TimeOfDay RelaxLimit(double worst_total, gtfs::TimeOfDay depart,
                             gtfs::TimeOfDay latest_arrival) const;
  /// Builds lb_to_, the admissible stop→stop lower-bound matrix behind
  /// target-directed write pruning (see Prunable). Runs once per engine,
  /// lazily on the first window call; skipped (pruning stays off) above a
  /// stop-count cap where the cubic min-plus closure would not pay off.
  void EnsureBounds();
  /// True when a label write (stop, at) in lane `col` provably cannot
  /// change any output: for every target of the lane, the write's journey
  /// time plus the admissible remaining-time bound already reaches the
  /// target's current best. Bit-exact: bests only decrease (the bound
  /// only tightens), ties don't write (strict improvement), and every
  /// prefix of an eventually-winning journey strictly beats the best of
  /// its time, so winning chains are never pruned.
  bool Prunable(size_t col, uint32_t stop, gtfs::TimeOfDay at) const;
  /// Grows the lane-major arrays to hold `num_lanes` columns. Grow-only:
  /// retired columns are wiped back to kNever, so rows stay clean across
  /// calls as long as the stride never changes under them.
  void EnsureLaneCapacity(size_t num_lanes);
  /// Recomputes a lane's pruning state from its own targets' bests.
  void UpdateWorst(size_t col);
  /// Relaxes egress candidates and closes footpaths after `stop` improved
  /// to `arrival` in lane `col`. Recursive over transfer chains (strict
  /// improvement bounds the depth).
  void Improve(size_t col, uint32_t stop, gtfs::TimeOfDay arrival);
  /// Seeds a lane's access stops; called when the sweep reaches the lane's
  /// first possible arrival. Returns false when the lane is already decided
  /// at birth — every target provably transit-unreachable — and only needs
  /// Finalize; it must then never join the live range.
  bool Activate(size_t col);
  /// Writes the lane's journeys (reconstruct / pure walk / infeasible).
  void Finalize(size_t col);
  /// Wipes the lane's stop/trip rows back to kNever (touched/boarded lists
  /// record exactly what was written). Must follow Finalize.
  void ClearColumn(size_t col);
  Journey Reconstruct(size_t col, gtfs::TimeOfDay depart, uint32_t egress_stop,
                      double egress_walk_s) const;

  const gtfs::Feed* feed_;
  const RouterOptions& options_;
  std::shared_ptr<const ConnectionArray> connections_;
  const WalkTable* walk_table_;
  gtfs::TimeOfDay wait_cap_;  // max_boarding_wait_s, truncated like Router

  // Shared per-call state (one window = one call epoch): merged egress map
  // over unique targets + direct-walk baselines.
  uint32_t call_epoch_ = 0;
  std::vector<uint32_t> egress_epoch_;
  std::vector<int32_t> egress_head_;
  std::vector<EgressEntry> egress_pool_;
  std::vector<double> direct_walk_;

  // Transfer footpaths in CSR form with precomputed integer walk seconds
  // (built once in the constructor from the walk table).
  std::vector<IntHop> transfer_hops_;
  std::vector<uint32_t> transfer_offset_;  // num_stops + 1 entries

  // Origin access hops of the in-flight call (seeds for every lane),
  // with the same precomputed integer/float walk pair.
  std::vector<IntHop> access_int_;

  // --- Lane-major scan state. Column = the lane's activation rank within
  // the in-flight call; stride = lane_stride_ (grow-only). arr_ duplicates
  // meta_'s arrival so the hot pre-filter touches 4-byte rows only; meta_
  // entries are valid exactly where arr_ != kNever.
  size_t lane_stride_ = 0;
  std::vector<gtfs::TimeOfDay> arr_;        // [stop * stride + col]
  std::vector<Label> meta_;                 // [stop * stride + col]
  std::vector<gtfs::TimeOfDay> trip_time_;  // board time; kNever = not riding
  std::vector<uint32_t> trip_stop_;         // board stop, valid while riding
  std::vector<std::vector<uint32_t>> touched_;  // per col: stops written
  std::vector<std::vector<uint32_t>> boarded_;  // per col: trips boarded

  // Per-column lane scalars.
  std::vector<const WindowLane*> col_def_;
  std::vector<gtfs::TimeOfDay> col_latest_;
  std::vector<double> col_worst_;
  std::vector<gtfs::TimeOfDay> col_relax_;
  std::vector<double> col_retire_;  // min(depart + worst, latest + 1)
  std::vector<uint8_t> col_retired_;
  /// Earliest col_retire_ among live lanes: the sweep only runs its
  /// retirement pass when tau reaches it. Retiring late is result-neutral
  /// (relax_limit already blocks every write past the bound).
  double next_retire_ = 0.0;
  size_t active_count_ = 0;

  // Per-(col, unique target) bests, stride u_stride_ = the call's unique
  // count. Foreign targets (not in the lane's subset) hold -inf so shared
  // egress entries can never improve them.
  size_t u_stride_ = 0;
  std::vector<double> best_total_;
  std::vector<double> best_walk_;
  std::vector<uint32_t> best_stop_;

  // Connection-skip summaries: a connection is offered to lanes only when
  // some live lane could possibly use it. min_arr_[stop] lower-bounds every
  // live lane's arrival at the stop (stale-low after retires — only ever
  // conservative); riding_cnt_[trip] counts lanes currently riding;
  // max_relax_ upper-bounds every live lane's relax limit.
  std::vector<gtfs::TimeOfDay> min_arr_;
  std::vector<uint16_t> riding_cnt_;
  gtfs::TimeOfDay max_relax_ = 0;

  // Target-directed write pruning (output-exact, A*-style). lb_to_[e*S+s]
  // lower-bounds any in-network continuation s→e: min-plus closure over
  // per-pair minimum ride times (waits and dwells dropped) and the exact
  // integer footpath costs the scan itself adds. target_lb_[u*S+s] is the
  // per-call refinement min over the target's egress stops e of
  // lb_to_[e][s] + floor(egress walk) — a lower bound on the journey time
  // still ahead of a label at s bound for unique target u.
  bool bounds_built_ = false;
  bool prune_ = false;  // this call has target_lb_ (lb_to_ built, non-empty)
  std::vector<int32_t> lb_to_;      // [egress stop * num_stops + stop]
  std::vector<int32_t> target_lb_;  // [unique target * num_stops + stop]
  // Per-call derived bounds. min_tlb_[u] = min over stops of target_lb_:
  // every journey settled from sweep time tau onward costs at least
  // (tau - depart) + min_tlb_[u], which retires lanes earlier than the
  // plain depart + best schedule. acc_lb_[u] >= kFar proves target u has
  // no transit path from ANY of the origin's access stops — a lane whose
  // targets are all such is finalised at activation (walk-only /
  // infeasible) and never joins the live range at all.
  std::vector<int32_t> min_tlb_;  // [unique target]
  std::vector<int32_t> acc_lb_;   // [unique target]
  // Retirement variant of col_worst_: max over the lane's targets of
  // best[u] - min_tlb_[u]. Unreachable targets drop out entirely (their
  // best can never change). col_worst_ itself must stay the plain max —
  // it bounds which *writes* can still matter (relax limits), where the
  // per-stop slack is already charged by Prunable.
  std::vector<double> col_worst_ret_;

  // Activation-order scratch, the pre-filter's byte flags and hit list,
  // and the identity-target scratch for RouteMany.
  std::vector<uint32_t> lane_order_;
  std::vector<uint8_t> flags_;
  std::vector<uint32_t> slow_cols_;
  std::vector<uint32_t> identity_targets_;

  // Walk-lookup reuse buffers.
  std::vector<WalkHop> access_scratch_;
  std::vector<WalkHop> egress_scratch_;
  std::vector<geo::Neighbor> neighbor_scratch_;
};

}  // namespace staq::router
