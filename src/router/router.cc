#include "router/router.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace staq::router {

namespace {
constexpr gtfs::TimeOfDay kNever = INT32_MAX;
}

Router::Router(const gtfs::Feed* feed, RouterOptions options)
    : feed_(feed), options_(options), walk_table_(feed, options.walk) {
  stop_epoch_.assign(feed_->num_stops(), 0);
  labels_.resize(feed_->num_stops());
  trip_epoch_.assign(feed_->num_trips(), 0);
  trip_board_index_.assign(feed_->num_trips(), 0);
  epoch_ = 0;
}

Router::Label& Router::Touch(uint32_t stop) {
  if (stop_epoch_[stop] != epoch_) {
    stop_epoch_[stop] = epoch_;
    labels_[stop] = Label{};
    labels_[stop].arrival = kNever;
  }
  return labels_[stop];
}

void Router::RideTrip(gtfs::TripId trip, uint32_t from_stop_time_index,
                      uint32_t board_stop, gtfs::TimeOfDay board_time,
                      gtfs::TimeOfDay latest_arrival) {
  const gtfs::Trip& t = feed_->trip(trip);
  uint32_t end = t.first_stop_time + t.num_stop_times;

  // If this trip was already ridden from an earlier (or equal) call, the
  // earlier ride already relaxed everything downstream at least as well.
  if (trip_epoch_[trip] == epoch_ &&
      trip_board_index_[trip] <= from_stop_time_index) {
    return;
  }
  trip_epoch_[trip] = epoch_;
  trip_board_index_[trip] = from_stop_time_index;

  const auto& stop_times = feed_->stop_times();
  for (uint32_t i = from_stop_time_index + 1; i < end; ++i) {
    const gtfs::StopTime& call = stop_times[i];
    if (call.arrival > latest_arrival) break;
    Label& label = Touch(call.stop);
    if (call.arrival < label.arrival) {
      label.arrival = call.arrival;
      label.kind = Label::Kind::kRide;
      label.pred_stop = board_stop;
      label.trip = trip;
      label.board_time = board_time;
      label.walk_s = 0;
      queue_storage_.push_back(QueueEntry{call.arrival, call.stop});
      std::push_heap(queue_storage_.begin(), queue_storage_.end(),
                     std::greater<>());
    }
  }
}

Journey Router::Route(const geo::Point& origin, const geo::Point& dest,
                      gtfs::Day day, gtfs::TimeOfDay depart) {
  ++epoch_;
  queue_storage_.clear();

  gtfs::TimeOfDay latest_arrival =
      depart + static_cast<gtfs::TimeOfDay>(options_.horizon_s);

  // Walk-only baseline.
  double direct_walk_s = walk_table_.WalkSecondsBetween(origin, dest);
  double best_total = direct_walk_s <= options_.horizon_s
                          ? direct_walk_s
                          : std::numeric_limits<double>::infinity();

  // Seed access stops.
  for (const WalkHop& hop : walk_table_.AccessStops(origin)) {
    gtfs::TimeOfDay at =
        depart + static_cast<gtfs::TimeOfDay>(std::lround(hop.walk_s));
    if (at > latest_arrival) continue;
    Label& label = Touch(hop.stop);
    if (at < label.arrival) {
      label.arrival = at;
      label.kind = Label::Kind::kAccess;
      label.pred_stop = gtfs::kInvalidId;
      label.walk_s = static_cast<float>(hop.walk_s);
      queue_storage_.push_back(QueueEntry{at, hop.stop});
      std::push_heap(queue_storage_.begin(), queue_storage_.end(),
                     std::greater<>());
    }
  }

  // Egress candidates, checked as stops settle.
  std::vector<WalkHop> egress = walk_table_.AccessStops(dest);
  std::vector<double> egress_walk(feed_->num_stops(),
                                  std::numeric_limits<double>::infinity());
  for (const WalkHop& hop : egress) egress_walk[hop.stop] = hop.walk_s;

  uint32_t best_egress_stop = gtfs::kInvalidId;
  double best_egress_walk = 0.0;

  while (!queue_storage_.empty()) {
    std::pop_heap(queue_storage_.begin(), queue_storage_.end(),
                  std::greater<>());
    QueueEntry entry = queue_storage_.back();
    queue_storage_.pop_back();

    Label& label = Touch(entry.stop);
    if (entry.time > label.arrival) continue;  // stale
    gtfs::TimeOfDay now = entry.time;

    // Once the earliest settled time alone exceeds the best known total
    // arrival, nothing can improve (egress walk is non-negative).
    if (static_cast<double>(now - depart) >= best_total) break;

    // Egress relaxation.
    double ew = egress_walk[entry.stop];
    if (ew != std::numeric_limits<double>::infinity()) {
      double total = static_cast<double>(now - depart) + ew;
      if (total < best_total) {
        best_total = total;
        best_egress_stop = entry.stop;
        best_egress_walk = ew;
      }
    }

    // Boarding scan: first departure per distinct route at or after `now`.
    seen_routes_scratch_.clear();
    const auto& deps = feed_->departures(entry.stop);
    auto it = std::lower_bound(
        deps.begin(), deps.end(), now,
        [](const gtfs::Departure& d, gtfs::TimeOfDay t) { return d.time < t; });
    gtfs::TimeOfDay scan_limit =
        now + static_cast<gtfs::TimeOfDay>(options_.max_boarding_wait_s);
    for (; it != deps.end() && it->time <= scan_limit; ++it) {
      const gtfs::Trip& trip = feed_->trip(it->trip);
      if (!gtfs::RunsOn(trip.days, day)) continue;
      if (it->stop_time_index + 1 >= trip.first_stop_time + trip.num_stop_times)
        continue;  // final call
      if (std::find(seen_routes_scratch_.begin(), seen_routes_scratch_.end(),
                    trip.route) != seen_routes_scratch_.end()) {
        continue;  // a FIFO-earlier trip of this route was already boarded
      }
      seen_routes_scratch_.push_back(trip.route);
      RideTrip(it->trip, it->stop_time_index, entry.stop, it->time,
               latest_arrival);
    }

    // Foot transfers.
    for (const WalkHop& hop : walk_table_.Transfers(entry.stop)) {
      gtfs::TimeOfDay at =
          now + static_cast<gtfs::TimeOfDay>(std::lround(hop.walk_s));
      if (at > latest_arrival) continue;
      Label& next = Touch(hop.stop);
      if (at < next.arrival) {
        next.arrival = at;
        next.kind = Label::Kind::kTransfer;
        next.pred_stop = entry.stop;
        next.trip = gtfs::kInvalidId;
        next.walk_s = static_cast<float>(hop.walk_s);
        queue_storage_.push_back(QueueEntry{at, hop.stop});
        std::push_heap(queue_storage_.begin(), queue_storage_.end(),
                       std::greater<>());
      }
    }
  }

  if (best_total == std::numeric_limits<double>::infinity()) {
    Journey none;
    none.depart = depart;
    return none;  // infeasible
  }

  if (best_egress_stop == gtfs::kInvalidId) {
    // Pure walk wins.
    Journey j;
    j.feasible = true;
    j.depart = depart;
    j.arrive = depart + static_cast<gtfs::TimeOfDay>(std::lround(direct_walk_s));
    j.access_walk_s = direct_walk_s;
    JourneyLeg leg;
    leg.type = JourneyLeg::Type::kWalk;
    leg.start = depart;
    leg.end = j.arrive;
    j.legs.push_back(leg);
    return j;
  }

  return Reconstruct(origin, dest, depart, best_egress_stop, best_egress_walk);
}

Journey Router::Reconstruct(const geo::Point& /*origin*/,
                            const geo::Point& /*dest*/, gtfs::TimeOfDay depart,
                            uint32_t egress_stop, double egress_walk_s) const {
  Journey j;
  j.feasible = true;
  j.depart = depart;

  // Walk back through labels collecting legs in reverse.
  std::vector<JourneyLeg> reversed;
  uint32_t stop = egress_stop;
  // The label array is valid for the current epoch; Reconstruct is called
  // immediately after the search.
  int guard = 0;
  while (stop != gtfs::kInvalidId && guard++ < 1024) {
    const Label& label = labels_[stop];
    switch (label.kind) {
      case Label::Kind::kAccess: {
        JourneyLeg walk;
        walk.type = JourneyLeg::Type::kWalk;
        walk.end = label.arrival;
        walk.start = label.arrival -
                     static_cast<gtfs::TimeOfDay>(std::lround(label.walk_s));
        walk.to_stop = stop;
        reversed.push_back(walk);
        j.access_walk_s += label.walk_s;
        stop = gtfs::kInvalidId;
        break;
      }
      case Label::Kind::kRide: {
        JourneyLeg ride;
        ride.type = JourneyLeg::Type::kRide;
        ride.route = feed_->trip(label.trip).route;
        ride.from_stop = label.pred_stop;
        ride.to_stop = stop;
        ride.start = label.board_time;
        ride.end = label.arrival;
        reversed.push_back(ride);
        j.in_vehicle_s += static_cast<double>(ride.end - ride.start);
        ++j.num_boardings;
        j.total_fare += feed_->route(ride.route).flat_fare;

        // Wait at the boarding stop between arrival there and departure.
        const Label& board_label = labels_[label.pred_stop];
        gtfs::TimeOfDay waited = label.board_time - board_label.arrival;
        if (waited > 0) {
          JourneyLeg wait;
          wait.type = JourneyLeg::Type::kWait;
          wait.start = board_label.arrival;
          wait.end = label.board_time;
          wait.from_stop = wait.to_stop = label.pred_stop;
          reversed.push_back(wait);
          j.wait_s += static_cast<double>(waited);
        }
        stop = label.pred_stop;
        break;
      }
      case Label::Kind::kTransfer: {
        JourneyLeg walk;
        walk.type = JourneyLeg::Type::kWalk;
        walk.end = label.arrival;
        walk.start = label.arrival -
                     static_cast<gtfs::TimeOfDay>(std::lround(label.walk_s));
        walk.from_stop = label.pred_stop;
        walk.to_stop = stop;
        reversed.push_back(walk);
        j.transfer_walk_s += label.walk_s;
        stop = label.pred_stop;
        break;
      }
      case Label::Kind::kNone:
        assert(false && "reconstruction reached an unlabeled stop");
        stop = gtfs::kInvalidId;
        break;
    }
  }

  std::reverse(reversed.begin(), reversed.end());
  j.legs = std::move(reversed);

  // Egress leg.
  gtfs::TimeOfDay at_stop = labels_[egress_stop].arrival;
  JourneyLeg walk;
  walk.type = JourneyLeg::Type::kWalk;
  walk.start = at_stop;
  walk.end =
      at_stop + static_cast<gtfs::TimeOfDay>(std::lround(egress_walk_s));
  walk.from_stop = egress_stop;
  j.legs.push_back(walk);
  j.egress_walk_s = egress_walk_s;
  j.arrive = walk.end;
  return j;
}

}  // namespace staq::router
