#include "router/router.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "router/connections.h"
#include "router/csa.h"
#include "util/check.h"

namespace staq::router {

namespace {
constexpr gtfs::TimeOfDay kNever = INT32_MAX;
// Coarse departure-index cell width (power of two, seconds). One cell holds
// ~a headway's worth of departures, so the residual forward scan after the
// index lookup is a step or two.
constexpr int kDepCellShift = 6;
}  // namespace

Router::Router(const gtfs::Feed* feed, RouterOptions options)
    : feed_(feed), options_(options), walk_table_(feed, options.walk) {
  // A non-positive budget would not fail — it would make every search come
  // back empty (no boarding window, no reachable stop), which reads as
  // "nothing is accessible" instead of "the options are wrong".
  STAQ_CHECK(options_.horizon_s > 0, "horizon_s must be positive");
  STAQ_CHECK(options_.max_boarding_wait_s > 0,
             "max_boarding_wait_s must be positive");
  STAQ_CHECK(options_.walk.speed_mps > 0, "walk speed must be positive");
  STAQ_CHECK(options_.walk.detour_factor > 0,
             "walk detour factor must be positive");
  STAQ_CHECK(options_.walk.max_access_walk_s > 0,
             "access walk budget must be positive");
  STAQ_CHECK(options_.walk.max_transfer_walk_s > 0,
             "transfer walk budget must be positive");

  if (options_.engine == RoutingEngine::kCsa) {
    connections_ = ConnectionArray::EnsureFor(options_.connections, feed_);
    csa_ = std::make_unique<CsaEngine>(feed_, options_, connections_,
                                       &walk_table_);
  }

  stop_epoch_.assign(feed_->num_stops(), 0);
  labels_.resize(feed_->num_stops());
  trip_epoch_.assign(feed_->num_trips(), 0);
  trip_board_index_.assign(feed_->num_trips(), 0);
  egress_epoch_.assign(feed_->num_stops(), 0);
  egress_head_.assign(feed_->num_stops(), -1);
  epoch_ = 0;

  size_t num_buckets = static_cast<size_t>(options_.horizon_s) + 2;
  buckets_.resize(num_buckets);
  bucket_epoch_.assign(num_buckets, 0);

  // Distinct lines per stop, where a line is (route, next stop): the FIFO
  // claim only holds among trips of one route heading the same way, and a
  // route's two directions commonly share a RouteId, so keying on the route
  // alone would let an already-ridden outbound trip block boarding the
  // inbound one. The boarding scan needs at most one departure per line, so
  // it can stop as soon as every line serving the stop has been claimed —
  // on typical feeds most stops serve a single line per direction, which
  // turns an hour-long departure scan into a handful of hits.
  stop_line_count_.assign(feed_->num_stops(), 0);
  gtfs::TimeOfDay last_dep = 0;
  std::vector<uint64_t> lines;
  for (uint32_t s = 0; s < feed_->num_stops(); ++s) {
    lines.clear();
    for (const gtfs::Departure& d : feed_->departures(s)) {
      last_dep = std::max(last_dep, d.time);
      const gtfs::Trip& t = feed_->trip(d.trip);
      if (d.stop_time_index + 1 >= t.first_stop_time + t.num_stop_times) {
        continue;  // final call: never boardable, claims no line
      }
      uint64_t line = LineKey(t.route, d.stop_time_index);
      if (std::find(lines.begin(), lines.end(), line) == lines.end()) {
        lines.push_back(line);
      }
    }
    stop_line_count_[s] = static_cast<uint32_t>(lines.size());
  }

  // Coarse per-stop departure index: cell c of stop s holds the index of
  // the first departure at or after time c << kDepCellShift. Turns the
  // per-settle binary search over the day's departures into one array read
  // plus a short in-cell scan.
  dep_cells_ = (static_cast<size_t>(last_dep) >> kDepCellShift) + 2;
  dep_index_.assign(feed_->num_stops() * dep_cells_, 0);
  for (uint32_t s = 0; s < feed_->num_stops(); ++s) {
    const auto& deps = feed_->departures(s);
    size_t j = deps.size();
    for (size_t c = dep_cells_; c-- > 0;) {
      gtfs::TimeOfDay cell_start =
          static_cast<gtfs::TimeOfDay>(c << kDepCellShift);
      while (j > 0 && deps[j - 1].time >= cell_start) --j;
      dep_index_[s * dep_cells_ + c] = static_cast<uint32_t>(j);
      if (j == 0 && cell_start == 0) break;  // remaining cells stay 0
    }
  }
}

Router::~Router() = default;

void Router::PushQueue(gtfs::TimeOfDay at, uint32_t stop) {
  if (!options_.bucket_queue) {
    queue_storage_.push_back(QueueEntry{at, stop});
    std::push_heap(queue_storage_.begin(), queue_storage_.end(),
                   std::greater<>());
    return;
  }
  size_t idx = static_cast<size_t>(at - query_depart_);
  if (bucket_epoch_[idx] != epoch_) {
    bucket_epoch_[idx] = epoch_;
    buckets_[idx].clear();
  }
  buckets_[idx].push_back(stop);
  max_bucket_ = std::max(max_bucket_, idx);
  ++queue_pending_;
}

Router::Label& Router::Touch(uint32_t stop) {
  if (stop_epoch_[stop] != epoch_) {
    stop_epoch_[stop] = epoch_;
    labels_[stop] = Label{};
    labels_[stop].arrival = kNever;
  }
  return labels_[stop];
}

gtfs::TimeOfDay Router::RelaxLimit(double worst_total, gtfs::TimeOfDay depart,
                                   gtfs::TimeOfDay latest_arrival) const {
  if (!options_.bounded_relaxation || !std::isfinite(worst_total)) {
    return latest_arrival;
  }
  // Keep labels with arrival - depart < worst_total; for integer arrivals
  // the latest such value is depart + ceil(worst_total) - 1.
  double cutoff = std::ceil(worst_total);
  if (cutoff >= static_cast<double>(latest_arrival - depart)) {
    return latest_arrival;
  }
  return depart + static_cast<gtfs::TimeOfDay>(cutoff) - 1;
}

void Router::RideTrip(gtfs::TripId trip, uint32_t from_stop_time_index,
                      uint32_t board_stop, gtfs::TimeOfDay board_time,
                      gtfs::TimeOfDay latest_arrival) {
  const gtfs::Trip& t = feed_->trip(trip);
  uint32_t end = t.first_stop_time + t.num_stop_times;

  // If this trip was already ridden from an earlier (or equal) call, the
  // earlier ride already relaxed everything downstream at least as well.
  // (With bounded relaxation the earlier ride may have pruned more, but
  // only labels past the — monotonically shrinking — relax limit, which
  // stay prunable now.)
  if (trip_epoch_[trip] == epoch_ &&
      trip_board_index_[trip] <= from_stop_time_index) {
    return;
  }
  trip_epoch_[trip] = epoch_;
  trip_board_index_[trip] = from_stop_time_index;

  const auto& stop_times = feed_->stop_times();
  for (uint32_t i = from_stop_time_index + 1; i < end; ++i) {
    const gtfs::StopTime& call = stop_times[i];
    if (call.arrival > latest_arrival) break;
    Label& label = Touch(call.stop);
    if (call.arrival < label.arrival) {
      label.arrival = call.arrival;
      label.kind = Label::Kind::kRide;
      label.pred_stop = board_stop;
      label.trip = trip;
      label.board_time = board_time;
      label.walk_s = 0;
      PushQueue(call.arrival, call.stop);
    }
  }
}

void Router::SettleStop(uint32_t stop, gtfs::TimeOfDay now, gtfs::Day day,
                        gtfs::TimeOfDay depart,
                        gtfs::TimeOfDay latest_arrival, double& worst,
                        gtfs::TimeOfDay& relax_limit) {
  // Egress relaxation across every target wanting this stop.
  if (egress_epoch_[stop] == epoch_) {
    bool improved = false;
    for (int32_t e = egress_head_[stop]; e >= 0; e = egress_pool_[e].next) {
      const EgressEntry& eg = egress_pool_[e];
      double total = static_cast<double>(now - depart) + eg.walk_s;
      if (total < tgt_best_total_[eg.target]) {
        tgt_best_total_[eg.target] = total;
        tgt_best_stop_[eg.target] = stop;
        tgt_best_walk_[eg.target] = eg.walk_s;
        improved = true;
      }
    }
    if (improved) {
      worst =
          *std::max_element(tgt_best_total_.begin(), tgt_best_total_.end());
      relax_limit = RelaxLimit(worst, depart, latest_arrival);
    }
  }

  // Boarding scan: first departure per distinct line — (route, next stop),
  // see the ctor — at or after `now`. Claiming per line rather than per
  // route matters for correctness: a route's two directions usually share a
  // RouteId, and only same-direction trips are FIFO-comparable.
  seen_lines_scratch_.clear();
  const auto& deps = feed_->departures(stop);
  size_t cell = static_cast<size_t>(now) >> kDepCellShift;
  size_t i = cell < dep_cells_ ? dep_index_[stop * dep_cells_ + cell]
                               : deps.size();
  while (i < deps.size() && deps[i].time < now) ++i;
  gtfs::TimeOfDay scan_limit =
      now + static_cast<gtfs::TimeOfDay>(options_.max_boarding_wait_s);
  const size_t line_count =
      options_.boarding_route_break ? stop_line_count_[stop] : SIZE_MAX;
  for (; i < deps.size() && deps[i].time <= scan_limit; ++i) {
    if (seen_lines_scratch_.size() >= line_count) break;
    const gtfs::Departure& dep = deps[i];
    const gtfs::Trip& trip = feed_->trip(dep.trip);
    if (!gtfs::RunsOn(trip.days, day)) continue;
    if (dep.stop_time_index + 1 >= trip.first_stop_time + trip.num_stop_times)
      continue;  // final call
    uint64_t line = LineKey(trip.route, dep.stop_time_index);
    if (std::find(seen_lines_scratch_.begin(), seen_lines_scratch_.end(),
                  line) != seen_lines_scratch_.end()) {
      continue;  // a FIFO-earlier same-direction trip was already boarded
    }
    seen_lines_scratch_.push_back(line);
    RideTrip(dep.trip, dep.stop_time_index, stop, dep.time, relax_limit);
  }

  // Foot transfers.
  for (const WalkHop& hop : walk_table_.Transfers(stop)) {
    gtfs::TimeOfDay at =
        now + static_cast<gtfs::TimeOfDay>(std::lround(hop.walk_s));
    if (at > relax_limit) continue;
    Label& next = Touch(hop.stop);
    if (at < next.arrival) {
      next.arrival = at;
      next.kind = Label::Kind::kTransfer;
      next.pred_stop = stop;
      next.trip = gtfs::kInvalidId;
      next.walk_s = static_cast<float>(hop.walk_s);
      PushQueue(at, hop.stop);
    }
  }
}

Journey Router::Route(const geo::Point& origin, const geo::Point& dest,
                      gtfs::Day day, gtfs::TimeOfDay depart) {
  Journey out;
  RouteMany(origin, &dest, 1, day, depart, &out);
  return out;
}

std::vector<Journey> Router::RouteMany(const geo::Point& origin,
                                       const std::vector<geo::Point>& targets,
                                       gtfs::Day day, gtfs::TimeOfDay depart) {
  std::vector<Journey> out(targets.size());
  RouteMany(origin, targets.data(), targets.size(), day, depart, out.data());
  return out;
}

void Router::RouteMany(const geo::Point& origin, const geo::Point* targets,
                       size_t num_targets, gtfs::Day day,
                       gtfs::TimeOfDay depart, Journey* out,
                       const std::vector<WalkHop>* origin_access) {
  if (num_targets == 0) return;
  if (csa_ != nullptr) {
    csa_->RouteMany(origin, targets, num_targets, day, depart, out,
                    origin_access);
    return;
  }
  ++epoch_;
  query_depart_ = depart;
  queue_pending_ = 0;
  max_bucket_ = 0;
  queue_storage_.clear();
  egress_pool_.clear();

  gtfs::TimeOfDay latest_arrival =
      depart + static_cast<gtfs::TimeOfDay>(options_.horizon_s);

  // Per-target walk-only baselines. `worst` is the slackest still-improvable
  // target total; it bounds both the settle loop and (via RelaxLimit) every
  // label write.
  tgt_direct_walk_.resize(num_targets);
  tgt_best_total_.resize(num_targets);
  tgt_best_walk_.resize(num_targets);
  tgt_best_stop_.resize(num_targets);
  double worst = 0.0;
  for (size_t t = 0; t < num_targets; ++t) {
    double direct_walk_s = walk_table_.WalkSecondsBetween(origin, targets[t]);
    tgt_direct_walk_[t] = direct_walk_s;
    tgt_best_total_[t] = direct_walk_s <= options_.horizon_s
                             ? direct_walk_s
                             : std::numeric_limits<double>::infinity();
    tgt_best_walk_[t] = 0.0;
    tgt_best_stop_[t] = gtfs::kInvalidId;
    worst = std::max(worst, tgt_best_total_[t]);
  }
  gtfs::TimeOfDay relax_limit = RelaxLimit(worst, depart, latest_arrival);

  // Merge every target's egress candidates into one epoch-stamped map:
  // per-stop singly-linked lists threaded through the pooled entries.
  for (size_t t = 0; t < num_targets; ++t) {
    walk_table_.AccessStops(targets[t], &egress_scratch_, &neighbor_scratch_);
    for (const WalkHop& hop : egress_scratch_) {
      if (egress_epoch_[hop.stop] != epoch_) {
        egress_epoch_[hop.stop] = epoch_;
        egress_head_[hop.stop] = -1;
      }
      egress_pool_.push_back(EgressEntry{hop.walk_s, static_cast<uint32_t>(t),
                                         egress_head_[hop.stop]});
      egress_head_[hop.stop] = static_cast<int32_t>(egress_pool_.size()) - 1;
    }
  }

  // Seed access stops (shared by every target).
  if (origin_access == nullptr) {
    walk_table_.AccessStops(origin, &access_scratch_, &neighbor_scratch_);
    origin_access = &access_scratch_;
  }
  for (const WalkHop& hop : *origin_access) {
    gtfs::TimeOfDay at =
        depart + static_cast<gtfs::TimeOfDay>(std::lround(hop.walk_s));
    if (at > relax_limit) continue;
    Label& label = Touch(hop.stop);
    if (at < label.arrival) {
      label.arrival = at;
      label.kind = Label::Kind::kAccess;
      label.pred_stop = gtfs::kInvalidId;
      label.walk_s = static_cast<float>(hop.walk_s);
      PushQueue(at, hop.stop);
    }
  }

  // Settle loop. Once the earliest unsettled time alone reaches every
  // target's best known total, nothing can improve (egress walk is
  // non-negative), so the search breaks.
  if (options_.bucket_queue) {
    // Bucket cursor walk. Within one bucket new entries may be appended
    // mid-iteration (zero-second relaxations), so the inner loop re-reads
    // size(). Pushes are never behind the cursor: every relaxation from
    // `now` arrives at or after `now`.
    bool done = false;
    for (size_t b = 0; !done && queue_pending_ > 0 && b <= max_bucket_;
         ++b) {
      if (static_cast<double>(b) >= worst) break;
      if (bucket_epoch_[b] != epoch_) continue;
      gtfs::TimeOfDay now = depart + static_cast<gtfs::TimeOfDay>(b);
      std::vector<uint32_t>& bucket = buckets_[b];
      for (size_t k = 0; k < bucket.size(); ++k) {
        uint32_t stop = bucket[k];
        --queue_pending_;
        if (now > Touch(stop).arrival) continue;  // stale
        if (static_cast<double>(now - depart) >= worst) {
          done = true;
          break;
        }
        SettleStop(stop, now, day, depart, latest_arrival, worst,
                   relax_limit);
      }
    }
  } else {
    // Binary-heap discipline (the original engine). Equal arrival times pop
    // in heap order rather than insertion order, so tie-broken path
    // decompositions may differ from the bucket queue; arrival times and
    // journey times are identical either way.
    while (!queue_storage_.empty()) {
      std::pop_heap(queue_storage_.begin(), queue_storage_.end(),
                    std::greater<>());
      QueueEntry entry = queue_storage_.back();
      queue_storage_.pop_back();
      if (entry.time > Touch(entry.stop).arrival) continue;  // stale
      if (static_cast<double>(entry.time - depart) >= worst) break;
      SettleStop(entry.stop, entry.time, day, depart, latest_arrival, worst,
                 relax_limit);
    }
  }

  // Read each target's answer out of the shared search. Labels along any
  // reconstructed path arrive strictly before the settle loop's stopping
  // bound, so they are final here.
  for (size_t t = 0; t < num_targets; ++t) {
    Journey& j = out[t];
    if (tgt_best_total_[t] == std::numeric_limits<double>::infinity()) {
      j = Journey{};
      j.depart = depart;  // infeasible
      continue;
    }
    if (tgt_best_stop_[t] == gtfs::kInvalidId) {
      // Pure walk wins.
      j = Journey{};
      j.feasible = true;
      j.depart = depart;
      j.arrive = depart + static_cast<gtfs::TimeOfDay>(
                              std::lround(tgt_direct_walk_[t]));
      j.access_walk_s = tgt_direct_walk_[t];
      JourneyLeg leg;
      leg.type = JourneyLeg::Type::kWalk;
      leg.start = depart;
      leg.end = j.arrive;
      j.legs.push_back(leg);
      continue;
    }
    j = Reconstruct(origin, targets[t], depart, tgt_best_stop_[t],
                    tgt_best_walk_[t]);
  }
}

Journey Router::Reconstruct(const geo::Point& /*origin*/,
                            const geo::Point& /*dest*/, gtfs::TimeOfDay depart,
                            uint32_t egress_stop, double egress_walk_s) const {
  Journey j;
  j.feasible = true;
  j.depart = depart;

  // Walk back through labels collecting legs in reverse.
  std::vector<JourneyLeg> reversed;
  uint32_t stop = egress_stop;
  // The label array is valid for the current epoch; Reconstruct is called
  // immediately after the search.
  int guard = 0;
  while (stop != gtfs::kInvalidId && guard++ < 1024) {
    const Label& label = labels_[stop];
    switch (label.kind) {
      case Label::Kind::kAccess: {
        JourneyLeg walk;
        walk.type = JourneyLeg::Type::kWalk;
        walk.end = label.arrival;
        walk.start = label.arrival -
                     static_cast<gtfs::TimeOfDay>(std::lround(label.walk_s));
        walk.to_stop = stop;
        reversed.push_back(walk);
        j.access_walk_s += label.walk_s;
        stop = gtfs::kInvalidId;
        break;
      }
      case Label::Kind::kRide: {
        JourneyLeg ride;
        ride.type = JourneyLeg::Type::kRide;
        ride.route = feed_->trip(label.trip).route;
        ride.from_stop = label.pred_stop;
        ride.to_stop = stop;
        ride.start = label.board_time;
        ride.end = label.arrival;
        reversed.push_back(ride);
        j.in_vehicle_s += static_cast<double>(ride.end - ride.start);
        ++j.num_boardings;
        j.total_fare += feed_->route(ride.route).flat_fare;

        // Wait at the boarding stop between arrival there and departure.
        const Label& board_label = labels_[label.pred_stop];
        gtfs::TimeOfDay waited = label.board_time - board_label.arrival;
        if (waited > 0) {
          JourneyLeg wait;
          wait.type = JourneyLeg::Type::kWait;
          wait.start = board_label.arrival;
          wait.end = label.board_time;
          wait.from_stop = wait.to_stop = label.pred_stop;
          reversed.push_back(wait);
          j.wait_s += static_cast<double>(waited);
        }
        stop = label.pred_stop;
        break;
      }
      case Label::Kind::kTransfer: {
        JourneyLeg walk;
        walk.type = JourneyLeg::Type::kWalk;
        walk.end = label.arrival;
        walk.start = label.arrival -
                     static_cast<gtfs::TimeOfDay>(std::lround(label.walk_s));
        walk.from_stop = label.pred_stop;
        walk.to_stop = stop;
        reversed.push_back(walk);
        j.transfer_walk_s += label.walk_s;
        stop = label.pred_stop;
        break;
      }
      case Label::Kind::kNone:
        assert(false && "reconstruction reached an unlabeled stop");
        stop = gtfs::kInvalidId;
        break;
    }
  }

  std::reverse(reversed.begin(), reversed.end());
  j.legs = std::move(reversed);

  // Egress leg.
  gtfs::TimeOfDay at_stop = labels_[egress_stop].arrival;
  JourneyLeg walk;
  walk.type = JourneyLeg::Type::kWalk;
  walk.start = at_stop;
  walk.end =
      at_stop + static_cast<gtfs::TimeOfDay>(std::lround(egress_walk_s));
  walk.from_stop = egress_stop;
  j.legs.push_back(walk);
  j.egress_walk_s = egress_walk_s;
  j.arrive = walk.end;
  return j;
}

}  // namespace staq::router
