// Preprocessed connection view of a gtfs::Feed for the Connection Scan
// engine (router/csa.h).
//
// A connection is one elementary ride: trip t leaves stop a at τ_dep and
// reaches the next stop b of its sequence at τ_arr. Flattening the
// timetable into one array of connections sorted by departure time is the
// whole preprocessing step of CSA (Dibbelt et al.; the GTFS2STN
// spatiotemporal-network construction is the equivalent view): a query then
// scans a contiguous, prefetch-friendly window of this array instead of
// driving a priority queue over per-stop departure indexes.
//
// The array is immutable and derived purely from the feed, so it is built
// once per timetable and shared: every Router/CsaEngine on every thread
// references the same ConnectionArray through a shared_ptr, and a scenario
// epoch "rebuild" under the serve mutation set (POI edits, interval
// switches — none of which touch the timetable) is a share, verified by
// EnsureFor(). Per-day filtered views (service-day masks resolved away) are
// materialised lazily and memoised, one per weekday, under a call_once so
// concurrent first queries race safely.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "gtfs/feed.h"

namespace staq::router {

/// Flat, time-sorted connection array over one feed.
class ConnectionArray {
 public:
  /// Builds the base array from `feed` (non-null; must outlive the array).
  /// Connections are sorted by (departure time, trip, stop sequence), the
  /// deterministic order every scan — and therefore every tie-break —
  /// derives from.
  explicit ConnectionArray(const gtfs::Feed* feed);

  ConnectionArray(const ConnectionArray&) = delete;
  ConnectionArray& operator=(const ConnectionArray&) = delete;

  const gtfs::Feed* feed() const { return feed_; }
  size_t num_connections() const { return dep_time_.size(); }
  /// Wall-clock seconds the base-array build took (bench reporting).
  double build_seconds() const { return build_seconds_; }

  /// Connections running on one service day, in base order, stored
  /// structure-of-arrays so the scan touches only the columns it reads.
  struct DayView {
    std::vector<gtfs::TimeOfDay> dep_time;
    std::vector<gtfs::TimeOfDay> arr_time;
    std::vector<uint32_t> dep_stop;
    std::vector<uint32_t> arr_stop;
    std::vector<gtfs::TripId> trip;

    size_t size() const { return dep_time.size(); }
    /// Index of the first connection departing at or after `t`.
    size_t LowerBound(gtfs::TimeOfDay t) const;
  };

  /// The day's filtered view, built on first use and memoised. Thread-safe;
  /// the returned reference lives as long as the array.
  const DayView& ForDay(gtfs::Day day) const;

  /// Epoch-rebuild hook: returns `existing` when it was built from `feed`
  /// (the timetable is unchanged, so the rebuild is a share), otherwise
  /// builds a fresh array. This is what keeps one array alive across every
  /// POI-edit and interval-switch epoch of a serve scenario store.
  static std::shared_ptr<const ConnectionArray> EnsureFor(
      std::shared_ptr<const ConnectionArray> existing, const gtfs::Feed* feed);

 private:
  const gtfs::Feed* feed_;
  double build_seconds_ = 0.0;

  // Base array, sorted by (dep_time, trip, seq); days_ carries the owning
  // trip's service mask for the per-day filters.
  std::vector<gtfs::TimeOfDay> dep_time_;
  std::vector<gtfs::TimeOfDay> arr_time_;
  std::vector<uint32_t> dep_stop_;
  std::vector<uint32_t> arr_stop_;
  std::vector<gtfs::TripId> trip_;
  std::vector<gtfs::DayMask> days_;

  // Lazily materialised per-day views. once_ lives behind a unique_ptr so
  // the slots stay valid references; the array itself is non-movable.
  mutable std::array<std::unique_ptr<std::once_flag>, 7> once_;
  mutable std::array<DayView, 7> day_views_;
};

}  // namespace staq::router
