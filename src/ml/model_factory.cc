#include "ml/model_factory.h"

#include "ml/coreg.h"
#include "ml/gnn.h"
#include "ml/mean_teacher.h"
#include "ml/mlp.h"
#include "ml/ols.h"

namespace staq::ml {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kOls:
      return "OLS";
    case ModelKind::kMlp:
      return "MLP";
    case ModelKind::kCoreg:
      return "COREG";
    case ModelKind::kMeanTeacher:
      return "MT";
    case ModelKind::kGnn:
      return "GNN";
  }
  return "unknown";
}

std::vector<ModelKind> AllModelKinds() {
  return {ModelKind::kOls, ModelKind::kMlp, ModelKind::kCoreg,
          ModelKind::kMeanTeacher, ModelKind::kGnn};
}

std::unique_ptr<SsrModel> CreateModel(ModelKind kind, uint64_t seed,
                                      int threads) {
  switch (kind) {
    case ModelKind::kOls:
      return std::make_unique<OlsRegressor>();
    case ModelKind::kMlp: {
      MlpConfig config;
      config.seed = seed;
      config.threads = threads;
      return std::make_unique<MlpRegressor>(config);
    }
    case ModelKind::kCoreg: {
      CoregConfig config;
      config.seed = seed;
      config.threads = threads;
      return std::make_unique<Coreg>(config);
    }
    case ModelKind::kMeanTeacher: {
      MeanTeacherConfig config;
      config.seed = seed;
      return std::make_unique<MeanTeacher>(config);
    }
    case ModelKind::kGnn: {
      GnnConfig config;
      config.seed = seed;
      return std::make_unique<GnnRegressor>(config);
    }
  }
  return nullptr;
}

}  // namespace staq::ml
