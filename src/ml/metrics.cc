#include "ml/metrics.h"

#include <cassert>
#include <cmath>

namespace staq::ml {

double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& predicted) {
  assert(truth.size() == predicted.size() && !truth.empty());
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - predicted[i]);
  }
  return acc / static_cast<double>(truth.size());
}

double RootMeanSquaredError(const std::vector<double>& truth,
                            const std::vector<double>& predicted) {
  assert(truth.size() == predicted.size() && !truth.empty());
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    double d = truth[i] - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  assert(a.size() == b.size() && !a.empty());
  double n = static_cast<double>(a.size());
  double mean_a = 0.0, mean_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = a[i] - mean_a;
    double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a < 1e-24 || var_b < 1e-24) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double ClassificationAccuracy(const std::vector<int>& truth,
                              const std::vector<int>& predicted) {
  assert(truth.size() == predicted.size() && !truth.empty());
  size_t hits = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace staq::ml
