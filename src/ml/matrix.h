// Dense row-major matrix with the small set of operations the SSR models
// need: products, transposed products, and SPD solves (Cholesky with a
// partial-pivot Gaussian fallback) for ridge-regularised normal equations.
//
// Products run on the blocked kernels in ml/kernels.h; per-element
// accumulation order is fixed (ascending k), so results are bit-identical
// to the straightforward loops the kernels replaced. Shape mismatches are
// hard errors (STAQ_CHECK) in every build type — these used to be
// release-mode-UB asserts.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace staq::ml {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// Creates a rows x cols matrix, zero-initialised (or filled with `fill`).
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(size_t r, size_t c) {
    STAQ_CHECK(r < rows_ && c < cols_, "Matrix element index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    STAQ_CHECK(r < rows_ && c < cols_, "Matrix element index out of range");
    return data_[r * cols_ + c];
  }

  /// Raw pointer to row `r` (contiguous, cols() doubles).
  double* row(size_t r) {
    STAQ_CHECK(r < rows_, "Matrix row index out of range");
    return data_.data() + r * cols_;
  }
  const double* row(size_t r) const {
    STAQ_CHECK(r < rows_, "Matrix row index out of range");
    return data_.data() + r * cols_;
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Reshapes to rows x cols and zero-fills, reusing existing storage when
  /// capacity allows (keeps per-epoch training loops allocation-free).
  void Reset(size_t rows, size_t cols);

  /// A new matrix containing the given rows (in order).
  Matrix SelectRows(const std::vector<uint32_t>& indices) const;

  Matrix Transposed() const;

  bool operator==(const Matrix&) const = default;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Requires a.cols() == b.rows().
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A * B into an existing matrix (resized/zeroed in place, storage
/// reused). `out` must not alias `a` or `b`.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);

/// y = A * x for a vector x of size a.cols().
std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x);

/// A^T * A (gram matrix), computed directly (k x k for an n x k input).
Matrix Gram(const Matrix& a);

/// A^T * y for a vector y of size a.rows().
std::vector<double> TransposeVec(const Matrix& a, const std::vector<double>& y);

/// Solves A x = b for symmetric positive-definite A via Cholesky; falls
/// back to partially pivoted Gaussian elimination when A is not SPD.
/// Fails if A is singular to working precision.
util::Result<std::vector<double>> SolveLinearSystem(Matrix a,
                                                    std::vector<double> b);

}  // namespace staq::ml
