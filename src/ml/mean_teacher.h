// Mean Teacher semi-supervised regression (Tarvainen & Valpola, NeurIPS'17).
//
// A student MLP is trained with a supervised MSE on labeled zones plus a
// consistency loss pulling its predictions on noise-perturbed unlabeled
// zones toward those of a teacher network, whose weights are an exponential
// moving average of the student's. The consistency weight ramps up over
// training (the sigmoid-shaped ramp from the original paper).
#pragma once

#include <memory>

#include "ml/mlp.h"
#include "ml/model.h"
#include "ml/scaler.h"

namespace staq::ml {

struct MeanTeacherConfig {
  std::vector<size_t> hidden = {64, 32};
  int epochs = 300;
  size_t batch_size = 32;
  double learning_rate = 1e-3;
  double weight_decay = 1e-4;
  double ema_decay = 0.99;
  double consistency_weight_max = 1.0;
  /// Fraction of training spent ramping the consistency weight up.
  double rampup_fraction = 0.4;
  /// Standard deviation of the input perturbation (features are
  /// standardised, so this is in units of feature sigma).
  double input_noise = 0.1;
  uint64_t seed = 13;
  /// Benchmark foil: the original one-sample-at-a-time forward/backward
  /// loops instead of batched GEMM passes. Identical results, much more
  /// slowly (RNG draw order and gradient accumulation order are preserved
  /// by the batched path).
  bool per_sample_updates = false;
};

class MeanTeacher : public SsrModel {
 public:
  explicit MeanTeacher(MeanTeacherConfig config = {}) : config_(config) {}

  const char* name() const override { return "MT"; }
  util::Status Fit(const Dataset& data) override;
  std::vector<double> Predict() const override;

 private:
  MeanTeacherConfig config_;
  StandardScaler scaler_;
  TargetScaler target_scaler_;
  std::unique_ptr<DenseNet> teacher_;
  Matrix x_all_scaled_;
};

}  // namespace staq::ml
