// Deterministic fan-out helper for the SSR models.
//
// Work over [0, n) is split into fixed-size chunks whose layout depends
// only on (n, chunk_size) — never on the thread count — so callers that
// reduce per-chunk results in chunk-index order get bit-identical sums for
// every `threads` value, including the inline threads <= 1 path. This is
// the determinism contract behind CoregConfig::threads / MlpConfig::threads.
#pragma once

#include <cstddef>
#include <functional>

namespace staq::ml {

/// Runs body(chunk_index, begin, end) for every chunk of [0, n). With
/// threads <= 1 (or a single chunk) the chunks run inline in index order;
/// otherwise min(threads, chunks) tasks on util::ThreadPool::Shared() each
/// take the chunks congruent to their slot. `body` must only write
/// chunk-private or per-slot state; chunks may run concurrently. Do not
/// call from inside another ForEachChunk body (the shared pool's workers
/// would wait on each other).
void ForEachChunk(int threads, size_t n, size_t chunk_size,
                  const std::function<void(size_t, size_t, size_t)>& body);

}  // namespace staq::ml
