#include "ml/gnn.h"

#include <algorithm>
#include <cmath>

#include "ml/kernels.h"
#include "util/rng.h"

namespace staq::ml {

Matrix BuildNormalizedAdjacency(const std::vector<geo::Point>& positions,
                                double sigma_factor, double threshold) {
  size_t n = positions.size();
  Matrix a(n, n);

  // Mean pairwise distance sets the kernel scale. Exact mean is O(n^2),
  // same as filling A, so no extra asymptotic cost.
  double mean_dist = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      mean_dist += geo::Distance(positions[i], positions[j]);
      ++pairs;
    }
  }
  mean_dist = pairs > 0 ? mean_dist / static_cast<double>(pairs) : 1.0;
  double sigma = std::max(sigma_factor * mean_dist, 1e-9);

  for (size_t i = 0; i < n; ++i) {
    a(i, i) = 1.0;  // self-loop (the +I term)
    for (size_t j = i + 1; j < n; ++j) {
      double d = geo::Distance(positions[i], positions[j]);
      double w = std::exp(-(d * d) / (2.0 * sigma * sigma));
      if (w < threshold) w = 0.0;
      a(i, j) = w;
      a(j, i) = w;
    }
  }

  // Symmetric normalisation D^{-1/2} A D^{-1/2}.
  std::vector<double> inv_sqrt_deg(n);
  for (size_t i = 0; i < n; ++i) {
    double deg = 0.0;
    for (size_t j = 0; j < n; ++j) deg += a(i, j);
    inv_sqrt_deg[i] = deg > 0 ? 1.0 / std::sqrt(deg) : 0.0;
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, j) *= inv_sqrt_deg[i] * inv_sqrt_deg[j];
    }
  }
  return a;
}

util::Status GnnRegressor::Fit(const Dataset& data) {
  STAQ_RETURN_NOT_OK(data.Validate());
  if (data.positions.size() != data.x.rows()) {
    return util::Status::InvalidArgument(
        "GNN requires zone positions for the adjacency matrix");
  }

  size_t n = data.x.rows();
  size_t d = data.x.cols();
  size_t h = config_.hidden;

  Matrix x_labeled = data.x.SelectRows(data.labeled);
  scaler_.Fit(x_labeled);
  Matrix xs = scaler_.Transform(data.x);

  std::vector<double> y_labeled(data.labeled.size());
  for (size_t i = 0; i < data.labeled.size(); ++i) {
    y_labeled[i] = data.y[data.labeled[i]];
  }
  target_scaler_.Fit(y_labeled);

  std::vector<double> y_scaled(n, 0.0);
  std::vector<uint8_t> is_labeled(n, 0);
  for (size_t i = 0; i < data.labeled.size(); ++i) {
    y_scaled[data.labeled[i]] =
        (y_labeled[i] - target_scaler_.mean()) / target_scaler_.stddev();
    is_labeled[data.labeled[i]] = 1;
  }
  double n_labeled = static_cast<double>(data.labeled.size());

  Matrix a_hat = BuildNormalizedAdjacency(data.positions, config_.sigma_factor,
                                          config_.threshold);
  Matrix z = MatMul(a_hat, xs);  // Â X, constant across epochs

  // Parameters: W1 (d x h), b1 (h), w2 (h), b2 (scalar).
  util::Rng rng(config_.seed);
  size_t num_params = d * h + h + h + 1;
  std::vector<double> params(num_params);
  {
    double s1 = std::sqrt(2.0 / static_cast<double>(d));
    for (size_t i = 0; i < d * h; ++i) params[i] = rng.Normal(0.0, s1);
    double s2 = std::sqrt(2.0 / static_cast<double>(h));
    for (size_t i = 0; i < h; ++i) params[d * h + h + i] = rng.Normal(0.0, s2);
  }
  auto w1 = [&](std::vector<double>& p) { return p.data(); };
  auto b1 = [&](std::vector<double>& p) { return p.data() + d * h; };
  auto w2 = [&](std::vector<double>& p) { return p.data() + d * h + h; };
  auto b2 = [&](std::vector<double>& p) { return p.data() + d * h + h + h; };

  AdamOptimizer opt(num_params, config_.learning_rate, config_.weight_decay);
  std::vector<double> grad(num_params);

  Matrix h1(n, h);        // ReLU(Z W1 + b1)
  Matrix p_mat(n, h);     // Â H1
  std::vector<double> out(n);
  std::vector<double> dout(n);
  Matrix dp(n, h);
  Matrix dh1(n, h);

  // Forward pass shared by the epoch loop and the final-predictions block.
  // Bias is preloaded FIRST and the Z W1 product accumulates on top of it
  // (ascending feature order inside the GEMM), matching the scalar loop this
  // replaces term for term; the scalar output sum is kept as-is because
  // rewriting it as b2 + dot(p, w2) would regroup the additions.
  auto forward = [&]() {
    const double* w1p = w1(params);
    const double* b1p = b1(params);
    const double* w2p = w2(params);
    double b2p = *b2(params);
    for (size_t i = 0; i < n; ++i) {
      double* hr = h1.row(i);
      for (size_t j = 0; j < h; ++j) hr[j] = b1p[j];
    }
    kernels::GemmAccumulate(n, d, h, z.data().data(), d, w1p, h,
                            h1.data().data(), h);
    for (size_t i = 0; i < n; ++i) {
      double* hr = h1.row(i);
      for (size_t j = 0; j < h; ++j) {
        if (hr[j] < 0.0) hr[j] = 0.0;
      }
    }
    MatMulInto(a_hat, h1, &p_mat);
    for (size_t i = 0; i < n; ++i) {
      const double* pr = p_mat.row(i);
      double acc = b2p;
      for (size_t j = 0; j < h; ++j) acc += pr[j] * w2p[j];
      out[i] = acc;
    }
  };

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    forward();
    const double* w2p = w2(params);

    // ---- backward ----
    std::fill(grad.begin(), grad.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      dout[i] = is_labeled[i] ? (out[i] - y_scaled[i]) / n_labeled : 0.0;
    }
    double* gw1 = w1(grad);
    double* gb1 = b1(grad);
    double* gw2 = w2(grad);
    double* gb2 = b2(grad);
    for (size_t i = 0; i < n; ++i) {
      if (dout[i] == 0.0) {
        std::fill(dp.row(i), dp.row(i) + h, 0.0);
        continue;
      }
      const double* pr = p_mat.row(i);
      double* dpr = dp.row(i);
      for (size_t j = 0; j < h; ++j) {
        gw2[j] += dout[i] * pr[j];
        dpr[j] = dout[i] * w2p[j];
      }
      *gb2 += dout[i];
    }
    // dH1 = Â^T dP = Â dP (Â is symmetric).
    MatMulInto(a_hat, dp, &dh1);
    // Gate and bias-gradient pass first (it mutates dh1 in place), then one
    // Z^T dH1 product for the weight gradient — per element that product
    // accumulates in ascending row order, the order of the loop it replaces.
    for (size_t i = 0; i < n; ++i) {
      double* dr = dh1.row(i);
      const double* hr = h1.row(i);
      for (size_t j = 0; j < h; ++j) {
        if (hr[j] <= 0.0) dr[j] = 0.0;  // ReLU gate
        gb1[j] += dr[j];
      }
    }
    kernels::GemmAtB(n, d, h, z.data().data(), d, dh1.data().data(), h, gw1,
                     h);
    opt.Step(&params, grad);
  }

  // Final forward with trained parameters for the cached predictions.
  forward();
  predictions_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    predictions_[i] = target_scaler_.InverseTransform(out[i]);
  }
  return util::Status::OK();
}

std::vector<double> GnnRegressor::Predict() const { return predictions_; }

}  // namespace staq::ml
