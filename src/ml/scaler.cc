#include "ml/scaler.h"

#include <cmath>

#include "util/check.h"

namespace staq::ml {

void StandardScaler::Fit(const Matrix& x) {
  size_t n = x.rows(), d = x.cols();
  means_.assign(d, 0.0);
  stds_.assign(d, 1.0);
  if (n == 0) return;
  for (size_t i = 0; i < n; ++i) {
    const double* r = x.row(i);
    for (size_t c = 0; c < d; ++c) means_[c] += r[c];
  }
  for (size_t c = 0; c < d; ++c) means_[c] /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* r = x.row(i);
    for (size_t c = 0; c < d; ++c) {
      double delta = r[c] - means_[c];
      var[c] += delta * delta;
    }
  }
  for (size_t c = 0; c < d; ++c) {
    double s = std::sqrt(var[c] / static_cast<double>(n));
    stds_[c] = s > 1e-12 ? s : 1.0;  // constant column -> identity scale
  }
}

Matrix StandardScaler::Transform(const Matrix& x) const {
  STAQ_CHECK(x.cols() == means_.size(),
             "StandardScaler::Transform: column count differs from Fit");
  Matrix out(x.rows(), x.cols());
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* src = x.row(i);
    double* dst = out.row(i);
    for (size_t c = 0; c < x.cols(); ++c) {
      dst[c] = (src[c] - means_[c]) / stds_[c];
    }
  }
  return out;
}

void TargetScaler::Fit(const std::vector<double>& y) {
  mean_ = 0.0;
  std_ = 1.0;
  if (y.empty()) return;
  for (double v : y) mean_ += v;
  mean_ /= static_cast<double>(y.size());
  double var = 0.0;
  for (double v : y) var += (v - mean_) * (v - mean_);
  double s = std::sqrt(var / static_cast<double>(y.size()));
  std_ = s > 1e-12 ? s : 1.0;
}

std::vector<double> TargetScaler::Transform(const std::vector<double>& y) const {
  std::vector<double> out(y.size());
  for (size_t i = 0; i < y.size(); ++i) out[i] = (y[i] - mean_) / std_;
  return out;
}

std::vector<double> TargetScaler::InverseTransform(
    const std::vector<double>& y) const {
  std::vector<double> out(y.size());
  for (size_t i = 0; i < y.size(); ++i) out[i] = y[i] * std_ + mean_;
  return out;
}

}  // namespace staq::ml
