// Vectorizable numeric kernels shared by the SSR models.
//
// Everything here operates on raw contiguous row-major buffers (callers
// validate shapes; `__restrict` documents no-aliasing so the compiler can
// vectorize the inner loops without runtime overlap checks).
//
// Determinism contract: every kernel accumulates each *output element* in
// one fixed order — ascending k for the GEMM family, ascending index for
// the reductions — regardless of blocking parameters. The cache blocking
// and register tiling only reorder work *across* output elements, never
// the additions *into* one element, so results are bit-identical to the
// straightforward loops they replace and independent of tile sizes. This
// is what lets the models above keep the repo's bit-identical culture
// while the kernels get faster.
#pragma once

#include <cstddef>

namespace staq::ml::kernels {

/// C (m x n, leading dimension ldc) += A (m x k, lda) * B (k x n, ldb).
/// Accumulates into C in ascending-k order per element — bit-identical to
/// the naive i-k-j triple loop. Buffers must not overlap.
void GemmAccumulate(size_t m, size_t k, size_t n, const double* a, size_t lda,
                    const double* b, size_t ldb, double* c, size_t ldc);

/// C = A * B: zeroes C, then GemmAccumulate.
void Gemm(size_t m, size_t k, size_t n, const double* a, size_t lda,
          const double* b, size_t ldb, double* c, size_t ldc);

/// C (m x n, ldc) += A^T * B for A (l x m, lda) and B (l x n, ldb): rank-1
/// updates in ascending-l order, so each C element accumulates ascending l
/// — the order the per-sample gradient loops in the NN models used.
void GemmAtB(size_t l, size_t m, size_t n, const double* a, size_t lda,
             const double* b, size_t ldb, double* c, size_t ldc);

/// y (m) = A (m x k, lda) * x. One accumulator per row, ascending-k.
void Gemv(size_t m, size_t k, const double* a, size_t lda, const double* x,
          double* y);

/// y[i] += alpha * x[i] for i in [0, n).
void Axpy(size_t n, double alpha, const double* x, double* y);

/// x[i] *= alpha for i in [0, n).
void Scale(size_t n, double alpha, double* x);

/// Sum of a[i] * b[i], single accumulator ascending i.
double Dot(size_t n, const double* a, const double* b);

/// Sum of x[i], single accumulator ascending i.
double ReduceSum(size_t n, const double* x);

/// Sum of (a[i] - b[i])^2, single accumulator ascending i.
double SquaredDistance(size_t n, const double* a, const double* b);

/// Sum of |a[i] - b[i]|, single accumulator ascending i.
double ManhattanDistance(size_t n, const double* a, const double* b);

/// Sum of |a[i] - b[i]|^p for integer p >= 2 via repeated multiplication
/// (no per-element std::pow). For even p the |.| is dropped.
double PowDistanceInt(size_t n, const double* a, const double* b, int p);

}  // namespace staq::ml::kernels
