// Ordinary least squares baseline with a small ridge term for numerical
// stability at tiny labeling budgets (where the design matrix is often
// rank-deficient — the paper observes OLS becoming erratic there).
#pragma once

#include "ml/model.h"
#include "ml/scaler.h"

namespace staq::ml {

struct OlsConfig {
  /// Ridge penalty on the (standardised) coefficients; 0 = pure OLS. The
  /// small default keeps the normal equations solvable when the labeled
  /// design is rank deficient (tiny β) without meaningfully biasing
  /// well-posed fits.
  double ridge = 1e-3;
};

/// Linear regression on the labeled rows; unlabeled rows are ignored.
class OlsRegressor : public SsrModel {
 public:
  explicit OlsRegressor(OlsConfig config = {}) : config_(config) {}

  const char* name() const override { return "OLS"; }
  util::Status Fit(const Dataset& data) override;
  std::vector<double> Predict() const override;

  /// Learned coefficients in standardised feature space (last entry is the
  /// intercept). Valid after Fit().
  const std::vector<double>& coefficients() const { return coef_; }

 private:
  OlsConfig config_;
  StandardScaler scaler_;
  std::vector<double> coef_;
  Matrix x_all_scaled_;
};

}  // namespace staq::ml
