// Performance measures used by the evaluation (paper §V-A): MAE, RMSE,
// Pearson correlation, and classification accuracy.
#pragma once

#include <cstdint>
#include <vector>

namespace staq::ml {

/// Mean absolute error. Requires equal, non-zero sizes.
double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& predicted);

/// Root mean squared error.
double RootMeanSquaredError(const std::vector<double>& truth,
                            const std::vector<double>& predicted);

/// Pearson correlation coefficient in [-1, 1]. Returns 0 when either side
/// has zero variance.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Fraction of positions where the class labels match.
double ClassificationAccuracy(const std::vector<int>& truth,
                              const std::vector<int>& predicted);

}  // namespace staq::ml
