#include "ml/model.h"

#include <algorithm>

namespace staq::ml {

util::Status Dataset::Validate() const {
  if (x.rows() == 0 || x.cols() == 0) {
    return util::Status::InvalidArgument("empty feature matrix");
  }
  if (y.size() != x.rows()) {
    return util::Status::InvalidArgument("target size != row count");
  }
  if (labeled.size() < 2) {
    return util::Status::InvalidArgument("need at least 2 labeled instances");
  }
  for (uint32_t idx : labeled) {
    if (idx >= x.rows()) {
      return util::Status::OutOfRange("labeled index out of range");
    }
  }
  if (!positions.empty() && positions.size() != x.rows()) {
    return util::Status::InvalidArgument("positions size != row count");
  }
  return util::Status::OK();
}

std::vector<uint32_t> Dataset::UnlabeledIndices() const {
  std::vector<uint8_t> mask(x.rows(), 0);
  for (uint32_t idx : labeled) mask[idx] = 1;
  std::vector<uint32_t> out;
  out.reserve(x.rows() - labeled.size());
  for (uint32_t i = 0; i < x.rows(); ++i) {
    if (!mask[i]) out.push_back(i);
  }
  return out;
}

}  // namespace staq::ml
