#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "ml/kernels.h"
#include "util/check.h"

namespace staq::ml {

void KnnCore::Add(const double* features, size_t dim, double target) {
  if (targets_.empty()) {
    dim_ = dim;
  } else {
    STAQ_CHECK(dim == dim_, "KnnCore::Add: feature dimension differs");
  }
  flat_.insert(flat_.end(), features, features + dim);
  targets_.push_back(target);
}

void KnnCore::RemoveLast() {
  STAQ_CHECK(!targets_.empty(), "KnnCore::RemoveLast on empty store");
  flat_.resize(flat_.size() - dim_);
  targets_.pop_back();
}

double KnnCore::DistanceTo(uint32_t i, const double* row, size_t dim) const {
  STAQ_CHECK(dim == dim_, "KnnCore: query dimension differs from store");
  const double* stored = features(i);
  const double p = config_.minkowski_p;
  if (p == 2.0) {
    return std::sqrt(kernels::SquaredDistance(dim, stored, row));
  }
  if (p == 1.0) {
    // pow(|d|, 1) == |d| and pow(acc, 1/1) == acc exactly, so dropping the
    // root keeps this bit-identical to the general path.
    return kernels::ManhattanDistance(dim, stored, row);
  }
  const int ip = static_cast<int>(p);
  if (p == static_cast<double>(ip) && ip >= 2 && ip <= 16) {
    return std::pow(kernels::PowDistanceInt(dim, stored, row, ip), 1.0 / p);
  }
  // General fractional order: per-element pow, as before.
  double acc = 0.0;
  for (size_t c = 0; c < dim; ++c) {
    acc += std::pow(std::abs(stored[c] - row[c]), p);
  }
  return std::pow(acc, 1.0 / p);
}

size_t KnnCore::SelectTopK(const double* row, size_t dim, uint32_t exclude,
                           NeighborScratch* scratch) const {
  auto& heap = scratch->heap;
  heap.clear();
  const size_t n = size();
  const size_t avail = n - (exclude < n ? 1 : 0);
  const size_t k = std::min<size_t>(static_cast<size_t>(config_.k), avail);
  if (k == 0) return 0;
  heap.reserve(k);
  for (uint32_t i = 0; i < n; ++i) {
    if (i == exclude) continue;
    const std::pair<double, uint32_t> cand(DistanceTo(i, row, dim), i);
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end());
    } else if (cand < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end());
    }
  }
  std::sort_heap(heap.begin(), heap.end());
  return heap.size();
}

bool KnnCore::UpdateNeighbors(const double* row, uint32_t exclude,
                              CachedNeighbors* cache,
                              NeighborScratch* scratch) const {
  const size_t n = size();
  if (cache->version > n || cache->exclude != exclude) {
    // Store shrank or the exclusion changed: rebuild from scratch.
    const size_t len = SelectTopK(row, dim_, exclude, scratch);
    const bool changed =
        cache->sorted.size() != len ||
        !std::equal(cache->sorted.begin(), cache->sorted.end(),
                    scratch->heap.begin());
    cache->sorted.assign(scratch->heap.begin(), scratch->heap.begin() + len);
    cache->version = n;
    cache->exclude = exclude;
    return changed;
  }
  // Streaming top-k over the examples added since the cached version.
  // Equivalent to full re-selection: an entry evicted here is larger (in
  // (distance, index) order) than k kept entries and can never re-enter.
  const size_t k = static_cast<size_t>(config_.k);
  bool changed = false;
  for (uint32_t i = static_cast<uint32_t>(cache->version); i < n; ++i) {
    if (i == exclude) continue;
    const std::pair<double, uint32_t> cand(DistanceTo(i, row, dim_), i);
    if (cache->sorted.size() < k) {
      cache->sorted.insert(
          std::upper_bound(cache->sorted.begin(), cache->sorted.end(), cand),
          cand);
      changed = true;
    } else if (!cache->sorted.empty() && cand < cache->sorted.back()) {
      cache->sorted.pop_back();
      cache->sorted.insert(
          std::upper_bound(cache->sorted.begin(), cache->sorted.end(), cand),
          cand);
      changed = true;
    }
  }
  cache->version = n;
  return changed;
}

std::vector<uint32_t> KnnCore::Neighbors(const double* row, size_t dim,
                                         uint32_t exclude) const {
  NeighborScratch scratch;
  const size_t len = SelectTopK(row, dim, exclude, &scratch);
  std::vector<uint32_t> out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) out.push_back(scratch.heap[i].second);
  return out;
}

double KnnCore::PredictFromList(const std::pair<double, uint32_t>* list,
                                size_t len, double extra_target) const {
  const uint32_t extra = static_cast<uint32_t>(size());
  double weight_sum = 0.0, acc = 0.0;
  for (size_t i = 0; i < len; ++i) {
    const double w =
        config_.distance_weighted ? 1.0 / (list[i].first + 1e-9) : 1.0;
    const double t =
        list[i].second == extra ? extra_target : targets_[list[i].second];
    weight_sum += w;
    acc += w * t;
  }
  // len == 0 yields NaN, matching the empty-neighbourhood behaviour of the
  // allocating predict paths.
  return acc / weight_sum;
}

double KnnCore::PredictOne(const double* row, size_t dim,
                           NeighborScratch* scratch) const {
  STAQ_CHECK(!targets_.empty(), "KnnCore::PredictOne on empty store");
  const size_t len = SelectTopK(row, dim, UINT32_MAX, scratch);
  return PredictFromList(scratch->heap.data(), len);
}

double KnnCore::PredictOne(const double* row, size_t dim) const {
  NeighborScratch scratch;
  return PredictOne(row, dim, &scratch);
}

double KnnCore::PredictOneExcluding(const double* row, size_t dim,
                                    uint32_t exclude,
                                    NeighborScratch* scratch) const {
  STAQ_CHECK(targets_.size() >= 2,
             "KnnCore::PredictOneExcluding needs at least 2 examples");
  const size_t len = SelectTopK(row, dim, exclude, scratch);
  return PredictFromList(scratch->heap.data(), len);
}

double KnnCore::PredictOneExcluding(const double* row, size_t dim,
                                    uint32_t exclude) const {
  NeighborScratch scratch;
  return PredictOneExcluding(row, dim, exclude, &scratch);
}

util::Status KnnRegressor::Fit(const Dataset& data) {
  STAQ_RETURN_NOT_OK(data.Validate());
  Matrix x_labeled = data.x.SelectRows(data.labeled);
  scaler_.Fit(x_labeled);
  Matrix xs = scaler_.Transform(x_labeled);
  core_ = std::make_unique<KnnCore>(config_);
  for (size_t i = 0; i < xs.rows(); ++i) {
    core_->Add(xs.row(i), xs.cols(), data.y[data.labeled[i]]);
  }
  x_all_scaled_ = scaler_.Transform(data.x);
  return util::Status::OK();
}

std::vector<double> KnnRegressor::Predict() const {
  std::vector<double> out(x_all_scaled_.rows());
  NeighborScratch scratch;
  for (size_t i = 0; i < x_all_scaled_.rows(); ++i) {
    out[i] = core_->PredictOne(x_all_scaled_.row(i), x_all_scaled_.cols(),
                               &scratch);
  }
  return out;
}

}  // namespace staq::ml
