#include "ml/knn.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace staq::ml {

void KnnCore::Add(std::vector<double> features, double target) {
  rows_.push_back(std::move(features));
  targets_.push_back(target);
}

double KnnCore::DistanceTo(uint32_t i, const double* row, size_t dim) const {
  const std::vector<double>& stored = rows_[i];
  assert(stored.size() == dim);
  double p = config_.minkowski_p;
  if (p == 2.0) {
    double acc = 0.0;
    for (size_t c = 0; c < dim; ++c) {
      double d = stored[c] - row[c];
      acc += d * d;
    }
    return std::sqrt(acc);
  }
  double acc = 0.0;
  for (size_t c = 0; c < dim; ++c) {
    acc += std::pow(std::abs(stored[c] - row[c]), p);
  }
  return std::pow(acc, 1.0 / p);
}

void KnnCore::RemoveLast() {
  rows_.pop_back();
  targets_.pop_back();
}

std::vector<uint32_t> KnnCore::Neighbors(const double* row, size_t dim,
                                         uint32_t exclude) const {
  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(rows_.size());
  for (uint32_t i = 0; i < rows_.size(); ++i) {
    if (i == exclude) continue;
    scored.emplace_back(DistanceTo(i, row, dim), i);
  }
  size_t k = std::min<size_t>(static_cast<size_t>(config_.k), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end());
  std::vector<uint32_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(scored[i].second);
  return out;
}

double KnnCore::PredictOneExcluding(const double* row, size_t dim,
                                    uint32_t exclude) const {
  assert(targets_.size() >= 2);
  auto neighbors = Neighbors(row, dim, exclude);
  double weight_sum = 0.0, acc = 0.0;
  for (uint32_t i : neighbors) {
    double d = DistanceTo(i, row, dim);
    double w = config_.distance_weighted ? 1.0 / (d + 1e-9) : 1.0;
    weight_sum += w;
    acc += w * targets_[i];
  }
  return acc / weight_sum;
}

double KnnCore::PredictOne(const double* row, size_t dim) const {
  assert(!targets_.empty());
  auto neighbors = Neighbors(row, dim);
  if (!config_.distance_weighted) {
    double acc = 0.0;
    for (uint32_t i : neighbors) acc += targets_[i];
    return acc / static_cast<double>(neighbors.size());
  }
  double weight_sum = 0.0, acc = 0.0;
  for (uint32_t i : neighbors) {
    double d = DistanceTo(i, row, dim);
    double w = 1.0 / (d + 1e-9);
    weight_sum += w;
    acc += w * targets_[i];
  }
  return acc / weight_sum;
}

util::Status KnnRegressor::Fit(const Dataset& data) {
  STAQ_RETURN_NOT_OK(data.Validate());
  Matrix x_labeled = data.x.SelectRows(data.labeled);
  scaler_.Fit(x_labeled);
  Matrix xs = scaler_.Transform(x_labeled);
  core_ = std::make_unique<KnnCore>(config_);
  for (size_t i = 0; i < xs.rows(); ++i) {
    std::vector<double> row(xs.row(i), xs.row(i) + xs.cols());
    core_->Add(std::move(row), data.y[data.labeled[i]]);
  }
  x_all_scaled_ = scaler_.Transform(data.x);
  return util::Status::OK();
}

std::vector<double> KnnRegressor::Predict() const {
  std::vector<double> out(x_all_scaled_.rows());
  for (size_t i = 0; i < x_all_scaled_.rows(); ++i) {
    out[i] = core_->PredictOne(x_all_scaled_.row(i), x_all_scaled_.cols());
  }
  return out;
}

}  // namespace staq::ml
