// Factory for the SSR models evaluated in the paper, keyed by a stable
// enum so benches can sweep the model axis of Figs. 3 and 4.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace staq::ml {

/// The model families of §V-A.
enum class ModelKind {
  kOls = 0,
  kMlp,
  kCoreg,
  kMeanTeacher,
  kGnn,
};

inline constexpr int kNumModelKinds = 5;

/// Stable display name ("OLS", "MLP", "COREG", "MT", "GNN").
const char* ModelKindName(ModelKind kind);

/// All model kinds in paper order.
std::vector<ModelKind> AllModelKinds();

/// Instantiates a model with the library defaults and the given seed.
/// `threads` is the worker count for models with parallel training paths
/// (COREG screening, MLP gradient chunks); every model produces
/// bit-identical results for any value, so callers may tune it freely.
std::unique_ptr<SsrModel> CreateModel(ModelKind kind, uint64_t seed,
                                      int threads = 1);

}  // namespace staq::ml
