#include "ml/parallel.h"

#include <algorithm>
#include <future>
#include <vector>

#include "util/thread_pool.h"

namespace staq::ml {

void ForEachChunk(int threads, size_t n, size_t chunk_size,
                  const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  if (chunk_size == 0) chunk_size = 1;
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  const size_t workers =
      std::min(threads > 1 ? static_cast<size_t>(threads) : 1, num_chunks);
  if (workers <= 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t begin = c * chunk_size;
      body(c, begin, std::min(n, begin + chunk_size));
    }
    return;
  }
  auto& pool = util::ThreadPool::Shared();
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (size_t t = 0; t < workers; ++t) {
    futures.push_back(pool.Submit([t, workers, num_chunks, chunk_size, n,
                                   &body] {
      for (size_t c = t; c < num_chunks; c += workers) {
        const size_t begin = c * chunk_size;
        body(c, begin, std::min(n, begin + chunk_size));
      }
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace staq::ml
