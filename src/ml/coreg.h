// COREG: semi-supervised regression with co-training (Zhou & Li, IJCAI'05).
//
// Two kNN regressors with different Minkowski distance orders label each
// other's most confidently predicted unlabeled examples. Confidence of a
// candidate is the reduction in squared error over its labeled neighbourhood
// when the candidate (with its pseudo-label) is added to the training set.
#pragma once

#include <memory>

#include "ml/knn.h"
#include "ml/model.h"
#include "ml/scaler.h"
#include "util/rng.h"

namespace staq::ml {

struct CoregConfig {
  KnnConfig knn1{3, 2.0, true};  // Euclidean
  KnnConfig knn2{3, 5.0, true};  // higher-order Minkowski for diversity
  int max_iterations = 50;
  /// Size of the random unlabeled pool screened per iteration.
  size_t pool_size = 100;
  uint64_t seed = 11;
};

class Coreg : public SsrModel {
 public:
  explicit Coreg(CoregConfig config = {}) : config_(config) {}

  const char* name() const override { return "COREG"; }
  util::Status Fit(const Dataset& data) override;
  std::vector<double> Predict() const override;

  /// Number of pseudo-labels each regressor absorbed (diagnostics).
  int pseudo_labels_added() const { return pseudo_labels_added_; }

 private:
  CoregConfig config_;
  StandardScaler scaler_;
  std::unique_ptr<KnnCore> h1_, h2_;
  Matrix x_all_scaled_;
  int pseudo_labels_added_ = 0;
};

}  // namespace staq::ml
