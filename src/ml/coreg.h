// COREG: semi-supervised regression with co-training (Zhou & Li, IJCAI'05).
//
// Two kNN regressors with different Minkowski distance orders label each
// other's most confidently predicted unlabeled examples. Confidence of a
// candidate is the reduction in squared error over its labeled neighbourhood
// when the candidate (with its pseudo-label) is added to the training set.
//
// Pool screening runs on incremental caches (per-candidate top-k lists and
// per-stored-example leave-one-out neighbourhoods, both updated in O(k) per
// pseudo-label add) instead of rescanning the full store per candidate per
// iteration; the resulting model is bit-identical to the original
// rescanning implementation, which is kept behind `use_seed_screening` as a
// benchmark foil. Screening fans out across util::ThreadPool with a
// fixed-order argmax reduction, so `threads` never changes results.
#pragma once

#include <memory>

#include "ml/knn.h"
#include "ml/model.h"
#include "ml/scaler.h"
#include "util/rng.h"

namespace staq::ml {

struct CoregConfig {
  KnnConfig knn1{3, 2.0, true};  // Euclidean
  KnnConfig knn2{3, 5.0, true};  // higher-order Minkowski for diversity
  int max_iterations = 50;
  /// Size of the random unlabeled pool screened per iteration.
  size_t pool_size = 100;
  uint64_t seed = 11;
  /// Worker count for pool screening and batch prediction. Candidates are
  /// screened into per-slot buffers and reduced by a serial fixed-order
  /// argmax, so Fit and Predict are bit-identical for every value.
  int threads = 1;
  /// Benchmark foil: screen with the original full-rescan tentative
  /// add/remove implementation instead of the incremental caches. Produces
  /// an identical model, much more slowly.
  bool use_seed_screening = false;
};

class Coreg : public SsrModel {
 public:
  explicit Coreg(CoregConfig config = {}) : config_(config) {}

  const char* name() const override { return "COREG"; }
  util::Status Fit(const Dataset& data) override;
  std::vector<double> Predict() const override;

  /// Number of pseudo-labels each regressor absorbed (diagnostics).
  int pseudo_labels_added() const { return pseudo_labels_added_; }

 private:
  CoregConfig config_;
  StandardScaler scaler_;
  std::unique_ptr<KnnCore> h1_, h2_;
  Matrix x_all_scaled_;
  int pseudo_labels_added_ = 0;
};

}  // namespace staq::ml
