#include "ml/kernels.h"

#include <cmath>
#include <cstring>

namespace staq::ml::kernels {

namespace {

// Blocking parameters. kKc bounds the B panel touched per pass so it stays
// in L1/L2 across the m sweep; kMr is the register-tile height (independent
// A rows sharing one streamed B row). Neither affects results: per-element
// accumulation order stays ascending k (blocks ascend, k ascends within).
constexpr size_t kKc = 64;
constexpr size_t kMr = 4;

}  // namespace

void GemmAccumulate(size_t m, size_t k, size_t n, const double* a, size_t lda,
                    const double* b, size_t ldb, double* c, size_t ldc) {
  for (size_t k0 = 0; k0 < k; k0 += kKc) {
    const size_t k1 = k0 + kKc < k ? k0 + kKc : k;
    size_t i = 0;
    for (; i + kMr <= m; i += kMr) {
      const double* __restrict a0 = a + (i + 0) * lda;
      const double* __restrict a1 = a + (i + 1) * lda;
      const double* __restrict a2 = a + (i + 2) * lda;
      const double* __restrict a3 = a + (i + 3) * lda;
      double* __restrict c0 = c + (i + 0) * ldc;
      double* __restrict c1 = c + (i + 1) * ldc;
      double* __restrict c2 = c + (i + 2) * ldc;
      double* __restrict c3 = c + (i + 3) * ldc;
      for (size_t kk = k0; kk < k1; ++kk) {
        const double av0 = a0[kk];
        const double av1 = a1[kk];
        const double av2 = a2[kk];
        const double av3 = a3[kk];
        const double* __restrict br = b + kk * ldb;
        for (size_t j = 0; j < n; ++j) {
          const double bv = br[j];
          c0[j] += av0 * bv;
          c1[j] += av1 * bv;
          c2[j] += av2 * bv;
          c3[j] += av3 * bv;
        }
      }
    }
    for (; i < m; ++i) {
      const double* __restrict ar = a + i * lda;
      double* __restrict cr = c + i * ldc;
      for (size_t kk = k0; kk < k1; ++kk) {
        const double av = ar[kk];
        const double* __restrict br = b + kk * ldb;
        for (size_t j = 0; j < n; ++j) cr[j] += av * br[j];
      }
    }
  }
}

void Gemm(size_t m, size_t k, size_t n, const double* a, size_t lda,
          const double* b, size_t ldb, double* c, size_t ldc) {
  if (m == 0 || n == 0) return;
  if (ldc == n) {
    std::memset(c, 0, m * n * sizeof(double));
  } else {
    for (size_t i = 0; i < m; ++i) std::memset(c + i * ldc, 0, n * sizeof(double));
  }
  GemmAccumulate(m, k, n, a, lda, b, ldb, c, ldc);
}

void GemmAtB(size_t l, size_t m, size_t n, const double* a, size_t lda,
             const double* b, size_t ldb, double* c, size_t ldc) {
  for (size_t ll = 0; ll < l; ++ll) {
    const double* __restrict ar = a + ll * lda;
    const double* __restrict br = b + ll * ldb;
    for (size_t i = 0; i < m; ++i) {
      const double av = ar[i];
      double* __restrict cr = c + i * ldc;
      for (size_t j = 0; j < n; ++j) cr[j] += av * br[j];
    }
  }
}

void Gemv(size_t m, size_t k, const double* a, size_t lda, const double* x,
          double* y) {
  size_t i = 0;
  for (; i + kMr <= m; i += kMr) {
    const double* __restrict a0 = a + (i + 0) * lda;
    const double* __restrict a1 = a + (i + 1) * lda;
    const double* __restrict a2 = a + (i + 2) * lda;
    const double* __restrict a3 = a + (i + 3) * lda;
    double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
    for (size_t j = 0; j < k; ++j) {
      const double xj = x[j];
      acc0 += a0[j] * xj;
      acc1 += a1[j] * xj;
      acc2 += a2[j] * xj;
      acc3 += a3[j] * xj;
    }
    y[i + 0] = acc0;
    y[i + 1] = acc1;
    y[i + 2] = acc2;
    y[i + 3] = acc3;
  }
  for (; i < m; ++i) {
    const double* __restrict ar = a + i * lda;
    double acc = 0.0;
    for (size_t j = 0; j < k; ++j) acc += ar[j] * x[j];
    y[i] = acc;
  }
}

void Axpy(size_t n, double alpha, const double* x, double* y) {
  const double* __restrict xs = x;
  double* __restrict ys = y;
  for (size_t i = 0; i < n; ++i) ys[i] += alpha * xs[i];
}

void Scale(size_t n, double alpha, double* x) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

double Dot(size_t n, const double* a, const double* b) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double ReduceSum(size_t n, const double* x) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

double SquaredDistance(size_t n, const double* a, const double* b) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double ManhattanDistance(size_t n, const double* a, const double* b) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += std::abs(a[i] - b[i]);
  return acc;
}

double PowDistanceInt(size_t n, const double* a, const double* b, int p) {
  double acc = 0.0;
  if ((p & 1) == 0) {
    // Even power: |d|^p == d^p, skip the abs.
    for (size_t i = 0; i < n; ++i) {
      const double d = a[i] - b[i];
      double term = d * d;
      for (int e = 2; e < p; e += 2) term *= d * d;
      acc += term;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const double d = std::abs(a[i] - b[i]);
      double term = d;
      for (int e = 1; e < p; ++e) term *= d;
      acc += term;
    }
  }
  return acc;
}

}  // namespace staq::ml::kernels
