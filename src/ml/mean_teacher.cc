#include "ml/mean_teacher.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace staq::ml {

namespace {

/// Sigmoid ramp-up from the Mean Teacher paper: exp(-5 (1 - t)^2).
double RampUp(double progress) {
  if (progress >= 1.0) return 1.0;
  double phase = 1.0 - progress;
  return std::exp(-5.0 * phase * phase);
}

}  // namespace

util::Status MeanTeacher::Fit(const Dataset& data) {
  STAQ_RETURN_NOT_OK(data.Validate());

  Matrix x_labeled = data.x.SelectRows(data.labeled);
  scaler_.Fit(x_labeled);
  x_all_scaled_ = scaler_.Transform(data.x);
  Matrix xs = scaler_.Transform(x_labeled);
  size_t dim = xs.cols();

  std::vector<double> y_labeled(data.labeled.size());
  for (size_t i = 0; i < data.labeled.size(); ++i) {
    y_labeled[i] = data.y[data.labeled[i]];
  }
  target_scaler_.Fit(y_labeled);
  std::vector<double> ys = target_scaler_.Transform(y_labeled);

  std::vector<uint32_t> unlabeled = data.UnlabeledIndices();

  util::Rng rng(config_.seed);
  DenseNet student(dim, config_.hidden, &rng);
  teacher_ = std::make_unique<DenseNet>(student);
  AdamOptimizer opt(student.num_params(), config_.learning_rate,
                    config_.weight_decay);

  size_t n = xs.rows();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::vector<double> grad(student.num_params());

  int rampup_epochs =
      std::max(1, static_cast<int>(config_.epochs * config_.rampup_fraction));

  if (config_.per_sample_updates) {
    // Foil: the original scalar path.
    std::vector<std::vector<double>> acts;
    std::vector<double> noisy(dim), noisy_teacher(dim);
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      double consistency =
          config_.consistency_weight_max *
          RampUp(static_cast<double>(epoch) / rampup_epochs);
      rng.Shuffle(&order);
      for (size_t start = 0; start < n; start += config_.batch_size) {
        size_t end = std::min(n, start + config_.batch_size);
        size_t batch = end - start;
        std::fill(grad.begin(), grad.end(), 0.0);

        // Supervised term.
        for (size_t b = start; b < end; ++b) {
          size_t i = order[b];
          double pred = student.Forward(xs.row(i), &acts);
          double dloss = (pred - ys[i]) / static_cast<double>(batch);
          student.Backward(xs.row(i), acts, dloss, &grad);
        }

        // Consistency term on a same-sized sample of unlabeled zones.
        if (!unlabeled.empty() && consistency > 0.0) {
          for (size_t b = 0; b < batch; ++b) {
            uint32_t u = unlabeled[static_cast<size_t>(
                rng.UniformU64(unlabeled.size()))];
            const double* row = x_all_scaled_.row(u);
            for (size_t c = 0; c < dim; ++c) {
              noisy[c] = row[c] + rng.Normal(0.0, config_.input_noise);
              noisy_teacher[c] = row[c] + rng.Normal(0.0, config_.input_noise);
            }
            double target = teacher_->Forward(noisy_teacher.data());
            double pred = student.Forward(noisy.data(), &acts);
            double dloss =
                consistency * (pred - target) / static_cast<double>(batch);
            student.Backward(noisy.data(), acts, dloss, &grad);
          }
        }

        opt.Step(&student.params(), grad);

        // EMA teacher update.
        auto& tp = teacher_->params();
        const auto& sp = student.params();
        for (size_t i = 0; i < tp.size(); ++i) {
          tp[i] =
              config_.ema_decay * tp[i] + (1.0 - config_.ema_decay) * sp[i];
        }
      }
    }
    return util::Status::OK();
  }

  // Batched path. RNG draws happen in exactly the order the per-sample
  // loop made them (per consistency sample: the pool pick, then the
  // student/teacher noise interleaved per feature), and gradient terms
  // accumulate in the same sample order, so results match the foil.
  DenseNetScratch scratch, teacher_scratch;
  Matrix batch_x, noisy_x, noisy_teacher_x;
  std::vector<double> dloss;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    double consistency =
        config_.consistency_weight_max *
        RampUp(static_cast<double>(epoch) / rampup_epochs);
    rng.Shuffle(&order);
    for (size_t start = 0; start < n; start += config_.batch_size) {
      size_t end = std::min(n, start + config_.batch_size);
      size_t batch = end - start;
      std::fill(grad.begin(), grad.end(), 0.0);

      // Supervised term.
      batch_x.Reset(batch, dim);
      for (size_t b = 0; b < batch; ++b) {
        std::memcpy(batch_x.row(b), xs.row(order[start + b]),
                    dim * sizeof(double));
      }
      student.ForwardBatch(batch_x.data().data(), batch, &scratch);
      dloss.resize(batch);
      {
        const Matrix& preds = scratch.acts.back();
        for (size_t b = 0; b < batch; ++b) {
          dloss[b] = (preds(b, 0) - ys[order[start + b]]) /
                     static_cast<double>(batch);
        }
      }
      student.BackwardBatch(batch_x.data().data(), batch, dloss, &grad,
                            &scratch);

      // Consistency term on a same-sized sample of unlabeled zones.
      if (!unlabeled.empty() && consistency > 0.0) {
        noisy_x.Reset(batch, dim);
        noisy_teacher_x.Reset(batch, dim);
        for (size_t b = 0; b < batch; ++b) {
          uint32_t u = unlabeled[static_cast<size_t>(
              rng.UniformU64(unlabeled.size()))];
          const double* row = x_all_scaled_.row(u);
          double* sr = noisy_x.row(b);
          double* tr = noisy_teacher_x.row(b);
          for (size_t c = 0; c < dim; ++c) {
            sr[c] = row[c] + rng.Normal(0.0, config_.input_noise);
            tr[c] = row[c] + rng.Normal(0.0, config_.input_noise);
          }
        }
        teacher_->ForwardBatch(noisy_teacher_x.data().data(), batch,
                               &teacher_scratch);
        student.ForwardBatch(noisy_x.data().data(), batch, &scratch);
        const Matrix& teacher_preds = teacher_scratch.acts.back();
        const Matrix& student_preds = scratch.acts.back();
        for (size_t b = 0; b < batch; ++b) {
          dloss[b] = consistency * (student_preds(b, 0) - teacher_preds(b, 0)) /
                     static_cast<double>(batch);
        }
        student.BackwardBatch(noisy_x.data().data(), batch, dloss, &grad,
                              &scratch);
      }

      opt.Step(&student.params(), grad);

      // EMA teacher update.
      auto& tp = teacher_->params();
      const auto& sp = student.params();
      for (size_t i = 0; i < tp.size(); ++i) {
        tp[i] = config_.ema_decay * tp[i] + (1.0 - config_.ema_decay) * sp[i];
      }
    }
  }
  return util::Status::OK();
}

std::vector<double> MeanTeacher::Predict() const {
  const size_t n = x_all_scaled_.rows();
  std::vector<double> out(n);
  DenseNetScratch scratch;
  teacher_->ForwardBatch(x_all_scaled_.data().data(), n, &scratch);
  const Matrix& preds = scratch.acts.back();
  for (size_t i = 0; i < n; ++i) {
    out[i] = target_scaler_.InverseTransform(preds(i, 0));
  }
  return out;
}

}  // namespace staq::ml
