// Graph neural network (two-layer GCN) over the zone-adjacency graph.
//
// Per the paper (§V-A): the adjacency matrix is computed from Euclidean
// distances between zone centroids and normalised with the Gaussian
// thresholded approach; propagation uses the symmetric-normalised
// Â = D^{-1/2}(A + I)D^{-1/2} of Kipf & Welling. Training is full-batch
// Adam on the labeled MSE; prediction is transductive over all zones.
#pragma once

#include <memory>

#include "ml/mlp.h"  // AdamOptimizer
#include "ml/model.h"
#include "ml/scaler.h"

namespace staq::ml {

struct GnnConfig {
  size_t hidden = 32;
  int epochs = 400;
  double learning_rate = 5e-3;
  double weight_decay = 5e-4;
  /// Gaussian kernel width as a multiple of the mean pairwise distance.
  double sigma_factor = 0.25;
  /// Kernel weights below this threshold are cut to zero.
  double threshold = 0.05;
  uint64_t seed = 17;
};

class GnnRegressor : public SsrModel {
 public:
  explicit GnnRegressor(GnnConfig config = {}) : config_(config) {}

  const char* name() const override { return "GNN"; }
  util::Status Fit(const Dataset& data) override;
  std::vector<double> Predict() const override;

 private:
  GnnConfig config_;
  StandardScaler scaler_;
  TargetScaler target_scaler_;
  std::vector<double> predictions_;  // cached transductive output
};

/// Builds the Gaussian-thresholded, symmetric-normalised adjacency over the
/// given positions (exposed for tests and ablation benches).
Matrix BuildNormalizedAdjacency(const std::vector<geo::Point>& positions,
                                double sigma_factor, double threshold);

}  // namespace staq::ml
