#include "ml/coreg.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "ml/parallel.h"

namespace staq::ml {

namespace {

/// Pool slots handed to one screening task at a time. Layout is fixed, so
/// the thread count never changes which slot a candidate lands in.
constexpr size_t kScreenChunkSlots = 8;

/// Original screening criterion, kept as the benchmark foil: error
/// reduction over `candidate`'s labeled neighbourhood when (candidate,
/// pseudo_label) is tentatively added to `model`, recomputing every
/// neighbourhood from scratch around a real add/remove. Positive means the
/// addition helps (Zhou & Li's confidence criterion).
double ErrorReductionSeed(KnnCore* model, const double* candidate, size_t dim,
                          double pseudo_label) {
  auto neighborhood = model->Neighbors(candidate, dim);
  if (neighborhood.empty()) return 0.0;

  double before = 0.0;
  for (uint32_t i : neighborhood) {
    double pred = model->PredictOneExcluding(model->features(i), dim, i);
    double err = model->target(i) - pred;
    before += err * err;
  }

  model->Add(std::vector<double>(candidate, candidate + dim), pseudo_label);
  double after = 0.0;
  for (uint32_t i : neighborhood) {
    double pred = model->PredictOneExcluding(model->features(i), dim, i);
    double err = model->target(i) - pred;
    after += err * err;
  }
  model->RemoveLast();
  return before - after;
}

/// Incremental screening state for one component regressor. Holds, for
/// every stored example, its leave-one-out neighbour list and cached
/// squared LOO error, and for every pool candidate its top-k list; all of
/// them are brought up to date in O(k) per new stored example by
/// SyncStore. Screening itself then reads this state without mutating the
/// store: the "after" term of Zhou & Li's criterion only needs to know
/// whether the tentative candidate would enter each neighbour's LOO list,
/// which the cached symmetric distance d(candidate, i) == d(i, candidate)
/// answers in O(1) per neighbour.
///
/// Thread safety: SyncStore/EnsureCandidates/EraseCandidate are called
/// serially between screening passes. During a pass, Screen may run
/// concurrently for different candidates — it reads loo_/err_ and the
/// store, and writes only the candidate's own pre-created cache entry.
class ScreeningState {
 public:
  explicit ScreeningState(const KnnCore* core) : core_(core) {}

  /// Brings the per-stored-example LOO caches up to date with the store.
  void SyncStore(NeighborScratch* scratch) {
    const size_t n = core_->size();
    if (synced_ == n) return;
    loo_.resize(n);
    err_.resize(n);
    for (size_t i = 0; i < synced_; ++i) {
      if (core_->UpdateNeighbors(core_->features(static_cast<uint32_t>(i)),
                                 static_cast<uint32_t>(i), &loo_[i],
                                 scratch)) {
        err_[i] = LooError(i);
      }
    }
    for (size_t i = synced_; i < n; ++i) {
      core_->UpdateNeighbors(core_->features(static_cast<uint32_t>(i)),
                             static_cast<uint32_t>(i), &loo_[i], scratch);
      err_[i] = LooError(i);
    }
    synced_ = n;
  }

  /// Creates cache entries for every pool candidate so that concurrent
  /// Screen calls never mutate the map structure.
  void EnsureCandidates(const std::vector<uint32_t>& unlabeled,
                        size_t pool_end) {
    for (size_t p = 0; p < pool_end; ++p) {
      candidates_.try_emplace(unlabeled[p]);
    }
  }

  void EraseCandidate(uint32_t zone) { candidates_.erase(zone); }

  /// Error reduction for one candidate; also reports its pseudo-label.
  /// Bit-identical to ErrorReductionSeed (with the pseudo-label from
  /// PredictOne) by construction: every sum below accumulates the same
  /// terms in the same order the seed paths produced them.
  double Screen(uint32_t zone, const double* row, NeighborScratch* scratch,
                double* pseudo_out) {
    CachedNeighbors& cache = candidates_.find(zone)->second;
    core_->UpdateNeighbors(row, UINT32_MAX, &cache, scratch);
    const auto& nb = cache.sorted;
    *pseudo_out = 0.0;
    if (nb.empty()) return 0.0;

    const double pseudo = core_->PredictFromList(nb.data(), nb.size());
    const uint32_t extra = static_cast<uint32_t>(core_->size());
    const size_t k = static_cast<size_t>(core_->config().k);
    double before = 0.0, after = 0.0;
    for (const auto& [d_ci, i] : nb) {
      const double base_err = err_[i];
      before += base_err;
      const auto& loo = loo_[i].sorted;
      // d(i, candidate) == d(candidate, i) exactly (every distance path is
      // sign-symmetric in the per-element differences).
      const std::pair<double, uint32_t> cand(d_ci, extra);
      if (loo.size() < k || (!loo.empty() && cand < loo.back())) {
        // The candidate enters i's LOO top-k: evaluate the merged list.
        auto& merged = scratch->merged;
        merged.assign(loo.begin(), loo.end());
        merged.insert(
            std::upper_bound(merged.begin(), merged.end(), cand), cand);
        if (merged.size() > k) merged.pop_back();
        const double pred =
            core_->PredictFromList(merged.data(), merged.size(), pseudo);
        const double err = core_->target(i) - pred;
        after += err * err;
      } else {
        // Top-k unchanged: the LOO prediction — and so the error term —
        // is exactly the cached one.
        after += base_err;
      }
    }
    *pseudo_out = pseudo;
    return before - after;
  }

 private:
  double LooError(size_t i) const {
    const auto& s = loo_[i].sorted;
    const double pred = core_->PredictFromList(s.data(), s.size());
    const double err = core_->target(static_cast<uint32_t>(i)) - pred;
    return err * err;
  }

  const KnnCore* core_;
  size_t synced_ = 0;
  std::vector<CachedNeighbors> loo_;  // loo_[i]: neighbours of i, excluding i
  std::vector<double> err_;           // err_[i]: squared LOO error of i
  std::unordered_map<uint32_t, CachedNeighbors> candidates_;
};

}  // namespace

util::Status Coreg::Fit(const Dataset& data) {
  STAQ_RETURN_NOT_OK(data.Validate());

  Matrix x_labeled = data.x.SelectRows(data.labeled);
  scaler_.Fit(x_labeled);
  x_all_scaled_ = scaler_.Transform(data.x);
  size_t dim = x_all_scaled_.cols();

  h1_ = std::make_unique<KnnCore>(config_.knn1);
  h2_ = std::make_unique<KnnCore>(config_.knn2);
  for (uint32_t idx : data.labeled) {
    h1_->Add(x_all_scaled_.row(idx), dim, data.y[idx]);
    h2_->Add(x_all_scaled_.row(idx), dim, data.y[idx]);
  }

  // Unlabeled pool; replenished from the remaining unlabeled set.
  std::vector<uint32_t> unlabeled = data.UnlabeledIndices();
  util::Rng rng(config_.seed);
  rng.Shuffle(&unlabeled);
  size_t pool_end = std::min(config_.pool_size, unlabeled.size());
  pseudo_labels_added_ = 0;

  ScreeningState s1(h1_.get()), s2(h2_.get());
  NeighborScratch scratch;
  std::vector<double> deltas, pseudos;

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    bool any_added = false;
    // Each regressor nominates its best candidate for the OTHER one.
    KnnCore* models[2] = {h1_.get(), h2_.get()};
    ScreeningState* states[2] = {&s1, &s2};
    for (int j = 0; j < 2; ++j) {
      KnnCore* self = models[j];
      KnnCore* other = models[1 - j];

      double best_delta = 0.0;
      size_t best_pos = SIZE_MAX;
      double best_label = 0.0;
      if (config_.use_seed_screening) {
        for (size_t p = 0; p < pool_end; ++p) {
          const double* row = x_all_scaled_.row(unlabeled[p]);
          double pseudo = self->PredictOne(row, dim);
          double delta = ErrorReductionSeed(self, row, dim, pseudo);
          if (delta > best_delta) {
            best_delta = delta;
            best_pos = p;
            best_label = pseudo;
          }
        }
      } else {
        ScreeningState* state = states[j];
        state->SyncStore(&scratch);
        state->EnsureCandidates(unlabeled, pool_end);
        deltas.assign(pool_end, 0.0);
        pseudos.assign(pool_end, 0.0);
        // Read-only screening over per-slot buffers: safe to fan out, and
        // the serial ascending-slot argmax below keeps selection (and so
        // the whole fit) bit-identical for any thread count.
        ForEachChunk(config_.threads, pool_end, kScreenChunkSlots,
                     [&](size_t, size_t begin, size_t end) {
                       NeighborScratch local;
                       for (size_t p = begin; p < end; ++p) {
                         const uint32_t zone = unlabeled[p];
                         deltas[p] = state->Screen(
                             zone, x_all_scaled_.row(zone), &local,
                             &pseudos[p]);
                       }
                     });
        for (size_t p = 0; p < pool_end; ++p) {
          if (deltas[p] > best_delta) {
            best_delta = deltas[p];
            best_pos = p;
            best_label = pseudos[p];
          }
        }
      }
      if (best_pos != SIZE_MAX) {
        const uint32_t zone = unlabeled[best_pos];
        other->Add(x_all_scaled_.row(zone), dim, best_label);
        ++pseudo_labels_added_;
        any_added = true;
        s1.EraseCandidate(zone);
        s2.EraseCandidate(zone);
        // Remove from pool; backfill from the unscreened remainder.
        std::swap(unlabeled[best_pos], unlabeled[pool_end - 1]);
        if (pool_end < unlabeled.size()) {
          std::swap(unlabeled[pool_end - 1], unlabeled.back());
          unlabeled.pop_back();
        } else {
          unlabeled.pop_back();
          --pool_end;
        }
      }
    }
    if (!any_added) break;
  }
  return util::Status::OK();
}

std::vector<double> Coreg::Predict() const {
  size_t dim = x_all_scaled_.cols();
  std::vector<double> out(x_all_scaled_.rows());
  ForEachChunk(config_.threads, x_all_scaled_.rows(), 64,
               [&](size_t, size_t begin, size_t end) {
                 NeighborScratch scratch;
                 for (size_t i = begin; i < end; ++i) {
                   const double* row = x_all_scaled_.row(i);
                   out[i] = 0.5 * (h1_->PredictOne(row, dim, &scratch) +
                                   h2_->PredictOne(row, dim, &scratch));
                 }
               });
  return out;
}

}  // namespace staq::ml
