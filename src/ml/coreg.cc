#include "ml/coreg.h"

#include <algorithm>
#include <cmath>

namespace staq::ml {

namespace {

/// Error reduction over `candidate`'s labeled neighbourhood when
/// (candidate, pseudo_label) is tentatively added to `model`. Positive
/// means the addition helps (Zhou & Li's confidence criterion).
double ErrorReduction(KnnCore* model, const double* candidate, size_t dim,
                      double pseudo_label) {
  auto neighborhood = model->Neighbors(candidate, dim);
  if (neighborhood.empty()) return 0.0;

  double before = 0.0;
  for (uint32_t i : neighborhood) {
    double pred = model->PredictOneExcluding(model->features(i).data(), dim, i);
    double err = model->target(i) - pred;
    before += err * err;
  }

  model->Add(std::vector<double>(candidate, candidate + dim), pseudo_label);
  double after = 0.0;
  for (uint32_t i : neighborhood) {
    double pred = model->PredictOneExcluding(model->features(i).data(), dim, i);
    double err = model->target(i) - pred;
    after += err * err;
  }
  model->RemoveLast();
  return before - after;
}

}  // namespace

util::Status Coreg::Fit(const Dataset& data) {
  STAQ_RETURN_NOT_OK(data.Validate());

  Matrix x_labeled = data.x.SelectRows(data.labeled);
  scaler_.Fit(x_labeled);
  x_all_scaled_ = scaler_.Transform(data.x);
  size_t dim = x_all_scaled_.cols();

  h1_ = std::make_unique<KnnCore>(config_.knn1);
  h2_ = std::make_unique<KnnCore>(config_.knn2);
  for (uint32_t idx : data.labeled) {
    std::vector<double> row(x_all_scaled_.row(idx),
                            x_all_scaled_.row(idx) + dim);
    h1_->Add(row, data.y[idx]);
    h2_->Add(std::move(row), data.y[idx]);
  }

  // Unlabeled pool; replenished from the remaining unlabeled set.
  std::vector<uint32_t> unlabeled = data.UnlabeledIndices();
  util::Rng rng(config_.seed);
  rng.Shuffle(&unlabeled);
  size_t pool_end = std::min(config_.pool_size, unlabeled.size());
  pseudo_labels_added_ = 0;

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    bool any_added = false;
    // Each regressor nominates its best candidate for the OTHER one.
    KnnCore* models[2] = {h1_.get(), h2_.get()};
    for (int j = 0; j < 2; ++j) {
      KnnCore* self = models[j];
      KnnCore* other = models[1 - j];

      double best_delta = 0.0;
      size_t best_pos = SIZE_MAX;
      double best_label = 0.0;
      for (size_t p = 0; p < pool_end; ++p) {
        const double* row = x_all_scaled_.row(unlabeled[p]);
        double pseudo = self->PredictOne(row, dim);
        double delta = ErrorReduction(self, row, dim, pseudo);
        if (delta > best_delta) {
          best_delta = delta;
          best_pos = p;
          best_label = pseudo;
        }
      }
      if (best_pos != SIZE_MAX) {
        const double* row = x_all_scaled_.row(unlabeled[best_pos]);
        other->Add(std::vector<double>(row, row + dim), best_label);
        ++pseudo_labels_added_;
        any_added = true;
        // Remove from pool; backfill from the unscreened remainder.
        std::swap(unlabeled[best_pos], unlabeled[pool_end - 1]);
        if (pool_end < unlabeled.size()) {
          std::swap(unlabeled[pool_end - 1], unlabeled.back());
          unlabeled.pop_back();
        } else {
          unlabeled.pop_back();
          --pool_end;
        }
      }
    }
    if (!any_added) break;
  }
  return util::Status::OK();
}

std::vector<double> Coreg::Predict() const {
  size_t dim = x_all_scaled_.cols();
  std::vector<double> out(x_all_scaled_.rows());
  for (size_t i = 0; i < x_all_scaled_.rows(); ++i) {
    const double* row = x_all_scaled_.row(i);
    out[i] = 0.5 * (h1_->PredictOne(row, dim) + h2_->PredictOne(row, dim));
  }
  return out;
}

}  // namespace staq::ml
