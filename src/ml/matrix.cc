#include "ml/matrix.h"

#include <cmath>
#include <cstring>

#include "ml/kernels.h"

namespace staq::ml {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::Reset(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Matrix Matrix::SelectRows(const std::vector<uint32_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    STAQ_CHECK(indices[i] < rows_, "SelectRows index out of range");
    std::memcpy(out.row(i), row(indices[i]), cols_ * sizeof(double));
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) {
      out.data_[c * rows_ + r] = src[c];
    }
  }
  return out;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  STAQ_CHECK(a.cols() == b.rows(), "MatMul: inner dimensions differ");
  Matrix out(a.rows(), b.cols());
  kernels::GemmAccumulate(a.rows(), a.cols(), b.cols(), a.data().data(),
                          a.cols(), b.data().data(), b.cols(),
                          out.data().data(), out.cols());
  return out;
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  STAQ_CHECK(a.cols() == b.rows(), "MatMulInto: inner dimensions differ");
  STAQ_CHECK(out != &a && out != &b, "MatMulInto: out aliases an input");
  out->Reset(a.rows(), b.cols());
  kernels::GemmAccumulate(a.rows(), a.cols(), b.cols(), a.data().data(),
                          a.cols(), b.data().data(), b.cols(),
                          out->data().data(), out->cols());
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  STAQ_CHECK(a.cols() == x.size(), "MatVec: dimension mismatch");
  std::vector<double> y(a.rows(), 0.0);
  kernels::Gemv(a.rows(), a.cols(), a.data().data(), a.cols(), x.data(),
                y.data());
  return y;
}

Matrix Gram(const Matrix& a) {
  // Rank-1 updates in ascending-row order: each g element accumulates
  // ascending i, the order the previous direct loop used (OLS depends on
  // this staying bit-identical).
  Matrix g(a.cols(), a.cols());
  kernels::GemmAtB(a.rows(), a.cols(), a.cols(), a.data().data(), a.cols(),
                   a.data().data(), a.cols(), g.data().data(), g.cols());
  return g;
}

std::vector<double> TransposeVec(const Matrix& a,
                                 const std::vector<double>& y) {
  STAQ_CHECK(a.rows() == y.size(), "TransposeVec: dimension mismatch");
  std::vector<double> out(a.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    kernels::Axpy(a.cols(), y[i], a.row(i), out.data());
  }
  return out;
}

namespace {

/// In-place Cholesky A = L L^T; returns false when not positive definite.
bool CholeskySolve(Matrix* a, std::vector<double>* b) {
  size_t n = a->rows();
  for (size_t j = 0; j < n; ++j) {
    double diag = (*a)(j, j);
    for (size_t k = 0; k < j; ++k) diag -= (*a)(j, k) * (*a)(j, k);
    if (diag <= 1e-12) return false;
    diag = std::sqrt(diag);
    (*a)(j, j) = diag;
    for (size_t i = j + 1; i < n; ++i) {
      double v = (*a)(i, j);
      for (size_t k = 0; k < j; ++k) v -= (*a)(i, k) * (*a)(j, k);
      (*a)(i, j) = v / diag;
    }
  }
  // Forward solve L z = b.
  for (size_t i = 0; i < n; ++i) {
    double v = (*b)[i];
    for (size_t k = 0; k < i; ++k) v -= (*a)(i, k) * (*b)[k];
    (*b)[i] = v / (*a)(i, i);
  }
  // Back solve L^T x = z.
  for (size_t i = n; i-- > 0;) {
    double v = (*b)[i];
    for (size_t k = i + 1; k < n; ++k) v -= (*a)(k, i) * (*b)[k];
    (*b)[i] = v / (*a)(i, i);
  }
  return true;
}

/// Gaussian elimination with partial pivoting; returns false when singular.
bool GaussianSolve(Matrix* a, std::vector<double>* b) {
  size_t n = a->rows();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::abs((*a)(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::abs((*a)(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap((*a)(pivot, c), (*a)(col, c));
      std::swap((*b)[pivot], (*b)[col]);
    }
    double inv = 1.0 / (*a)(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      double factor = (*a)(r, col) * inv;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) {
        (*a)(r, c) -= factor * (*a)(col, c);
      }
      (*b)[r] -= factor * (*b)[col];
    }
  }
  for (size_t i = n; i-- > 0;) {
    double v = (*b)[i];
    for (size_t c = i + 1; c < n; ++c) v -= (*a)(i, c) * (*b)[c];
    (*b)[i] = v / (*a)(i, i);
  }
  return true;
}

}  // namespace

util::Result<std::vector<double>> SolveLinearSystem(Matrix a,
                                                    std::vector<double> b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return util::Status::InvalidArgument("solve: dimension mismatch");
  }
  Matrix chol = a;
  std::vector<double> rhs = b;
  if (CholeskySolve(&chol, &rhs)) return rhs;
  if (GaussianSolve(&a, &b)) return b;
  return util::Status::Internal("linear system is singular");
}

}  // namespace staq::ml
