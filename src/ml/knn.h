// k-nearest-neighbour regression in feature space.
//
// Doubles as (a) a standalone baseline and (b) the component regressor of
// COREG (Zhou & Li 2005), which pairs two kNN regressors with different
// Minkowski orders. The incremental KnnCore supports COREG's pseudo-label
// additions.
#pragma once

#include <vector>

#include "ml/model.h"
#include "ml/scaler.h"

namespace staq::ml {

struct KnnConfig {
  int k = 3;
  /// Minkowski distance order (2 = Euclidean).
  double minkowski_p = 2.0;
  /// Inverse-distance weighting of neighbour targets; plain mean if false.
  bool distance_weighted = true;
};

/// Brute-force incremental kNN regressor over standardised features.
/// Sizes here are hundreds of labeled zones, so brute force is exact and
/// fast enough.
class KnnCore {
 public:
  explicit KnnCore(KnnConfig config) : config_(config) {}

  void Add(std::vector<double> features, double target);
  /// Removes the most recently added example (for tentative additions).
  void RemoveLast();
  size_t size() const { return targets_.size(); }
  const KnnConfig& config() const { return config_; }

  /// Predicts for one feature row. Requires size() >= 1.
  double PredictOne(const double* row, size_t dim) const;

  /// Predicts for one row while ignoring the stored example at `exclude`
  /// (leave-one-out evaluation). Requires at least 2 examples.
  double PredictOneExcluding(const double* row, size_t dim,
                             uint32_t exclude) const;

  /// Indices (into insertion order) of the k nearest stored examples,
  /// optionally skipping `exclude`.
  std::vector<uint32_t> Neighbors(const double* row, size_t dim,
                                  uint32_t exclude = UINT32_MAX) const;

  double target(uint32_t i) const { return targets_[i]; }
  const std::vector<double>& features(uint32_t i) const { return rows_[i]; }

 private:
  double DistanceTo(uint32_t i, const double* row, size_t dim) const;

  KnnConfig config_;
  std::vector<std::vector<double>> rows_;
  std::vector<double> targets_;
};

/// SsrModel wrapper: supervised kNN on the labeled rows.
class KnnRegressor : public SsrModel {
 public:
  explicit KnnRegressor(KnnConfig config = {}) : config_(config) {}

  const char* name() const override { return "kNN"; }
  util::Status Fit(const Dataset& data) override;
  std::vector<double> Predict() const override;

 private:
  KnnConfig config_;
  StandardScaler scaler_;
  std::unique_ptr<KnnCore> core_;
  Matrix x_all_scaled_;
};

}  // namespace staq::ml
