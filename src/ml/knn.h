// k-nearest-neighbour regression in feature space.
//
// Doubles as (a) a standalone baseline and (b) the component regressor of
// COREG (Zhou & Li 2005), which pairs two kNN regressors with different
// Minkowski orders. The incremental KnnCore supports COREG's pseudo-label
// additions.
//
// Storage is one flat SoA buffer (size() x dim() doubles) so distance
// loops stream contiguously; neighbour selection runs through a reusable
// caller-owned scratch (no per-call allocation), and CachedNeighbors lets
// COREG keep a candidate's top-k up to date incrementally as the store
// grows instead of rescanning the whole labeled set per screening pass.
//
// Neighbour ordering contract: candidates compare as (finished distance,
// index) pairs — the *finished* Minkowski distance, after the root, because
// the root can collapse distinct raw sums into equal finished values and
// ties break by insertion index on the finished value. Selection via the
// bounded max-heap and via incremental insertion both follow this total
// order, so every path returns exactly the list a full sort would.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ml/model.h"
#include "ml/scaler.h"

namespace staq::ml {

struct KnnConfig {
  int k = 3;
  /// Minkowski distance order (2 = Euclidean).
  double minkowski_p = 2.0;
  /// Inverse-distance weighting of neighbour targets; plain mean if false.
  bool distance_weighted = true;
};

/// Reusable buffers for neighbour selection. Owned by the caller, one per
/// thread; contents are scratch between calls.
struct NeighborScratch {
  /// Bounded max-heap during selection; sorted ascending (distance, index)
  /// after SelectTopK / the scratch Predict overloads return.
  std::vector<std::pair<double, uint32_t>> heap;
  /// Staging area for tentatively merged neighbour lists (COREG screening).
  std::vector<std::pair<double, uint32_t>> merged;
};

/// One query row's k nearest stored examples, maintained incrementally as
/// the store grows. `version` is the store size the list reflects; a store
/// that shrank (or a changed exclude) forces a full rebuild.
struct CachedNeighbors {
  size_t version = 0;
  uint32_t exclude = UINT32_MAX;
  /// Ascending (finished distance, index).
  std::vector<std::pair<double, uint32_t>> sorted;
};

/// Brute-force incremental kNN regressor over standardised features.
/// Sizes here are hundreds of labeled zones, so brute force is exact and
/// fast enough.
class KnnCore {
 public:
  explicit KnnCore(KnnConfig config) : config_(config) {}

  /// Appends an example. The first Add fixes dim(); later Adds must match.
  void Add(const double* features, size_t dim, double target);
  void Add(const std::vector<double>& features, double target) {
    Add(features.data(), features.size(), target);
  }
  /// Removes the most recently added example (for tentative additions).
  void RemoveLast();
  size_t size() const { return targets_.size(); }
  size_t dim() const { return dim_; }
  const KnnConfig& config() const { return config_; }

  /// Predicts for one feature row. Requires size() >= 1.
  double PredictOne(const double* row, size_t dim) const;
  double PredictOne(const double* row, size_t dim,
                    NeighborScratch* scratch) const;

  /// Predicts for one row while ignoring the stored example at `exclude`
  /// (leave-one-out evaluation). Requires at least 2 examples.
  double PredictOneExcluding(const double* row, size_t dim,
                             uint32_t exclude) const;
  double PredictOneExcluding(const double* row, size_t dim, uint32_t exclude,
                             NeighborScratch* scratch) const;

  /// Indices (into insertion order) of the k nearest stored examples,
  /// optionally skipping `exclude`.
  std::vector<uint32_t> Neighbors(const double* row, size_t dim,
                                  uint32_t exclude = UINT32_MAX) const;

  /// Fills scratch->heap with the k nearest (distance, index) pairs for
  /// `row`, sorted ascending; returns how many were found.
  size_t SelectTopK(const double* row, size_t dim, uint32_t exclude,
                    NeighborScratch* scratch) const;

  /// Brings `cache` up to date with the current store for query `row`
  /// (which must be the same row the cache was built for). Only distances
  /// to examples added since `cache->version` are computed. Returns true
  /// when the cached list changed.
  bool UpdateNeighbors(const double* row, uint32_t exclude,
                       CachedNeighbors* cache, NeighborScratch* scratch) const;

  /// Weighted prediction from a sorted (distance, index) list. Entries
  /// whose index equals size() stand for a tentative extra example with
  /// target `extra_target` (COREG's hypothetical add). Accumulation order
  /// matches PredictOne over the same list.
  double PredictFromList(const std::pair<double, uint32_t>* list, size_t len,
                         double extra_target = 0.0) const;

  /// Exact Minkowski distance from stored example `i` to `row`. Fast paths:
  /// p=1 (plain |.| sum, no root), p=2 (squared sum + sqrt), small integer
  /// p (repeated multiplication, one root) — no per-element std::pow.
  double DistanceTo(uint32_t i, const double* row, size_t dim) const;

  double target(uint32_t i) const { return targets_[i]; }
  /// Pointer to stored example `i` (dim() doubles). Invalidated by Add.
  const double* features(uint32_t i) const {
    return flat_.data() + static_cast<size_t>(i) * dim_;
  }

 private:
  KnnConfig config_;
  size_t dim_ = 0;
  std::vector<double> flat_;  // size() x dim(), row-major
  std::vector<double> targets_;
};

/// SsrModel wrapper: supervised kNN on the labeled rows.
class KnnRegressor : public SsrModel {
 public:
  explicit KnnRegressor(KnnConfig config = {}) : config_(config) {}

  const char* name() const override { return "kNN"; }
  util::Status Fit(const Dataset& data) override;
  std::vector<double> Predict() const override;

 private:
  KnnConfig config_;
  StandardScaler scaler_;
  std::unique_ptr<KnnCore> core_;
  Matrix x_all_scaled_;
};

}  // namespace staq::ml
