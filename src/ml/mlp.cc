#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "ml/kernels.h"
#include "ml/parallel.h"
#include "util/check.h"

namespace staq::ml {

namespace {

/// Samples per gradient chunk. Fixed — never derived from the thread
/// count — so the chunk layout, and with it the chunk-order gradient
/// reduction, is identical for every MlpConfig::threads value. At the
/// default batch size (16) a batch is a single chunk, which makes the
/// batched path bit-identical to the per-sample foil as well.
constexpr size_t kGradChunkSamples = 32;

}  // namespace

DenseNet::DenseNet(size_t input_dim, std::vector<size_t> hidden,
                   util::Rng* rng) {
  dims_.push_back(input_dim);
  for (size_t h : hidden) dims_.push_back(h);
  dims_.push_back(1);

  size_t total = 0;
  for (size_t l = 0; l + 1 < dims_.size(); ++l) {
    layer_offset_.push_back(total);
    total += dims_[l] * dims_[l + 1] + dims_[l + 1];
  }
  params_.resize(total);

  // He initialisation for ReLU layers; biases zero.
  for (size_t l = 0; l + 1 < dims_.size(); ++l) {
    size_t in = dims_[l], out = dims_[l + 1];
    double scale = std::sqrt(2.0 / static_cast<double>(in));
    double* w = params_.data() + layer_offset_[l];
    for (size_t i = 0; i < in * out; ++i) w[i] = rng->Normal(0.0, scale);
    // biases (the `out` doubles after W) remain zero.
  }
}

double DenseNet::Forward(const double* x,
                         std::vector<std::vector<double>>* activations) const {
  if (activations) {
    activations->assign(dims_.size() - 1, {});
  }
  std::vector<double> current(x, x + dims_[0]);
  for (size_t l = 0; l + 1 < dims_.size(); ++l) {
    size_t in = dims_[l], out = dims_[l + 1];
    const double* w = params_.data() + layer_offset_[l];
    const double* b = w + in * out;
    std::vector<double> next(out, 0.0);
    for (size_t i = 0; i < in; ++i) {
      double xi = current[i];
      if (xi == 0.0) continue;
      const double* w_row = w + i * out;
      for (size_t j = 0; j < out; ++j) next[j] += xi * w_row[j];
    }
    bool is_output = (l + 2 == dims_.size());
    for (size_t j = 0; j < out; ++j) {
      next[j] += b[j];
      if (!is_output && next[j] < 0.0) next[j] = 0.0;  // ReLU
    }
    if (activations) (*activations)[l] = next;
    current = std::move(next);
  }
  return current[0];
}

void DenseNet::ForwardBatch(const double* x, size_t batch,
                            DenseNetScratch* scratch) const {
  const size_t num_layers = dims_.size() - 1;
  scratch->acts.resize(num_layers);
  const double* current = x;
  size_t current_ld = dims_[0];
  for (size_t l = 0; l < num_layers; ++l) {
    const size_t in = dims_[l], out = dims_[l + 1];
    const double* w = params_.data() + layer_offset_[l];
    const double* b = w + in * out;
    Matrix& a = scratch->acts[l];
    a.Reset(batch, out);
    // Accumulates ascending-k from zero, then bias, then ReLU — the same
    // per-element order Forward() uses for one sample.
    kernels::GemmAccumulate(batch, in, out, current, current_ld, w, out,
                            a.data().data(), out);
    const bool is_output = (l + 1 == num_layers);
    for (size_t r = 0; r < batch; ++r) {
      double* ar = a.row(r);
      for (size_t j = 0; j < out; ++j) {
        ar[j] += b[j];
        if (!is_output && ar[j] < 0.0) ar[j] = 0.0;  // ReLU
      }
    }
    current = a.data().data();
    current_ld = out;
  }
}

void DenseNet::Backward(const double* x,
                        const std::vector<std::vector<double>>& activations,
                        double dloss_dout, std::vector<double>* grad) const {
  STAQ_CHECK(grad->size() == params_.size(),
             "DenseNet::Backward: gradient size differs from parameters");
  size_t num_layers = dims_.size() - 1;
  std::vector<double> delta{dloss_dout};  // gradient wrt layer output

  for (size_t l = num_layers; l-- > 0;) {
    size_t in = dims_[l], out = dims_[l + 1];
    const double* input =
        (l == 0) ? x : activations[l - 1].data();
    const double* w = params_.data() + layer_offset_[l];
    double* gw = grad->data() + layer_offset_[l];
    double* gb = gw + in * out;

    // ReLU mask on hidden-layer outputs (output layer is linear).
    bool is_output = (l + 1 == num_layers);
    std::vector<double> local = delta;
    if (!is_output) {
      for (size_t j = 0; j < out; ++j) {
        if (activations[l][j] <= 0.0) local[j] = 0.0;
      }
    }

    for (size_t j = 0; j < out; ++j) gb[j] += local[j];
    std::vector<double> next_delta(in, 0.0);
    for (size_t i = 0; i < in; ++i) {
      double xi = input[i];
      const double* w_row = w + i * out;
      double* gw_row = gw + i * out;
      double acc = 0.0;
      for (size_t j = 0; j < out; ++j) {
        gw_row[j] += xi * local[j];
        acc += w_row[j] * local[j];
      }
      next_delta[i] = acc;
    }
    delta = std::move(next_delta);
  }
}

void DenseNet::BackwardBatch(const double* x, size_t batch,
                             const std::vector<double>& dloss,
                             std::vector<double>* grad,
                             DenseNetScratch* scratch) const {
  STAQ_CHECK(grad->size() == params_.size(),
             "DenseNet::BackwardBatch: gradient size differs from parameters");
  STAQ_CHECK(dloss.size() >= batch,
             "DenseNet::BackwardBatch: dloss shorter than batch");
  const size_t num_layers = dims_.size() - 1;
  scratch->delta.Reset(batch, 1);
  for (size_t r = 0; r < batch; ++r) scratch->delta(r, 0) = dloss[r];

  for (size_t l = num_layers; l-- > 0;) {
    const size_t in = dims_[l], out = dims_[l + 1];
    const double* input = (l == 0) ? x : scratch->acts[l - 1].data().data();
    const double* w = params_.data() + layer_offset_[l];
    double* gw = grad->data() + layer_offset_[l];
    double* gb = gw + in * out;

    Matrix& local = scratch->delta;  // masked in place
    const bool is_output = (l + 1 == num_layers);
    if (!is_output) {
      for (size_t r = 0; r < batch; ++r) {
        double* lr = local.row(r);
        const double* ar = scratch->acts[l].row(r);
        for (size_t j = 0; j < out; ++j) {
          if (ar[j] <= 0.0) lr[j] = 0.0;  // ReLU gate
        }
      }
    }

    // gb[j] += sum over samples of local(r, j), ascending r.
    for (size_t r = 0; r < batch; ++r) {
      const double* lr = local.row(r);
      for (size_t j = 0; j < out; ++j) gb[j] += lr[j];
    }
    // gW += X^T local: rank-1 updates in ascending sample order.
    kernels::GemmAtB(batch, in, out, input, in, local.data().data(), out, gw,
                     out);
    if (l > 0) {
      // next_delta(r, .) = W local(r, .): one Gemv per sample, each row
      // accumulating ascending j as the per-sample loop did.
      scratch->next_delta.Reset(batch, in);
      for (size_t r = 0; r < batch; ++r) {
        kernels::Gemv(in, out, w, out, local.row(r),
                      scratch->next_delta.row(r));
      }
      std::swap(scratch->delta, scratch->next_delta);
    }
  }
}

AdamOptimizer::AdamOptimizer(size_t num_params, double lr, double weight_decay)
    : lr_(lr),
      weight_decay_(weight_decay),
      m_(num_params, 0.0),
      v_(num_params, 0.0) {}

void AdamOptimizer::Step(std::vector<double>* params,
                         const std::vector<double>& grad) {
  STAQ_CHECK(params->size() == m_.size() && grad.size() == m_.size(),
             "AdamOptimizer::Step: size mismatch");
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < grad.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1 - beta2_) * grad[i] * grad[i];
    double m_hat = m_[i] / bc1;
    double v_hat = v_[i] / bc2;
    (*params)[i] -= lr_ * (m_hat / (std::sqrt(v_hat) + eps_) +
                           weight_decay_ * (*params)[i]);
  }
}

util::Status MlpRegressor::Fit(const Dataset& data) {
  STAQ_RETURN_NOT_OK(data.Validate());
  Matrix x_labeled = data.x.SelectRows(data.labeled);
  scaler_.Fit(x_labeled);
  Matrix xs = scaler_.Transform(x_labeled);

  std::vector<double> y_labeled(data.labeled.size());
  for (size_t i = 0; i < data.labeled.size(); ++i) {
    y_labeled[i] = data.y[data.labeled[i]];
  }
  target_scaler_.Fit(y_labeled);
  std::vector<double> ys = target_scaler_.Transform(y_labeled);

  util::Rng rng(config_.seed);
  net_ = std::make_unique<DenseNet>(xs.cols(), config_.hidden, &rng);
  AdamOptimizer opt(net_->num_params(), config_.learning_rate,
                    config_.weight_decay);

  size_t n = xs.rows();
  size_t dim = xs.cols();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::vector<double> grad(net_->num_params());

  if (config_.per_sample_updates) {
    // Foil: the original scalar path, one forward/backward per sample.
    std::vector<std::vector<double>> acts;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      rng.Shuffle(&order);
      for (size_t start = 0; start < n; start += config_.batch_size) {
        size_t end = std::min(n, start + config_.batch_size);
        std::fill(grad.begin(), grad.end(), 0.0);
        for (size_t b = start; b < end; ++b) {
          size_t i = order[b];
          double pred = net_->Forward(xs.row(i), &acts);
          // d(0.5 (pred - y)^2)/dpred, averaged over the batch.
          double dloss = (pred - ys[i]) / static_cast<double>(end - start);
          net_->Backward(xs.row(i), acts, dloss, &grad);
        }
        opt.Step(&net_->params(), grad);
      }
    }
    x_all_scaled_ = scaler_.Transform(data.x);
    return util::Status::OK();
  }

  // Batched path. Each batch is cut into fixed-size sample chunks; every
  // chunk gathers its rows, runs one batched forward/backward, and (when
  // there is more than one chunk) accumulates into its own buffer. The
  // buffers reduce in chunk order, so the gradient — and the whole fit —
  // is identical for any threads value.
  struct ChunkSlot {
    Matrix x;                   // gathered input rows
    DenseNetScratch scratch;
    std::vector<double> dloss;
    std::vector<double> grad;   // partial gradient (multi-chunk only)
  };
  const size_t max_batch = std::min(n, std::max<size_t>(config_.batch_size, 1));
  const size_t num_slots = (max_batch + kGradChunkSamples - 1) / kGradChunkSamples;
  const bool multi_chunk = num_slots > 1;
  std::vector<ChunkSlot> slots(num_slots);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < n; start += config_.batch_size) {
      const size_t end = std::min(n, start + config_.batch_size);
      const size_t batch = end - start;
      std::fill(grad.begin(), grad.end(), 0.0);
      const size_t chunks =
          (batch + kGradChunkSamples - 1) / kGradChunkSamples;
      ForEachChunk(
          config_.threads, batch, kGradChunkSamples,
          [&](size_t c, size_t cb, size_t ce) {
            ChunkSlot& slot = slots[c];
            const size_t m = ce - cb;
            slot.x.Reset(m, dim);
            for (size_t r = 0; r < m; ++r) {
              std::memcpy(slot.x.row(r), xs.row(order[start + cb + r]),
                          dim * sizeof(double));
            }
            net_->ForwardBatch(slot.x.data().data(), m, &slot.scratch);
            const Matrix& out_act = slot.scratch.acts.back();
            slot.dloss.resize(m);
            for (size_t r = 0; r < m; ++r) {
              slot.dloss[r] = (out_act(r, 0) - ys[order[start + cb + r]]) /
                              static_cast<double>(batch);
            }
            std::vector<double>* g = &grad;
            if (multi_chunk) {
              slot.grad.assign(grad.size(), 0.0);
              g = &slot.grad;
            }
            net_->BackwardBatch(slot.x.data().data(), m, slot.dloss, g,
                                &slot.scratch);
          });
      if (multi_chunk) {
        for (size_t c = 0; c < chunks; ++c) {
          kernels::Axpy(grad.size(), 1.0, slots[c].grad.data(), grad.data());
        }
      }
      opt.Step(&net_->params(), grad);
    }
  }

  x_all_scaled_ = scaler_.Transform(data.x);
  return util::Status::OK();
}

std::vector<double> MlpRegressor::Predict() const {
  const size_t n = x_all_scaled_.rows();
  std::vector<double> out(n);
  DenseNetScratch scratch;
  net_->ForwardBatch(x_all_scaled_.data().data(), n, &scratch);
  const Matrix& preds = scratch.acts.back();
  for (size_t i = 0; i < n; ++i) {
    out[i] = target_scaler_.InverseTransform(preds(i, 0));
  }
  return out;
}

}  // namespace staq::ml
