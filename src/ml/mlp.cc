#include "ml/mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace staq::ml {

DenseNet::DenseNet(size_t input_dim, std::vector<size_t> hidden,
                   util::Rng* rng) {
  dims_.push_back(input_dim);
  for (size_t h : hidden) dims_.push_back(h);
  dims_.push_back(1);

  size_t total = 0;
  for (size_t l = 0; l + 1 < dims_.size(); ++l) {
    layer_offset_.push_back(total);
    total += dims_[l] * dims_[l + 1] + dims_[l + 1];
  }
  params_.resize(total);

  // He initialisation for ReLU layers; biases zero.
  for (size_t l = 0; l + 1 < dims_.size(); ++l) {
    size_t in = dims_[l], out = dims_[l + 1];
    double scale = std::sqrt(2.0 / static_cast<double>(in));
    double* w = params_.data() + layer_offset_[l];
    for (size_t i = 0; i < in * out; ++i) w[i] = rng->Normal(0.0, scale);
    // biases (the `out` doubles after W) remain zero.
  }
}

double DenseNet::Forward(const double* x,
                         std::vector<std::vector<double>>* activations) const {
  if (activations) {
    activations->assign(dims_.size() - 1, {});
  }
  std::vector<double> current(x, x + dims_[0]);
  for (size_t l = 0; l + 1 < dims_.size(); ++l) {
    size_t in = dims_[l], out = dims_[l + 1];
    const double* w = params_.data() + layer_offset_[l];
    const double* b = w + in * out;
    std::vector<double> next(out, 0.0);
    for (size_t i = 0; i < in; ++i) {
      double xi = current[i];
      if (xi == 0.0) continue;
      const double* w_row = w + i * out;
      for (size_t j = 0; j < out; ++j) next[j] += xi * w_row[j];
    }
    bool is_output = (l + 2 == dims_.size());
    for (size_t j = 0; j < out; ++j) {
      next[j] += b[j];
      if (!is_output && next[j] < 0.0) next[j] = 0.0;  // ReLU
    }
    if (activations) (*activations)[l] = next;
    current = std::move(next);
  }
  return current[0];
}

void DenseNet::Backward(const double* x,
                        const std::vector<std::vector<double>>& activations,
                        double dloss_dout, std::vector<double>* grad) const {
  assert(grad->size() == params_.size());
  size_t num_layers = dims_.size() - 1;
  std::vector<double> delta{dloss_dout};  // gradient wrt layer output

  for (size_t l = num_layers; l-- > 0;) {
    size_t in = dims_[l], out = dims_[l + 1];
    const double* input =
        (l == 0) ? x : activations[l - 1].data();
    const double* w = params_.data() + layer_offset_[l];
    double* gw = grad->data() + layer_offset_[l];
    double* gb = gw + in * out;

    // ReLU mask on hidden-layer outputs (output layer is linear).
    bool is_output = (l + 1 == num_layers);
    std::vector<double> local = delta;
    if (!is_output) {
      for (size_t j = 0; j < out; ++j) {
        if (activations[l][j] <= 0.0) local[j] = 0.0;
      }
    }

    for (size_t j = 0; j < out; ++j) gb[j] += local[j];
    std::vector<double> next_delta(in, 0.0);
    for (size_t i = 0; i < in; ++i) {
      double xi = input[i];
      const double* w_row = w + i * out;
      double* gw_row = gw + i * out;
      double acc = 0.0;
      for (size_t j = 0; j < out; ++j) {
        gw_row[j] += xi * local[j];
        acc += w_row[j] * local[j];
      }
      next_delta[i] = acc;
    }
    delta = std::move(next_delta);
  }
}

AdamOptimizer::AdamOptimizer(size_t num_params, double lr, double weight_decay)
    : lr_(lr),
      weight_decay_(weight_decay),
      m_(num_params, 0.0),
      v_(num_params, 0.0) {}

void AdamOptimizer::Step(std::vector<double>* params,
                         const std::vector<double>& grad) {
  assert(params->size() == m_.size() && grad.size() == m_.size());
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < grad.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1 - beta2_) * grad[i] * grad[i];
    double m_hat = m_[i] / bc1;
    double v_hat = v_[i] / bc2;
    (*params)[i] -= lr_ * (m_hat / (std::sqrt(v_hat) + eps_) +
                           weight_decay_ * (*params)[i]);
  }
}

util::Status MlpRegressor::Fit(const Dataset& data) {
  STAQ_RETURN_NOT_OK(data.Validate());
  Matrix x_labeled = data.x.SelectRows(data.labeled);
  scaler_.Fit(x_labeled);
  Matrix xs = scaler_.Transform(x_labeled);

  std::vector<double> y_labeled(data.labeled.size());
  for (size_t i = 0; i < data.labeled.size(); ++i) {
    y_labeled[i] = data.y[data.labeled[i]];
  }
  target_scaler_.Fit(y_labeled);
  std::vector<double> ys = target_scaler_.Transform(y_labeled);

  util::Rng rng(config_.seed);
  net_ = std::make_unique<DenseNet>(xs.cols(), config_.hidden, &rng);
  AdamOptimizer opt(net_->num_params(), config_.learning_rate,
                    config_.weight_decay);

  size_t n = xs.rows();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::vector<double> grad(net_->num_params());
  std::vector<std::vector<double>> acts;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < n; start += config_.batch_size) {
      size_t end = std::min(n, start + config_.batch_size);
      std::fill(grad.begin(), grad.end(), 0.0);
      for (size_t b = start; b < end; ++b) {
        size_t i = order[b];
        double pred = net_->Forward(xs.row(i), &acts);
        // d(0.5 (pred - y)^2)/dpred, averaged over the batch.
        double dloss = (pred - ys[i]) / static_cast<double>(end - start);
        net_->Backward(xs.row(i), acts, dloss, &grad);
      }
      opt.Step(&net_->params(), grad);
    }
  }

  x_all_scaled_ = scaler_.Transform(data.x);
  return util::Status::OK();
}

std::vector<double> MlpRegressor::Predict() const {
  std::vector<double> out(x_all_scaled_.rows());
  for (size_t i = 0; i < x_all_scaled_.rows(); ++i) {
    out[i] = target_scaler_.InverseTransform(
        net_->Forward(x_all_scaled_.row(i)));
  }
  return out;
}

}  // namespace staq::ml
