// Common transductive interface for the SSR models (paper §V-A: OLS, MLP,
// COREG, Mean Teacher, GNN).
//
// Semi-supervised regression here is transductive: the model sees the
// feature matrix for ALL zones (L ∪ U), targets for the labeled subset, and
// must produce predictions for every zone. Purely supervised models (OLS,
// MLP) simply ignore the unlabeled rows during fitting.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geo/latlon.h"
#include "ml/matrix.h"
#include "util/status.h"

namespace staq::ml {

/// A transductive SSR problem instance.
struct Dataset {
  /// Feature matrix over all instances, one row per zone.
  Matrix x;
  /// Target values; only entries at labeled indices are meaningful.
  std::vector<double> y;
  /// Indices (rows of x) that carry labels.
  std::vector<uint32_t> labeled;
  /// Zone centroids, used by graph-based models for the adjacency matrix.
  /// May be empty for models that do not need it.
  std::vector<geo::Point> positions;

  size_t num_instances() const { return x.rows(); }
  size_t num_labeled() const { return labeled.size(); }

  /// Structural validation (sizes agree, labels in range, >= 2 labels).
  util::Status Validate() const;

  /// Indices not in `labeled`, ascending.
  std::vector<uint32_t> UnlabeledIndices() const;
};

/// Abstract SSR model. Fit() then Predict(); Predict() returns one value
/// per dataset row (including the labeled ones).
class SsrModel {
 public:
  virtual ~SsrModel() = default;

  virtual const char* name() const = 0;

  /// Trains on the dataset. Implementations must be deterministic given
  /// their configured seed.
  virtual util::Status Fit(const Dataset& data) = 0;

  /// Predictions for every dataset row, in row order. Requires a
  /// successful Fit().
  virtual std::vector<double> Predict() const = 0;
};

}  // namespace staq::ml
