// Multi-layer perceptron regression and its reusable pieces.
//
// DenseNet (a feed-forward net with ReLU hidden layers and a scalar linear
// output) plus an Adam optimiser, written without any autodiff framework —
// this is the C++ substitute for the paper's PyTorch MLP, and the Mean
// Teacher model reuses both.
//
// Training runs mini-batches through the blocked GEMM kernels
// (ForwardBatch/BackwardBatch); per parameter, gradient terms accumulate in
// ascending sample order — exactly the order the per-sample loops used —
// so batched results match the original implementation and are
// deterministic per (seed, batch size). The per-sample path is kept behind
// MlpConfig::per_sample_updates as a benchmark foil.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/matrix.h"
#include "ml/model.h"
#include "ml/scaler.h"
#include "util/rng.h"

namespace staq::ml {

/// Reusable buffers for batched forward/backward passes. Owned by the
/// caller, one per concurrently running chunk; contents are scratch.
struct DenseNetScratch {
  std::vector<Matrix> acts;  // per-layer activations, batch x width
  Matrix delta;              // gradient wrt current layer output
  Matrix next_delta;
};

/// Fully-connected scalar-output network. Parameters live in one flat
/// vector (per layer: row-major W[in][out], then b[out]) so optimisers and
/// EMA copies can treat them uniformly.
class DenseNet {
 public:
  /// He-initialised network with the given hidden widths.
  DenseNet(size_t input_dim, std::vector<size_t> hidden, util::Rng* rng);

  size_t input_dim() const { return dims_.front(); }
  size_t num_params() const { return params_.size(); }
  std::vector<double>& params() { return params_; }
  const std::vector<double>& params() const { return params_; }

  /// Forward pass for one sample. When `activations` is non-null it
  /// receives the post-nonlinearity outputs of every layer (needed by
  /// Backward).
  double Forward(const double* x,
                 std::vector<std::vector<double>>* activations = nullptr) const;

  /// Accumulates dL/dparams into `grad` (same layout/size as params) given
  /// the upstream scalar gradient dL/doutput. `activations` must come from
  /// Forward() on the same x.
  void Backward(const double* x,
                const std::vector<std::vector<double>>& activations,
                double dloss_dout, std::vector<double>* grad) const;

  /// Forward pass for `batch` samples in row-major `x` (batch x
  /// input_dim()); activations land in scratch->acts, whose back() is the
  /// batch x 1 output column. Per sample this computes exactly what
  /// Forward() computes.
  void ForwardBatch(const double* x, size_t batch,
                    DenseNetScratch* scratch) const;

  /// Accumulates dL/dparams into `grad` for a batch, given the per-sample
  /// upstream gradients `dloss` (size batch). scratch->acts must come from
  /// ForwardBatch on the same x. Per parameter, sample contributions
  /// accumulate in ascending batch order — the per-sample Backward order.
  void BackwardBatch(const double* x, size_t batch,
                     const std::vector<double>& dloss,
                     std::vector<double>* grad,
                     DenseNetScratch* scratch) const;

 private:
  std::vector<size_t> dims_;          // [in, h1, ..., 1]
  std::vector<size_t> layer_offset_;  // offset of each layer's W in params_
  std::vector<double> params_;
};

/// Adam optimiser with decoupled weight decay (AdamW).
class AdamOptimizer {
 public:
  AdamOptimizer(size_t num_params, double lr, double weight_decay = 0.0);

  /// Applies one update in place; `grad` must match the parameter size.
  void Step(std::vector<double>* params, const std::vector<double>& grad);

  void set_lr(double lr) { lr_ = lr; }

 private:
  double lr_;
  double weight_decay_;
  double beta1_ = 0.9;
  double beta2_ = 0.999;
  double eps_ = 1e-8;
  int64_t t_ = 0;
  std::vector<double> m_, v_;
};

struct MlpConfig {
  std::vector<size_t> hidden = {64, 32};
  int epochs = 500;
  size_t batch_size = 16;
  double learning_rate = 1e-3;
  double weight_decay = 1e-4;
  uint64_t seed = 7;
  /// Worker count for gradient computation. Batches are cut into
  /// fixed-size sample chunks (layout independent of the thread count)
  /// whose partial gradients reduce in chunk order, so Fit is bit-identical
  /// for every value, including 1.
  int threads = 1;
  /// Benchmark foil: the original one-sample-at-a-time forward/backward.
  /// Identical results at the default batch size, much more slowly.
  bool per_sample_updates = false;
};

/// Supervised MLP on the labeled rows (the paper's strongest model).
class MlpRegressor : public SsrModel {
 public:
  explicit MlpRegressor(MlpConfig config = {}) : config_(config) {}

  const char* name() const override { return "MLP"; }
  util::Status Fit(const Dataset& data) override;
  std::vector<double> Predict() const override;

 private:
  MlpConfig config_;
  StandardScaler scaler_;
  TargetScaler target_scaler_;
  std::unique_ptr<DenseNet> net_;
  Matrix x_all_scaled_;
};

}  // namespace staq::ml
