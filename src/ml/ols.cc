#include "ml/ols.h"

namespace staq::ml {

util::Status OlsRegressor::Fit(const Dataset& data) {
  STAQ_RETURN_NOT_OK(data.Validate());

  // Standardise on the labeled design; append an intercept column.
  Matrix x_labeled = data.x.SelectRows(data.labeled);
  scaler_.Fit(x_labeled);
  Matrix xs = scaler_.Transform(x_labeled);

  size_t n = xs.rows(), d = xs.cols();
  Matrix design(n, d + 1);
  for (size_t i = 0; i < n; ++i) {
    const double* src = xs.row(i);
    double* dst = design.row(i);
    for (size_t c = 0; c < d; ++c) dst[c] = src[c];
    dst[d] = 1.0;
  }

  std::vector<double> y_labeled(n);
  for (size_t i = 0; i < n; ++i) y_labeled[i] = data.y[data.labeled[i]];

  Matrix gram = Gram(design);
  for (size_t c = 0; c < d; ++c) gram(c, c) += config_.ridge;  // not intercept
  auto solved = SolveLinearSystem(gram, TransposeVec(design, y_labeled));
  if (!solved.ok()) return solved.status();
  coef_ = std::move(solved).value();

  x_all_scaled_ = scaler_.Transform(data.x);
  return util::Status::OK();
}

std::vector<double> OlsRegressor::Predict() const {
  size_t n = x_all_scaled_.rows(), d = x_all_scaled_.cols();
  std::vector<double> out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* r = x_all_scaled_.row(i);
    double acc = coef_[d];  // intercept
    for (size_t c = 0; c < d; ++c) acc += coef_[c] * r[c];
    out[i] = acc;
  }
  return out;
}

}  // namespace staq::ml
