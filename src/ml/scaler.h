// Per-column standardisation (zero mean, unit variance), fit on one matrix
// and applied to others. Constant columns scale to zero rather than NaN.
#pragma once

#include <vector>

#include "ml/matrix.h"

namespace staq::ml {

/// Column-wise standard scaler.
class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation from `x`.
  void Fit(const Matrix& x);

  /// Returns (x - mean) / std column-wise. Must be Fit() first; `x` must
  /// have the same column count.
  Matrix Transform(const Matrix& x) const;

  /// Fit then Transform in one step.
  Matrix FitTransform(const Matrix& x) {
    Fit(x);
    return Transform(x);
  }

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

/// Scalar standardiser for target vectors.
class TargetScaler {
 public:
  void Fit(const std::vector<double>& y);
  std::vector<double> Transform(const std::vector<double>& y) const;
  std::vector<double> InverseTransform(const std::vector<double>& y) const;
  double InverseTransform(double v) const { return v * std_ + mean_; }

  double mean() const { return mean_; }
  double stddev() const { return std_; }

 private:
  double mean_ = 0.0;
  double std_ = 1.0;
};

}  // namespace staq::ml
