#include "scenario/pack.h"

#include <cstdio>
#include <set>

#include "exp/config.h"

namespace staq::scenario {

util::Result<ScenarioPack> ScenarioPack::Parse(const std::string& text) {
  exp::ExperimentConfig::ParseOptions options;
  options.keyword = "scenario";
  options.required_key = "disrupt";
  auto config = exp::ExperimentConfig::Parse(text, options);
  if (!config.ok()) return config.status();

  ScenarioPack pack;
  std::set<std::string> names;
  for (const exp::MatrixBlock& block : config.value().blocks()) {
    if (!names.insert(block.name).second) {
      return util::Status::InvalidArgument("duplicate scenario '" +
                                           block.name + "'");
    }
    PackScenario scenario;
    scenario.name = block.name;
    for (const auto& [key, values] : block.axes) {
      if (key != "disrupt") {
        return util::Status::InvalidArgument(
            "scenario '" + block.name + "': unknown key '" + key +
            "' (packs only take 'disrupt')");
      }
      // `disrupt` values are an ordered application list, not an axis to
      // expand — parse each spec in declaration order.
      for (const std::string& spec : values) {
        auto d = ParseDisruptionSpec(spec);
        if (!d.ok()) {
          return util::Status::InvalidArgument("scenario '" + block.name +
                                               "': " + d.status().message());
        }
        scenario.disruptions.push_back(std::move(d).value());
      }
    }
    if (scenario.disruptions.empty()) {
      return util::Status::InvalidArgument("scenario '" + block.name +
                                           "' lists no disruptions");
    }
    pack.scenarios.push_back(std::move(scenario));
  }
  if (pack.scenarios.empty()) {
    return util::Status::InvalidArgument("pack declares no scenarios");
  }
  return pack;
}

util::Result<ScenarioPack> ScenarioPack::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open pack: " + path);
  }
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  auto pack = Parse(text);
  if (!pack.ok()) {
    return util::Status::InvalidArgument(path + ": " +
                                         pack.status().message());
  }
  return pack;
}

const PackScenario* ScenarioPack::Find(const std::string& name) const {
  for (const PackScenario& scenario : scenarios) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

}  // namespace staq::scenario
