#include "scenario/runner.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "util/failpoint.h"
#include "util/strings.h"

namespace staq::scenario {

namespace {

/// Human-readable "spec => resolved target" line for the report header.
std::string DescribeResolved(const Disruption& d,
                             const wal::MutationRecord& record) {
  switch (record.type) {
    case wal::MutationType::kSuspendRoute:
    case wal::MutationType::kScaleHeadway:
    case wal::MutationType::kSetFare:
      if (record.target == wal::kAllTargets) return d.spec + " => all routes";
      return util::Format("%s => route %u", d.spec.c_str(), record.target);
    case wal::MutationType::kCloseStop:
      return util::Format("%s => stop %u", d.spec.c_str(), record.target);
    default:
      return d.spec;
  }
}

util::Status WriteFile(const std::string& path, const std::string& text) {
  // Failure site: report emission — a full disk or injected fault must
  // surface as a clean status, never lose the run itself.
  STAQ_FAILPOINT("scenario.pack.report_write");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return util::Status::IoError("cannot write: " + path);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) return util::Status::IoError("short write: " + path);
  return util::Status::OK();
}

}  // namespace

util::Result<EquityReport> RunScenario(const CityFactory& factory,
                                       const PackScenario& scenario,
                                       const RunOptions& options) {
  auto city = factory();
  if (!city.ok()) return city.status();
  const std::string city_name = city.value().spec.name;

  serve::AqServer server(std::move(city).value(), options.interval,
                         options.server);

  serve::AqRequest request;
  request.category = options.category;
  request.options.exact = true;
  request.options.cost = options.cost;
  request.options.seed = options.seed;

  auto before = server.Query(request);
  if (!before.ok()) return before.status();

  std::vector<std::string> described;
  double mutation_seconds = 0.0;
  uint64_t mutation_spqs = 0;
  for (const Disruption& d : scenario.disruptions) {
    // Resolve against the *current* network: a second disruption sees the
    // feed its predecessors produced (e.g. `busiest` after a suspension
    // picks the busiest surviving route).
    auto record = ResolveDisruption(d, server.Snapshot()->base_city().feed);
    if (!record.ok()) return record.status();

    util::Result<serve::ScenarioStore::MutationReport> applied =
        util::Status::Internal("unreachable");
    switch (record.value().type) {
      case wal::MutationType::kSuspendRoute:
        applied = server.SuspendRoute(record.value().target);
        break;
      case wal::MutationType::kCloseStop:
        applied = server.CloseStop(record.value().target);
        break;
      case wal::MutationType::kScaleHeadway:
        applied = server.ScaleHeadway(record.value().target,
                                      record.value().factor);
        break;
      case wal::MutationType::kSetFare:
        applied = server.SetFare(record.value().target, record.value().value);
        break;
      case wal::MutationType::kScaleWalkSpeed:
        applied = server.ScaleWalkSpeed(record.value().value);
        break;
      default:
        return util::Status::Internal("pack resolved a non-disruption record");
    }
    if (!applied.ok()) {
      return util::Status::FromCode(
          applied.status().code(), "scenario '" + scenario.name + "', " +
                                       d.spec + ": " +
                                       applied.status().message());
    }
    described.push_back(DescribeResolved(d, record.value()));
    mutation_seconds += applied.value().seconds;
    mutation_spqs += applied.value().spqs;
  }

  auto after = server.Query(request);
  if (!after.ok()) return after.status();

  EquityReport report =
      CompareAccess(scenario.name, city_name, server.base_city().zones,
                    before.value(), after.value());
  report.disruptions = std::move(described);
  report.mutation_seconds = mutation_seconds;
  report.mutation_spqs = mutation_spqs;
  return report;
}

util::Result<std::vector<EquityReport>> RunPack(const CityFactory& factory,
                                                const ScenarioPack& pack,
                                                const RunOptions& options) {
  std::vector<EquityReport> reports;
  reports.reserve(pack.scenarios.size());
  for (const PackScenario& scenario : pack.scenarios) {
    auto report = RunScenario(factory, scenario, options);
    if (!report.ok()) return report.status();
    reports.push_back(std::move(report).value());
  }
  return reports;
}

util::Status WriteReports(const std::vector<EquityReport>& reports,
                          const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create " + dir + ": " + ec.message());
  }
  try {
    std::string text;
    for (const EquityReport& report : reports) {
      auto st = WriteFile(dir + "/report_" + report.scenario + ".json",
                          EquityReportJson(report) + "\n");
      if (!st.ok()) return st;
      text += FormatEquityReport(report);
    }
    return WriteFile(dir + "/reports.txt", text);
  } catch (const util::FailPointError& e) {
    // Injected fault: degrade to the same surface a real IO failure has.
    return util::Status::IoError(e.what());
  }
}

}  // namespace staq::scenario
