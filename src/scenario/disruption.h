// Disruption specs — the declarative form of a timetable mutation.
//
// A scenario pack names its disruptions in a compact colon-separated
// grammar; this header parses those specs and resolves their selectors
// against a concrete feed into the wal::MutationRecord the serving tier
// replicates:
//
//   suspend_route:<sel>          sel = <route id> | busiest
//   close_stop:<sel>             sel = <stop id>  | busiest
//   scale_headway:<sel>:<K>      sel = <route id> | busiest | all; keep
//                                every K-th trip per route (K >= 2)
//   set_fare:<sel>:<fare>        sel = <route id> | busiest | all
//   scale_walk:<factor>          walk-speed factor (snow day: 0.5)
//
// `busiest` makes packs portable across city families: it picks the route
// with the most trips (ties: lowest id) or the stop with the most timetable
// departure events (ties: lowest id) — both deterministic feed properties,
// so the same pack file resolves to a definite target on any feed.
// Resolution happens on the *client* side (pack runner, CLI): the record
// shipped to a primary always carries a concrete id, and replicas replay
// exactly what the primary logged.
#pragma once

#include <string>

#include "gtfs/feed.h"
#include "util/status.h"
#include "wal/record.h"

namespace staq::scenario {

/// How a disruption names its route/stop target.
enum class TargetSelector : uint8_t {
  kId,       // explicit numeric id
  kBusiest,  // resolved against the feed (see header comment)
  kAll,      // every route (scale_headway / set_fare only)
};

/// One parsed disruption spec, before selector resolution.
struct Disruption {
  wal::MutationType kind = wal::MutationType::kSuspendRoute;
  TargetSelector selector = TargetSelector::kId;
  uint32_t id = 0;        // selector == kId
  uint32_t factor = 0;    // kScaleHeadway divisor
  double value = 0.0;     // kSetFare fare / kScaleWalkSpeed factor
  std::string spec;       // the original spec text, kept for reports
};

/// Parses one spec word of the grammar above. kInvalidArgument on an
/// unknown kind, a malformed selector, or an out-of-domain parameter
/// (factor < 2, non-positive walk factor, negative fare).
util::Result<Disruption> ParseDisruptionSpec(const std::string& spec);

/// The route with the most trips in `feed` (ties: lowest id).
/// kFailedPrecondition on a feed with no routes.
util::Result<uint32_t> BusiestRoute(const gtfs::Feed& feed);

/// The stop with the most timetable departure events (calls that are not a
/// trip's final stop) in `feed` (ties: lowest id). kFailedPrecondition on a
/// feed with no stops.
util::Result<uint32_t> BusiestStop(const gtfs::Feed& feed);

/// Resolves the disruption's selector against `feed` and returns the
/// concrete sequence-0 mutation record to submit. Explicit ids are range
/// checked (kNotFound); `all` maps to wal::kAllTargets.
util::Result<wal::MutationRecord> ResolveDisruption(const Disruption& d,
                                                    const gtfs::Feed& feed);

}  // namespace staq::scenario
