#include "scenario/impact.h"

#include <algorithm>

namespace staq::scenario {

namespace {

constexpr double kUnreachable = -1e18;

/// One elementary ride of the pre-mutation timetable on the screening day.
struct Connection {
  gtfs::TimeOfDay dep = 0;
  gtfs::TimeOfDay arr = 0;
  gtfs::StopId from = 0;
  gtfs::StopId to = 0;
};

}  // namespace

std::vector<uint32_t> AffectedZones(const ImpactInputs& inputs) {
  const gtfs::Feed& feed = *inputs.feed;
  const router::WalkTable& walk = *inputs.walk;
  const gtfs::Day day = inputs.interval.day;

  // L(s): latest arrival at s from which a removed departure event is still
  // reachable. Raised by seeds, rides, and single walk transfers.
  std::vector<double> latest(feed.num_stops(), kUnreachable);
  auto raise = [&](gtfs::StopId s, double t) {
    if (t <= latest[s]) return;
    latest[s] = t;
    for (const router::WalkHop& hop : walk.Transfers(s)) {
      if (t - hop.walk_s > latest[hop.stop]) {
        latest[hop.stop] = t - hop.walk_s;
      }
    }
  };

  // Seeds: every removed departure event. Boarding by the departure time is
  // what makes the event usable, so the seed value is the departure itself.
  bool any_seed = false;
  for (gtfs::TripId t : inputs.removed_trips) {
    const gtfs::Trip& trip = feed.trip(t);
    if (!gtfs::RunsOn(trip.days, day)) continue;
    const gtfs::StopTime* begin = feed.trip_begin(t);
    for (uint32_t i = 0; i + 1 < trip.num_stop_times; ++i) {
      raise(begin[i].stop, begin[i].departure);
      any_seed = true;
    }
  }
  if (inputs.closed_stop != gtfs::kInvalidId) {
    // A stop closure removes boarding AND alighting there. Alighting is
    // reached by boarding the same trip upstream, so seed the departure
    // events at and before the stop's (last) call of every trip through it.
    for (gtfs::TripId t = 0; t < feed.num_trips(); ++t) {
      const gtfs::Trip& trip = feed.trip(t);
      if (!gtfs::RunsOn(trip.days, day)) continue;
      const gtfs::StopTime* begin = feed.trip_begin(t);
      uint32_t last_call = gtfs::kInvalidId;
      for (uint32_t i = 0; i < trip.num_stop_times; ++i) {
        if (begin[i].stop == inputs.closed_stop) last_call = i;
      }
      if (last_call == gtfs::kInvalidId) continue;
      const uint32_t limit = std::min(last_call, trip.num_stop_times - 2);
      for (uint32_t i = 0; i <= limit; ++i) {
        raise(begin[i].stop, begin[i].departure);
        any_seed = true;
      }
    }
  }
  if (!any_seed) return {};

  // The day's connections, scanned in decreasing departure order. One pass
  // settles everything whose legs take positive time; re-scanning to a
  // fixpoint also covers zero-length legs (arrival == departure), where a
  // same-instant chain could otherwise be order-sensitive.
  std::vector<Connection> connections;
  for (gtfs::TripId t = 0; t < feed.num_trips(); ++t) {
    const gtfs::Trip& trip = feed.trip(t);
    if (!gtfs::RunsOn(trip.days, day)) continue;
    const gtfs::StopTime* begin = feed.trip_begin(t);
    for (uint32_t i = 0; i + 1 < trip.num_stop_times; ++i) {
      connections.push_back(Connection{begin[i].departure,
                                       begin[i + 1].arrival, begin[i].stop,
                                       begin[i + 1].stop});
    }
  }
  std::sort(connections.begin(), connections.end(),
            [](const Connection& a, const Connection& b) {
              return a.dep > b.dep;
            });
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Connection& c : connections) {
      if (static_cast<double>(c.arr) <= latest[c.to] &&
          static_cast<double>(c.dep) > latest[c.from]) {
        raise(c.from, c.dep);
        changed = true;
      }
    }
  }

  // A zone is affected iff its earliest sampled departure can still make a
  // removed event through some access stop.
  std::vector<uint32_t> affected;
  const double start = static_cast<double>(inputs.interval.start);
  for (uint32_t z = 0; z < inputs.city->zones.size(); ++z) {
    for (const router::WalkHop& hop :
         walk.AccessStops(inputs.city->zones[z].centroid)) {
      if (start + hop.walk_s <= latest[hop.stop]) {
        affected.push_back(z);
        break;
      }
    }
  }
  return affected;
}

}  // namespace staq::scenario
