// Scenario packs — named disruption bundles in a declarative file.
//
// A pack reuses the experiment-config block grammar (exp/config.h) under
// the `scenario` keyword; each block is one named scenario whose `disrupt`
// key lists disruption specs (scenario/disruption.h) in application order:
//
//   # fleet breakdown on the trunk line, plus a snow day
//   scenario trunk_outage {
//     disrupt = suspend_route:busiest
//   }
//   scenario snow_day {
//     disrupt = scale_walk:0.5, scale_headway:all:2
//   }
//
// Ordering matters — disruptions apply sequentially against the live
// server, each building on the previous epoch — so `disrupt` keeps its
// declared order (the runner never expands a cartesian product here).
// Every spec is parsed at load time: a typo fails the whole pack with its
// block name attached, not the Nth scenario of a long run.
#pragma once

#include <string>
#include <vector>

#include "scenario/disruption.h"
#include "util/status.h"

namespace staq::scenario {

/// One named scenario: an ordered disruption list.
struct PackScenario {
  std::string name;
  std::vector<Disruption> disruptions;
};

/// A parsed pack file.
struct ScenarioPack {
  std::vector<PackScenario> scenarios;

  /// Parses pack text. kInvalidArgument on grammar errors, duplicate
  /// scenario names, keys other than `disrupt`, or a malformed spec.
  static util::Result<ScenarioPack> Parse(const std::string& text);

  /// Reads and parses a pack file.
  static util::Result<ScenarioPack> Load(const std::string& path);

  /// The scenario named `name`, or nullptr.
  const PackScenario* Find(const std::string& name) const;
};

}  // namespace staq::scenario
