// Affected-zone screening for timetable disruptions.
//
// A timetable mutation only changes the labels of zones that could have
// *used* a removed connection; everything else keeps its exact label
// bit-for-bit, so the serving tier relabels only the screened set (the
// same cost model as POI-edit patches: O(affected zones) SPQs, not
// O(all zones)).
//
// The screen runs one reverse sweep over the ORIGINAL day-filtered
// timetable. Define L(s) = the latest arrival time at stop s from which
// some removed departure event is still reachable via rides and single
// walk transfers. Seeds are the removed departure events themselves (and,
// for a stop closure, the departure events at and upstream of the closed
// stop — boarding upstream is how a rider reaches the removed *arrival*).
// Scanning all connections c = (u -> v, dep, arr) in decreasing departure
// order, arr <= L(v) lets a rider boarding c at u still make a removed
// event, so L(u) >= dep; walk transfers propagate L one hop outward after
// every improvement. A single monotone pass suffices: any contribution to
// L(v) with value >= arr comes from a connection departing at or after
// arr >= dep, which the decreasing-departure order has already processed.
//
// A zone is affected iff some access stop s of its centroid satisfies
// interval.start + walk(zone, s) <= L(s): the earliest trip the TODAM can
// sample leaves at interval.start, so any sampled journey that could touch
// a removed connection is caught. The set is conservative only through the
// horizon and boarding-wait budgets it ignores — a superset is harmless
// (relabeling an unaffected zone reproduces its label exactly); a miss
// would break bit-identity, which the golden tests would catch.
#pragma once

#include <cstdint>
#include <vector>

#include "gtfs/feed.h"
#include "gtfs/time.h"
#include "router/walk_table.h"
#include "synth/city_builder.h"

namespace staq::scenario {

/// Inputs of one screening pass. Everything refers to the timetable BEFORE
/// the disruption: `feed` and `walk` are the pre-mutation feed and its walk
/// table (current walk parameters applied).
struct ImpactInputs {
  const synth::City* city = nullptr;          // zones (+ original feed owner)
  const gtfs::Feed* feed = nullptr;           // pre-mutation timetable
  const router::WalkTable* walk = nullptr;    // walk table over `feed`
  gtfs::TimeInterval interval;                // analysis window (day + start)
  /// Trips removed by the transform, in pre-mutation trip ids.
  std::vector<gtfs::TripId> removed_trips;
  /// Closed stop (kCloseStop), else kInvalidId.
  gtfs::StopId closed_stop = gtfs::kInvalidId;
};

/// Zones whose labels may change, ascending. Deterministic: a pure
/// function of the inputs, so primary and replicas screen identically.
std::vector<uint32_t> AffectedZones(const ImpactInputs& inputs);

}  // namespace staq::scenario
