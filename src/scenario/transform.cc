#include "scenario/transform.h"

#include <algorithm>

#include "util/strings.h"

namespace staq::scenario {

namespace {

/// Rebuilds a feed keeping only the trips whose flag is set, renumbering
/// the survivors densely in input order (monotonic, so every derived sort
/// order — notably the connection array's (departure, trip, sequence) —
/// is preserved on the kept subset).
util::Result<TransformResult> KeepTrips(const gtfs::Feed& feed,
                                        const std::vector<char>& keep) {
  TransformResult result;
  std::vector<gtfs::Trip> trips;
  std::vector<gtfs::StopTime> stop_times;
  trips.reserve(feed.num_trips());
  stop_times.reserve(feed.num_stop_times());
  for (gtfs::TripId t = 0; t < feed.num_trips(); ++t) {
    if (!keep[t]) {
      result.removed_trips.push_back(t);
      continue;
    }
    gtfs::Trip trip = feed.trip(t);
    trip.id = static_cast<gtfs::TripId>(trips.size());
    trip.first_stop_time = static_cast<uint32_t>(stop_times.size());
    for (const gtfs::StopTime* call = feed.trip_begin(t);
         call != feed.trip_end(t); ++call) {
      gtfs::StopTime st = *call;
      st.trip = trip.id;
      stop_times.push_back(st);
    }
    trips.push_back(trip);
  }
  if (trips.empty()) {
    return util::Status::InvalidArgument(
        "disruption would remove every trip of the timetable");
  }
  auto rebuilt = gtfs::Feed::FromParts(feed.stops(), feed.routes(),
                                       std::move(trips),
                                       std::move(stop_times));
  if (!rebuilt.ok()) return rebuilt.status();
  result.feed = std::move(rebuilt).value();
  return result;
}

}  // namespace

util::Result<TransformResult> SuspendRoute(const gtfs::Feed& feed,
                                           gtfs::RouteId route) {
  if (route >= feed.num_routes()) {
    return util::Status::InvalidArgument(
        util::Format("no route with id %u", route));
  }
  std::vector<char> keep(feed.num_trips(), 1);
  bool removed_any = false;
  for (gtfs::TripId t = 0; t < feed.num_trips(); ++t) {
    if (feed.trip(t).route == route) {
      keep[t] = 0;
      removed_any = true;
    }
  }
  if (!removed_any) {
    return util::Status::InvalidArgument(
        util::Format("route %u has no trips to suspend", route));
  }
  return KeepTrips(feed, keep);
}

util::Result<TransformResult> CloseStop(const gtfs::Feed& feed,
                                        gtfs::StopId stop) {
  if (stop >= feed.num_stops()) {
    return util::Status::InvalidArgument(
        util::Format("no stop with id %u", stop));
  }
  std::vector<gtfs::Trip> trips;
  std::vector<gtfs::StopTime> stop_times;
  TransformResult result;
  result.closed_stop = stop;
  bool touched_any = false;
  for (gtfs::TripId t = 0; t < feed.num_trips(); ++t) {
    // Ride-through: copy the trip's calls minus the closed stop. The
    // remaining calls keep their times, so the legs around the closed stop
    // merge into one longer leg of the same trip.
    uint32_t kept_calls = 0;
    for (const gtfs::StopTime* call = feed.trip_begin(t);
         call != feed.trip_end(t); ++call) {
      if (call->stop != stop) ++kept_calls;
    }
    if (kept_calls != feed.trip(t).num_stop_times) touched_any = true;
    if (kept_calls < 2) {
      // A trip reduced to fewer than two calls serves nothing; drop it.
      result.removed_trips.push_back(t);
      continue;
    }
    gtfs::Trip trip = feed.trip(t);
    trip.id = static_cast<gtfs::TripId>(trips.size());
    trip.first_stop_time = static_cast<uint32_t>(stop_times.size());
    trip.num_stop_times = kept_calls;
    for (const gtfs::StopTime* call = feed.trip_begin(t);
         call != feed.trip_end(t); ++call) {
      if (call->stop == stop) continue;
      gtfs::StopTime st = *call;
      st.trip = trip.id;
      stop_times.push_back(st);
    }
    trips.push_back(trip);
  }
  if (!touched_any) {
    return util::Status::InvalidArgument(
        util::Format("stop %u has no timetable calls to close", stop));
  }
  if (trips.empty()) {
    return util::Status::InvalidArgument(
        "disruption would remove every trip of the timetable");
  }
  auto rebuilt = gtfs::Feed::FromParts(feed.stops(), feed.routes(),
                                       std::move(trips),
                                       std::move(stop_times));
  if (!rebuilt.ok()) return rebuilt.status();
  result.feed = std::move(rebuilt).value();
  return result;
}

util::Result<TransformResult> ScaleHeadway(const gtfs::Feed& feed,
                                           gtfs::RouteId route,
                                           uint32_t factor) {
  if (factor < 2) {
    return util::Status::InvalidArgument(
        util::Format("headway factor must be >= 2, got %u", factor));
  }
  if (route != kAllRoutes && route >= feed.num_routes()) {
    return util::Status::InvalidArgument(
        util::Format("no route with id %u", route));
  }
  // Order each route's trips by (first departure, trip id) and keep every
  // factor-th one — a deterministic function of the timetable alone.
  std::vector<std::vector<std::pair<gtfs::TimeOfDay, gtfs::TripId>>> per_route(
      feed.num_routes());
  for (gtfs::TripId t = 0; t < feed.num_trips(); ++t) {
    per_route[feed.trip(t).route].emplace_back(feed.trip_begin(t)->departure,
                                               t);
  }
  std::vector<char> keep(feed.num_trips(), 1);
  bool thinned_any = false;
  for (gtfs::RouteId r = 0; r < feed.num_routes(); ++r) {
    if (route != kAllRoutes && r != route) continue;
    auto& order = per_route[r];
    std::sort(order.begin(), order.end());
    for (size_t i = 0; i < order.size(); ++i) {
      if (i % factor != 0) {
        keep[order[i].second] = 0;
        thinned_any = true;
      }
    }
  }
  if (route != kAllRoutes && per_route[route].empty()) {
    return util::Status::InvalidArgument(
        util::Format("route %u has no trips to thin", route));
  }
  if (!thinned_any) {
    // Nothing removed (factor exceeds every route's trip count is still a
    // removal unless each route has <= 1 trip); treat a no-op as an error
    // so replication never logs an epoch that changed nothing.
    return util::Status::InvalidArgument(
        "headway scaling removed no trips (routes too sparse)");
  }
  return KeepTrips(feed, keep);
}

util::Result<gtfs::Feed> SetFlatFare(const gtfs::Feed& feed,
                                     gtfs::RouteId route, double fare) {
  if (route != kAllRoutes && route >= feed.num_routes()) {
    return util::Status::InvalidArgument(
        util::Format("no route with id %u", route));
  }
  if (!(fare >= 0.0)) {
    return util::Status::InvalidArgument("fare must be non-negative");
  }
  std::vector<gtfs::Route> routes = feed.routes();
  for (gtfs::Route& r : routes) {
    if (route == kAllRoutes || r.id == route) r.flat_fare = fare;
  }
  return gtfs::Feed::FromParts(feed.stops(), std::move(routes), feed.trips(),
                               feed.stop_times());
}

}  // namespace staq::scenario
