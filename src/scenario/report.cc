#include "scenario/report.h"

#include "core/measures.h"
#include "exp/json.h"
#include "util/check.h"
#include "util/strings.h"

namespace staq::scenario {

namespace {

EquitySide SideOf(const core::AccessQueryResult& result) {
  EquitySide side;
  side.mean_mac = result.mean_mac;
  side.mean_acsd = result.mean_acsd;
  side.fairness = result.fairness;
  side.population_fairness = result.population_fairness;
  side.vulnerable_fairness = result.vulnerable_fairness;
  for (int c : result.classes) {
    side.class_counts[static_cast<size_t>(c)]++;
  }
  return side;
}

std::string JsonSide(const EquitySide& side) {
  return util::Format(
      "{\"class_counts\": [%u, %u, %u, %u], \"fairness\": %.6f, "
      "\"mean_acsd_s\": %.6f, \"mean_mac_s\": %.6f, "
      "\"population_fairness\": %.6f, \"vulnerable_fairness\": %.6f}",
      side.class_counts[0], side.class_counts[1], side.class_counts[2],
      side.class_counts[3], side.fairness, side.mean_acsd, side.mean_mac,
      side.population_fairness, side.vulnerable_fairness);
}

void JsonEscapeInto(const std::string& text, std::string* out) {
  for (char c : text) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

EquityReport CompareAccess(const std::string& scenario_name,
                           const std::string& city_name,
                           const std::vector<synth::Zone>& zones,
                           const core::AccessQueryResult& before,
                           const core::AccessQueryResult& after) {
  STAQ_CHECK(before.mac.size() == zones.size() &&
                 after.mac.size() == zones.size() &&
                 before.classes.size() == zones.size() &&
                 after.classes.size() == zones.size(),
             "before/after answers must cover every zone");
  EquityReport report;
  report.scenario = scenario_name;
  report.city = city_name;
  report.zones = static_cast<uint32_t>(zones.size());
  report.before = SideOf(before);
  report.after = SideOf(after);

  report.mac_delta_s.resize(zones.size());
  for (size_t z = 0; z < zones.size(); ++z) {
    report.mac_delta_s[z] = after.mac[z] - before.mac[z];
    report.migration[static_cast<size_t>(before.classes[z])]
                    [static_cast<size_t>(after.classes[z])]++;
    // Worst = largest access loss; ties keep the lowest zone id.
    if (report.mac_delta_s[z] > report.worst.mac_delta_s) {
      report.worst.zone = static_cast<uint32_t>(z);
      report.worst.mac_delta_s = report.mac_delta_s[z];
    }
  }
  return report;
}

std::string FormatEquityReport(const EquityReport& report) {
  std::string out;
  out += util::Format("scenario %s (city %s, %u zones)\n",
                      report.scenario.c_str(), report.city.c_str(),
                      report.zones);
  for (const std::string& d : report.disruptions) {
    out += "  disrupt: " + d + "\n";
  }
  out += util::Format("  applied in %.3f s (%llu patch SPQs)\n",
                      report.mutation_seconds,
                      static_cast<unsigned long long>(report.mutation_spqs));

  out += util::Format("  %-18s %10s %10s %10s\n", "measure", "before",
                      "after", "delta");
  auto row = [&out](const char* label, double b, double a, double scale) {
    out += util::Format("  %-18s %10.3f %10.3f %+10.3f\n", label, b * scale,
                        a * scale, (a - b) * scale);
  };
  row("mean MAC (min)", report.before.mean_mac, report.after.mean_mac,
      1.0 / 60);
  row("mean ACSD (min)", report.before.mean_acsd, report.after.mean_acsd,
      1.0 / 60);
  row("fairness (Jain)", report.before.fairness, report.after.fairness, 1.0);
  row("pop fairness", report.before.population_fairness,
      report.after.population_fairness, 1.0);
  row("vulnerable", report.before.vulnerable_fairness,
      report.after.vulnerable_fairness, 1.0);

  out += util::Format("  %-18s", "classes");
  for (size_t c = 0; c < 4; ++c) {
    out += util::Format(" %s %u->%u",
                        core::AccessClassName(static_cast<core::AccessClass>(
                            static_cast<int>(c))),
                        report.before.class_counts[c],
                        report.after.class_counts[c]);
  }
  out += "\n  class migration (before -> after):\n";
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      if (i == j || report.migration[i][j] == 0) continue;
      out += util::Format(
          "    %-11s -> %-11s : %u zones\n",
          core::AccessClassName(static_cast<core::AccessClass>(
              static_cast<int>(i))),
          core::AccessClassName(static_cast<core::AccessClass>(
              static_cast<int>(j))),
          report.migration[i][j]);
    }
  }
  out += util::Format("  worst zone: %u (MAC %+.1f min)\n", report.worst.zone,
                      report.worst.mac_delta_s / 60);
  return out;
}

std::string EquityReportJson(const EquityReport& report) {
  std::string out = "{\"scenario\": \"";
  JsonEscapeInto(report.scenario, &out);
  out += "\", \"city\": \"";
  JsonEscapeInto(report.city, &out);
  out += "\", \"zones\": " + std::to_string(report.zones);

  out += ", \"disruptions\": [";
  for (size_t i = 0; i < report.disruptions.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"";
    JsonEscapeInto(report.disruptions[i], &out);
    out += "\"";
  }
  out += "]";

  out += ", \"before\": " + JsonSide(report.before);
  out += ", \"after\": " + JsonSide(report.after);

  out += ", \"migration\": [";
  for (size_t i = 0; i < 4; ++i) {
    if (i > 0) out += ", ";
    out += "[";
    for (size_t j = 0; j < 4; ++j) {
      if (j > 0) out += ", ";
      out += std::to_string(report.migration[i][j]);
    }
    out += "]";
  }
  out += "]";

  out += ", \"mac_delta_s\": [";
  for (size_t z = 0; z < report.mac_delta_s.size(); ++z) {
    if (z > 0) out += ", ";
    out += util::Format("%.6f", report.mac_delta_s[z]);
  }
  out += "]";

  out += util::Format(
      ", \"worst_zone\": %u, \"worst_mac_delta_s\": %.6f, "
      "\"mutation_seconds\": %.6f, \"mutation_spqs\": %llu}",
      report.worst.zone, report.worst.mac_delta_s, report.mutation_seconds,
      static_cast<unsigned long long>(report.mutation_spqs));
  return out;
}

namespace {

util::Status MissingField(const std::string& path) {
  return util::Status::InvalidArgument("equity report JSON: missing or "
                                       "non-numeric field '" +
                                       path + "'");
}

util::Status ReadNumber(const exp::JsonDoc& doc, const std::string& path,
                        double* out) {
  const exp::JsonScalar* scalar = doc.Find(path);
  if (scalar == nullptr || scalar->kind != exp::JsonKind::kNumber) {
    return MissingField(path);
  }
  *out = scalar->num;
  return util::Status::OK();
}

util::Status ReadSide(const exp::JsonDoc& doc, const std::string& prefix,
                      EquitySide* side) {
  struct {
    const char* key;
    double* field;
  } numbers[] = {
      {"fairness", &side->fairness},
      {"mean_acsd_s", &side->mean_acsd},
      {"mean_mac_s", &side->mean_mac},
      {"population_fairness", &side->population_fairness},
      {"vulnerable_fairness", &side->vulnerable_fairness},
  };
  for (auto& n : numbers) {
    auto st = ReadNumber(doc, prefix + "." + n.key, n.field);
    if (!st.ok()) return st;
  }
  for (size_t c = 0; c < 4; ++c) {
    double count = 0;
    auto st = ReadNumber(
        doc, prefix + util::Format(".class_counts[%zu]", c), &count);
    if (!st.ok()) return st;
    side->class_counts[c] = static_cast<uint32_t>(count);
  }
  return util::Status::OK();
}

}  // namespace

util::Result<EquityReport> ParseEquityReportJson(const std::string& text) {
  auto doc = exp::JsonDoc::Parse(text);
  if (!doc.ok()) return doc.status();
  const exp::JsonDoc& d = doc.value();

  EquityReport report;
  const exp::JsonScalar* scenario = d.Find("scenario");
  const exp::JsonScalar* city = d.Find("city");
  if (scenario == nullptr || scenario->kind != exp::JsonKind::kString ||
      city == nullptr || city->kind != exp::JsonKind::kString) {
    return util::Status::InvalidArgument(
        "equity report JSON: missing scenario/city");
  }
  report.scenario = scenario->str;
  report.city = city->str;

  double number = 0;
  if (auto st = ReadNumber(d, "zones", &number); !st.ok()) return st;
  report.zones = static_cast<uint32_t>(number);

  for (size_t i = 0;; ++i) {
    const exp::JsonScalar* spec = d.Find(util::Format("disruptions[%zu]", i));
    if (spec == nullptr) break;
    report.disruptions.push_back(spec->str);
  }

  if (auto st = ReadSide(d, "before", &report.before); !st.ok()) return st;
  if (auto st = ReadSide(d, "after", &report.after); !st.ok()) return st;

  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      // A migration cell may legitimately be absent only if the whole row
      // flattened away; require every cell (the writer always emits 16).
      auto st = ReadNumber(d, util::Format("migration[%zu][%zu]", i, j),
                           &number);
      if (!st.ok()) return st;
      report.migration[i][j] = static_cast<uint32_t>(number);
    }
  }

  report.mac_delta_s.resize(report.zones);
  for (size_t z = 0; z < report.zones; ++z) {
    auto st = ReadNumber(d, util::Format("mac_delta_s[%zu]", z), &number);
    if (!st.ok()) return st;
    report.mac_delta_s[z] = number;
  }

  if (auto st = ReadNumber(d, "worst_zone", &number); !st.ok()) return st;
  report.worst.zone = static_cast<uint32_t>(number);
  if (auto st = ReadNumber(d, "worst_mac_delta_s", &number); !st.ok()) {
    return st;
  }
  report.worst.mac_delta_s = number;
  if (auto st = ReadNumber(d, "mutation_seconds", &report.mutation_seconds);
      !st.ok()) {
    return st;
  }
  if (auto st = ReadNumber(d, "mutation_spqs", &number); !st.ok()) return st;
  report.mutation_spqs = static_cast<uint64_t>(number);
  return report;
}

}  // namespace staq::scenario
