// Pure timetable transforms — the semantic core of the disruption
// subsystem.
//
// Each transform maps one immutable gtfs::Feed to the disrupted feed a
// mutation installs, rebuilt through Feed::FromParts so the result carries
// the same validation and the same deterministic departure index as a feed
// loaded from the equivalently mutated GTFS files. That purity is what
// makes disruptions replicable: a record replayed against the same input
// feed produces the bit-identical output feed on every replica, and the
// serving tier's incremental patches are provably equal to a full rebuild
// from the transformed feed (the golden contract).
//
// Semantics:
//   * SuspendRoute drops every trip of the route (the route entity stays,
//     keeping ids dense and fares addressable for a later restore).
//   * CloseStop removes the stop's calls with ride-through: a trip calling
//     at the stop keeps running but skips it (the surrounding leg is merged,
//     times at the remaining calls unchanged). Trips left with fewer than
//     two calls are dropped. The Stop entity itself stays so stop ids keep
//     their meaning across the mutation.
//   * ScaleHeadway thins service: per selected route, trips are ordered by
//     (first departure, trip id) and only every factor-th one is kept —
//     factor 2 halves service, factor 3 keeps a third, and so on.
//   * SetFlatFare replaces the flat per-boarding fare of one route (or all
//     routes) — a pure fare shock; the timetable is untouched.
//
// Removed trips are reported by their *input* feed ids so the impact layer
// can seed its affected-zone screening on the old timetable.
#pragma once

#include <cstdint>
#include <vector>

#include "gtfs/feed.h"

namespace staq::scenario {

/// "Every route" selector for ScaleHeadway / SetFlatFare.
inline constexpr uint32_t kAllRoutes = gtfs::kInvalidId;

/// A transformed timetable plus what the transform removed (in input-feed
/// ids, for the affected-zone screening).
struct TransformResult {
  gtfs::Feed feed;
  /// Trips of the input feed that do not survive (suspended, thinned, or
  /// left with fewer than two calls by a stop closure).
  std::vector<gtfs::TripId> removed_trips;
  /// kCloseStop: the closed stop, else kInvalidId.
  gtfs::StopId closed_stop = gtfs::kInvalidId;
};

/// Drops every trip of `route`. InvalidArgument when the route does not
/// exist or the result would have no trips at all.
util::Result<TransformResult> SuspendRoute(const gtfs::Feed& feed,
                                           gtfs::RouteId route);

/// Removes `stop`'s calls with ride-through (see header comment).
/// InvalidArgument when the stop does not exist or closing it would empty
/// the timetable.
util::Result<TransformResult> CloseStop(const gtfs::Feed& feed,
                                        gtfs::StopId stop);

/// Keeps every factor-th trip of `route` (kAllRoutes = every route),
/// ordered per route by (first departure, trip id). factor must be >= 2.
util::Result<TransformResult> ScaleHeadway(const gtfs::Feed& feed,
                                           gtfs::RouteId route,
                                           uint32_t factor);

/// Sets the flat fare of `route` (kAllRoutes = every route) to `fare`.
util::Result<gtfs::Feed> SetFlatFare(const gtfs::Feed& feed,
                                     gtfs::RouteId route, double fare);

}  // namespace staq::scenario
