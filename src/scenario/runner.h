// Scenario-pack runner: applies disruption packs to a live AqServer and
// measures their equity impact.
//
// Each scenario runs against a *fresh* server built from the caller's
// CityFactory — scenarios are independent what-if branches, not a
// cumulative history — and produces one EquityReport:
//
//   1. answer one exact access query (the "before" side),
//   2. resolve and apply the scenario's disruptions in order, each an
//      incremental epoch on the live server,
//   3. answer the same query again (the "after" side),
//   4. compare (scenario/report.h).
//
// Queries are exact (full labeling) so the report measures the disruption,
// not SSR sampling noise, and the whole run is deterministic: the same
// pack over the same factory yields byte-identical reports.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "scenario/pack.h"
#include "scenario/report.h"
#include "serve/server.h"

namespace staq::scenario {

/// Builds the city a scenario runs against. Called once per scenario (the
/// runner needs a pristine copy each time); must be deterministic for
/// reports to be comparable.
using CityFactory = std::function<util::Result<synth::City>()>;

/// Knobs of one pack run.
struct RunOptions {
  gtfs::TimeInterval interval = gtfs::WeekdayAmPeak();
  synth::PoiCategory category = synth::PoiCategory::kSchool;
  core::CostKind cost = core::CostKind::kJourneyTime;
  uint64_t seed = 1;  // labeling seed (part of the label key)
  /// Server options (worker threads etc.); answers are thread-count
  /// independent, so this only affects wall clock.
  serve::AqServer::Options server;
};

/// Runs one scenario against a fresh server. Errors from the factory, a
/// disruption (e.g. an unresolvable selector), or a query propagate.
util::Result<EquityReport> RunScenario(const CityFactory& factory,
                                       const PackScenario& scenario,
                                       const RunOptions& options);

/// Runs every scenario of the pack in declaration order.
util::Result<std::vector<EquityReport>> RunPack(const CityFactory& factory,
                                                const ScenarioPack& pack,
                                                const RunOptions& options);

/// Writes `reports` under `dir`: one `report_<scenario>.json` each plus a
/// human-readable `reports.txt`. A failed write (including an injected
/// "scenario.pack.report_write" fault) returns a clean kIoError with the
/// directory untouched beyond the files already written.
util::Status WriteReports(const std::vector<EquityReport>& reports,
                          const std::string& dir);

}  // namespace staq::scenario
