#include "scenario/disruption.h"

#include <cctype>
#include <cstdlib>

#include "util/strings.h"

namespace staq::scenario {

namespace {

/// Strict non-negative integer parse: every character a digit, value fits
/// in uint32. The spec grammar has no signs, separators, or whitespace.
bool ParseU32(const std::string& text, uint32_t* out) {
  if (text.empty() || text.size() > 10) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (value > 0xffffffffull) return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

/// Strict double parse: the whole field must be consumed.
bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

util::Status Malformed(const std::string& spec, const std::string& why) {
  return util::Status::InvalidArgument("disruption spec '" + spec +
                                       "': " + why);
}

/// Parses the selector field shared by the route/stop-targeted kinds.
util::Status ParseSelector(const std::string& spec, const std::string& field,
                           bool allow_all, Disruption* d) {
  if (field == "busiest") {
    d->selector = TargetSelector::kBusiest;
    return util::Status::OK();
  }
  if (field == "all") {
    if (!allow_all) return Malformed(spec, "'all' is not valid here");
    d->selector = TargetSelector::kAll;
    return util::Status::OK();
  }
  if (ParseU32(field, &d->id)) {
    d->selector = TargetSelector::kId;
    return util::Status::OK();
  }
  return Malformed(spec, "bad selector '" + field +
                             "' (want an id, 'busiest'" +
                             (allow_all ? ", or 'all')" : ")"));
}

}  // namespace

util::Result<Disruption> ParseDisruptionSpec(const std::string& spec) {
  std::vector<std::string> fields = util::Split(spec, ':');
  Disruption d;
  d.spec = spec;
  const std::string& kind = fields[0];

  if (kind == "suspend_route" || kind == "close_stop") {
    if (fields.size() != 2) return Malformed(spec, "want <kind>:<selector>");
    d.kind = kind == "suspend_route" ? wal::MutationType::kSuspendRoute
                                     : wal::MutationType::kCloseStop;
    auto st = ParseSelector(spec, fields[1], /*allow_all=*/false, &d);
    if (!st.ok()) return st;
    return d;
  }

  if (kind == "scale_headway") {
    if (fields.size() != 3) {
      return Malformed(spec, "want scale_headway:<selector>:<factor>");
    }
    d.kind = wal::MutationType::kScaleHeadway;
    auto st = ParseSelector(spec, fields[1], /*allow_all=*/true, &d);
    if (!st.ok()) return st;
    if (!ParseU32(fields[2], &d.factor) || d.factor < 2) {
      return Malformed(spec, "factor must be an integer >= 2");
    }
    return d;
  }

  if (kind == "set_fare") {
    if (fields.size() != 3) {
      return Malformed(spec, "want set_fare:<selector>:<fare>");
    }
    d.kind = wal::MutationType::kSetFare;
    auto st = ParseSelector(spec, fields[1], /*allow_all=*/true, &d);
    if (!st.ok()) return st;
    if (!ParseDouble(fields[2], &d.value) || d.value < 0.0) {
      return Malformed(spec, "fare must be a non-negative number");
    }
    return d;
  }

  if (kind == "scale_walk") {
    if (fields.size() != 2) return Malformed(spec, "want scale_walk:<factor>");
    d.kind = wal::MutationType::kScaleWalkSpeed;
    d.selector = TargetSelector::kAll;  // walk speed has no target
    if (!ParseDouble(fields[1], &d.value) || !(d.value > 0.0)) {
      return Malformed(spec, "walk factor must be a positive number");
    }
    return d;
  }

  return Malformed(spec, "unknown kind '" + kind + "'");
}

util::Result<uint32_t> BusiestRoute(const gtfs::Feed& feed) {
  if (feed.num_routes() == 0) {
    return util::Status::FailedPrecondition("feed has no routes");
  }
  std::vector<uint32_t> trips(feed.num_routes(), 0);
  for (const gtfs::Trip& trip : feed.trips()) ++trips[trip.route];
  uint32_t best = 0;
  for (uint32_t r = 1; r < trips.size(); ++r) {
    if (trips[r] > trips[best]) best = r;
  }
  return best;
}

util::Result<uint32_t> BusiestStop(const gtfs::Feed& feed) {
  if (feed.num_stops() == 0) {
    return util::Status::FailedPrecondition("feed has no stops");
  }
  // Count departure events: every call except a trip's final one (the
  // router can board there; a terminus-only stop is not "busy").
  std::vector<uint32_t> departures(feed.num_stops(), 0);
  for (const gtfs::Trip& trip : feed.trips()) {
    const gtfs::StopTime* begin = feed.trip_begin(trip.id);
    for (uint32_t i = 0; i + 1 < trip.num_stop_times; ++i) {
      ++departures[begin[i].stop];
    }
  }
  uint32_t best = 0;
  for (uint32_t s = 1; s < departures.size(); ++s) {
    if (departures[s] > departures[best]) best = s;
  }
  return best;
}

util::Result<wal::MutationRecord> ResolveDisruption(const Disruption& d,
                                                    const gtfs::Feed& feed) {
  // Walk scaling has no target to resolve.
  if (d.kind == wal::MutationType::kScaleWalkSpeed) {
    return wal::MutationRecord::ScaleWalkSpeed(0, d.value);
  }

  const bool stop_target = d.kind == wal::MutationType::kCloseStop;
  uint32_t target = wal::kAllTargets;
  switch (d.selector) {
    case TargetSelector::kId: {
      const size_t limit = stop_target ? feed.num_stops() : feed.num_routes();
      if (d.id >= limit) {
        return util::Status::NotFound(
            util::Format("disruption spec '%s': %s %u not in feed (%zu %ss)",
                         d.spec.c_str(), stop_target ? "stop" : "route", d.id,
                         limit, stop_target ? "stop" : "route"));
      }
      target = d.id;
      break;
    }
    case TargetSelector::kBusiest: {
      auto resolved = stop_target ? BusiestStop(feed) : BusiestRoute(feed);
      if (!resolved.ok()) return resolved.status();
      target = resolved.value();
      break;
    }
    case TargetSelector::kAll:
      target = wal::kAllTargets;
      break;
  }

  switch (d.kind) {
    case wal::MutationType::kSuspendRoute:
      return wal::MutationRecord::SuspendRoute(0, target);
    case wal::MutationType::kCloseStop:
      return wal::MutationRecord::CloseStop(0, target);
    case wal::MutationType::kScaleHeadway:
      return wal::MutationRecord::ScaleHeadway(0, target, d.factor);
    case wal::MutationType::kSetFare:
      return wal::MutationRecord::SetFare(0, target, d.value);
    default:
      return util::Status::Internal("unreachable disruption kind");
  }
}

}  // namespace staq::scenario
