// Before/after equity impact reports for disruption scenarios.
//
// A scenario run answers the planner's question "who loses access when
// this happens?": the runner takes one exact access query before the
// disruptions and one after, and this module turns the two answers into an
// equity report — per-zone MAC deltas, the summary fairness indices
// (Jain, population-weighted, vulnerability-weighted), mean ACSD, and the
// four-class accessibility migration matrix of paper §III-D (how many
// zones moved from class i to class j).
//
// Formatting is deterministic: fixed printf formats, zones in id order,
// doubles emitted with %.6f — so golden tests and the CLI smoke fixture
// can compare report text verbatim.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/access_query.h"
#include "util/status.h"

namespace staq::scenario {

/// Summary of one side (before or after) of a scenario run.
struct EquitySide {
  double mean_mac = 0.0;
  double mean_acsd = 0.0;
  double fairness = 0.0;             // Jain over MAC
  double population_fairness = 0.0;  // population-weighted
  double vulnerable_fairness = 0.0;  // population x vulnerability weighted
  /// Zones per AccessClass, indexed by the enum value.
  std::array<uint32_t, 4> class_counts{};
};

/// The zone with the largest access loss.
struct WorstZone {
  uint32_t zone = 0;
  double mac_delta_s = 0.0;  // after - before, seconds
};

/// One scenario's before/after comparison.
struct EquityReport {
  std::string scenario;                   // pack scenario name
  std::string city;                       // city/spec name
  std::vector<std::string> disruptions;   // resolved record one-liners
  uint32_t zones = 0;
  EquitySide before;
  EquitySide after;
  /// Per-zone MAC delta (after - before), seconds; zone id order.
  std::vector<double> mac_delta_s;
  /// migration[i][j] = zones classified i before and j after.
  std::array<std::array<uint32_t, 4>, 4> migration{};
  WorstZone worst;
  double mutation_seconds = 0.0;  // total incremental-apply latency
  uint64_t mutation_spqs = 0;     // SPQs spent patching label states
};

/// Builds the comparison from two exact query answers over the same city.
/// `before`/`after` must carry per-zone mac/acsd/classes of equal size.
EquityReport CompareAccess(const std::string& scenario_name,
                           const std::string& city_name,
                           const std::vector<synth::Zone>& zones,
                           const core::AccessQueryResult& before,
                           const core::AccessQueryResult& after);

/// Human-readable report (fixed-width table + summary lines).
std::string FormatEquityReport(const EquityReport& report);

/// Deterministic JSON document for tooling (sorted keys, %.6f doubles).
std::string EquityReportJson(const EquityReport& report);

/// Parses a document produced by EquityReportJson back into a report —
/// the `staq_cli scenario report` path re-rendering a saved run.
/// kInvalidArgument on a malformed or incomplete document.
util::Result<EquityReport> ParseEquityReportJson(const std::string& text);

}  // namespace staq::scenario
