#include "serve/server.h"

#include <exception>
#include <thread>
#include <utility>

#include "core/columnar.h"
#include "core/pipeline.h"
#include "store/snapshot.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "wal/wal.h"

namespace staq::serve {

namespace {

size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 2;
}

/// Degrades an escaped exception into the clean Status the serve API
/// promises (failpoint throws, bad_alloc, anything the core engines
/// raise). The server must never hang a waiter or kill a worker over one.
util::Status StatusFromException(const char* where) {
  try {
    throw;
  } catch (const std::exception& e) {
    return util::Status::Internal(std::string(where) + " failed: " + e.what());
  } catch (...) {
    return util::Status::Internal(std::string(where) +
                                  " failed: unknown exception");
  }
}

/// Builds the server's ScenarioStore, preferring a snapshot warm start.
/// Both branches return a prvalue, so guaranteed copy elision constructs
/// the non-movable store directly in AqServer::store_ — no move happens.
ScenarioStore MakeStore(synth::City&& city, const gtfs::TimeInterval& interval,
                        const AqServer::Options& options, bool* warm_started) {
  if (!options.warm_start_path.empty()) {
    auto restored = store::LoadSnapshot(options.warm_start_path);
    if (restored.ok()) {
      *warm_started = true;
      return ScenarioStore(std::move(restored).value(), options.scenario);
    }
    util::LogWarning("warm start from '" + options.warm_start_path +
                     "' failed (" + restored.status().ToString() +
                     "); falling back to cold build");
  }
  return ScenarioStore(std::move(city), interval, options.scenario);
}

}  // namespace

util::Result<core::AccessQueryResult> AqTicket::Get() {
  if (!valid() || !future_.valid()) {
    return util::Status::FailedPrecondition(
        "ticket holds no pending result (empty or already consumed)");
  }
  return future_.get();
}

bool AqTicket::TryCancel() {
  if (!valid() || !handle_.valid()) return false;
  // Fault site: cancellation failing *before* the handle state flips. A
  // throw degrades into "lost the race" — the worker still owns the
  // request and will fulfil the promise, so nobody hangs.
  try {
    STAQ_FAILPOINT("serve.ticket.cancel");
  } catch (...) {
    return false;
  }
  if (!handle_.Cancel()) return false;
  // Cancel succeeded: the worker will never touch this request, so the
  // ticket owns the promise exclusively.
  promise_->set_value(util::Status::Cancelled("request withdrawn by client"));
  server_->cancelled_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

AqServer::AqServer(synth::City city, const gtfs::TimeInterval& interval,
                   Options options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : util::Clock::Real()),
      store_(MakeStore(std::move(city), interval, options, &warm_started_)),
      cache_([&options, this] {
        // The result cache ages on the server's clock unless the caller
        // wired a dedicated one.
        ResultCache::Options cache_options = options.cache;
        if (cache_options.clock == nullptr) cache_options.clock = clock_;
        return cache_options;
      }()),
      pool_(ResolveThreads(options.num_threads)) {
  if (options_.perturb.has_value()) {
    pool_.EnablePerturbation(*options_.perturb);
  }
}

AqServer::AqServer(synth::City city, const gtfs::TimeInterval& interval)
    : AqServer(std::move(city), interval, Options()) {}

AqServer::~AqServer() = default;

void AqServer::NoteMutation(const ScenarioStore::MutationReport& report) {
  mutations_.fetch_add(1, std::memory_order_relaxed);
  states_patched_.fetch_add(report.states_patched, std::memory_order_relaxed);
  zones_relabeled_.fetch_add(report.zones_relabeled,
                             std::memory_order_relaxed);
  patch_spqs_.fetch_add(report.spqs, std::memory_order_relaxed);
}

util::Status AqServer::LogMutation(const wal::MutationRecord& record) {
  if (wal_ == nullptr) return util::Status::OK();
  return wal_->Append(record);
}

util::Status AqServer::AttachWal(wal::MutationWal* wal) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (wal != nullptr && wal->last_sequence() != sequence()) {
    return util::Status::FailedPrecondition(util::Format(
        "WAL is at sequence %llu but the server is at %llu; replay the log "
        "before attaching",
        static_cast<unsigned long long>(wal->last_sequence()),
        static_cast<unsigned long long>(sequence())));
  }
  wal_ = wal;
  return util::Status::OK();
}

util::Result<ScenarioStore::MutationReport> AqServer::AddPoi(
    synth::PoiCategory category, const geo::Point& position) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  ScenarioStore::MutationReport report;
  try {
    report = store_.AddPoi(category, position);
  } catch (...) {
    // The store installs the next epoch only as its last step, so an
    // aborted patch/relabel leaves the previous scenario fully intact.
    return StatusFromException("AddPoi mutation");
  }
  NoteMutation(report);
  STAQ_RETURN_NOT_OK(LogMutation(wal::MutationRecord::AddPoi(
      sequence(), category, position, report.poi_id)));
  return report;
}

util::Result<ScenarioStore::MutationReport> AqServer::RemovePoi(
    uint32_t poi_id) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  util::Result<ScenarioStore::MutationReport> report =
      util::Status::Internal("unreachable");
  try {
    report = store_.RemovePoi(poi_id);
  } catch (...) {
    return StatusFromException("RemovePoi mutation");
  }
  if (!report.ok()) return report;
  NoteMutation(report.value());
  STAQ_RETURN_NOT_OK(
      LogMutation(wal::MutationRecord::RemovePoi(sequence(), poi_id)));
  return report;
}

util::Result<ScenarioStore::MutationReport> AqServer::SetInterval(
    const gtfs::TimeInterval& interval) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  ScenarioStore::MutationReport report;
  try {
    report = store_.SetInterval(interval);
  } catch (...) {
    return StatusFromException("SetInterval mutation");
  }
  NoteMutation(report);
  // Mutation discipline (see LabelingEngine::InvalidateAccessStopCache):
  // worker engines drop their cached access stops alongside the store's
  // writer engine. Bumping the epoch invalidates lazily on the next
  // AcquireContext, which also covers contexts leased while this mutation
  // runs — a free-list sweep would miss those.
  stop_cache_epoch_.fetch_add(1, std::memory_order_release);
  STAQ_RETURN_NOT_OK(
      LogMutation(wal::MutationRecord::SetInterval(sequence(), interval)));
  return report;
}

util::Result<ScenarioStore::MutationReport> AqServer::SuspendRoute(
    uint32_t route) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  util::Result<ScenarioStore::MutationReport> report =
      util::Status::Internal("unreachable");
  try {
    report = store_.SuspendRoute(route);
  } catch (...) {
    return StatusFromException("SuspendRoute mutation");
  }
  if (!report.ok()) return report;
  NoteMutation(report.value());
  STAQ_RETURN_NOT_OK(
      LogMutation(wal::MutationRecord::SuspendRoute(sequence(), route)));
  return report;
}

util::Result<ScenarioStore::MutationReport> AqServer::CloseStop(
    uint32_t stop) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  util::Result<ScenarioStore::MutationReport> report =
      util::Status::Internal("unreachable");
  try {
    report = store_.CloseStop(stop);
  } catch (...) {
    return StatusFromException("CloseStop mutation");
  }
  if (!report.ok()) return report;
  NoteMutation(report.value());
  STAQ_RETURN_NOT_OK(
      LogMutation(wal::MutationRecord::CloseStop(sequence(), stop)));
  return report;
}

util::Result<ScenarioStore::MutationReport> AqServer::ScaleHeadway(
    uint32_t route, uint32_t factor) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  util::Result<ScenarioStore::MutationReport> report =
      util::Status::Internal("unreachable");
  try {
    report = store_.ScaleHeadway(route, factor);
  } catch (...) {
    return StatusFromException("ScaleHeadway mutation");
  }
  if (!report.ok()) return report;
  NoteMutation(report.value());
  STAQ_RETURN_NOT_OK(LogMutation(
      wal::MutationRecord::ScaleHeadway(sequence(), route, factor)));
  return report;
}

util::Result<ScenarioStore::MutationReport> AqServer::SetFare(uint32_t route,
                                                              double fare) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  util::Result<ScenarioStore::MutationReport> report =
      util::Status::Internal("unreachable");
  try {
    report = store_.SetFare(route, fare);
  } catch (...) {
    return StatusFromException("SetFare mutation");
  }
  if (!report.ok()) return report;
  NoteMutation(report.value());
  STAQ_RETURN_NOT_OK(
      LogMutation(wal::MutationRecord::SetFare(sequence(), route, fare)));
  return report;
}

util::Result<ScenarioStore::MutationReport> AqServer::ScaleWalkSpeed(
    double factor) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  util::Result<ScenarioStore::MutationReport> report =
      util::Status::Internal("unreachable");
  try {
    report = store_.ScaleWalkSpeed(factor);
  } catch (...) {
    return StatusFromException("ScaleWalkSpeed mutation");
  }
  if (!report.ok()) return report;
  NoteMutation(report.value());
  STAQ_RETURN_NOT_OK(
      LogMutation(wal::MutationRecord::ScaleWalkSpeed(sequence(), factor)));
  return report;
}

util::Result<ScenarioStore::MutationReport> AqServer::ApplyMutation(
    const wal::MutationRecord& record) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (record.sequence != sequence() + 1) {
    return util::Status::Aborted(util::Format(
        "cannot replay record #%llu at sequence %llu: history must stay "
        "gap-free",
        static_cast<unsigned long long>(record.sequence),
        static_cast<unsigned long long>(sequence())));
  }
  ScenarioStore::MutationReport report;
  try {
    switch (record.type) {
      case wal::MutationType::kAddPoi: {
        // The id drives the POI's RNG streams: a different id means this
        // replica's answers would diverge from the primary's. Checked
        // against the store's cursor BEFORE applying, so the abort leaves
        // the last consistent epoch serving instead of installing a fork.
        const uint32_t local_id = store_.next_poi_id();
        if (local_id != record.poi_id) {
          return util::Status::Aborted(util::Format(
              "replayed AddPoi #%llu would assign POI id %u where the log "
              "records %u — replica diverged; nothing was applied",
              static_cast<unsigned long long>(record.sequence), local_id,
              record.poi_id));
        }
        report = store_.AddPoi(record.category, record.position);
        break;
      }
      case wal::MutationType::kRemovePoi: {
        auto result = store_.RemovePoi(record.poi_id);
        if (!result.ok()) return result;
        report = result.value();
        break;
      }
      case wal::MutationType::kSetInterval: {
        report = store_.SetInterval(record.interval);
        stop_cache_epoch_.fetch_add(1, std::memory_order_release);
        break;
      }
      // Disruption replay: the records carry resolved ids, and every
      // transform plus the affected-zone screen is a pure function of the
      // current feed, so replicas install bit-identical epochs.
      case wal::MutationType::kSuspendRoute: {
        auto result = store_.SuspendRoute(record.target);
        if (!result.ok()) return result;
        report = result.value();
        break;
      }
      case wal::MutationType::kCloseStop: {
        auto result = store_.CloseStop(record.target);
        if (!result.ok()) return result;
        report = result.value();
        break;
      }
      case wal::MutationType::kScaleHeadway: {
        auto result = store_.ScaleHeadway(record.target, record.factor);
        if (!result.ok()) return result;
        report = result.value();
        break;
      }
      case wal::MutationType::kSetFare: {
        auto result = store_.SetFare(record.target, record.value);
        if (!result.ok()) return result;
        report = result.value();
        break;
      }
      case wal::MutationType::kScaleWalkSpeed: {
        auto result = store_.ScaleWalkSpeed(record.value);
        if (!result.ok()) return result;
        report = result.value();
        break;
      }
    }
  } catch (...) {
    return StatusFromException("mutation replay");
  }
  NoteMutation(report);
  return report;
}

std::unique_ptr<AqServer::WorkerContext> AqServer::AcquireContext(
    const Scenario& scenario) {
  const uint64_t epoch = stop_cache_epoch_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(context_mu_);
    while (!free_contexts_.empty()) {
      auto context = std::move(free_contexts_.back());
      free_contexts_.pop_back();
      if (context->network_version != scenario.network_version()) {
        // Built for a different network — its router scans the wrong feed
        // or the wrong walk parameters. Destroy it and keep looking.
        continue;
      }
      if (context->stop_epoch != epoch) {
        context->engine.InvalidateAccessStopCache();
        context->stop_epoch = epoch;
      }
      return context;
    }
  }
  auto context = std::make_unique<WorkerContext>(scenario.city_ptr(),
                                                 scenario.router_options(),
                                                 scenario.network_version());
  context->stop_epoch = epoch;
  return context;
}

void AqServer::ReleaseContext(std::unique_ptr<WorkerContext> context) {
  std::lock_guard<std::mutex> lock(context_mu_);
  free_contexts_.push_back(std::move(context));
}

AqTicket AqServer::Submit(const AqRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);

  AqTicket ticket;
  ticket.server_ = this;
  ticket.promise_ = std::make_shared<AqTicket::Promise>();
  ticket.future_ = ticket.promise_->get_future();

  if (pool_.PendingTasks() >= options_.max_pending) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    ticket.promise_->set_value(util::Status::ResourceExhausted(
        "serve queue full (" + std::to_string(options_.max_pending) +
        " pending)"));
    return ticket;
  }

  if (ShouldShed()) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    ticket.promise_->set_value(util::Status::Unavailable(
        "request shed: estimated queue delay exceeds the admission budget"));
    return ticket;
  }

  // The snapshot is captured at admission: the request answers against the
  // epoch it was accepted under, whatever mutations land meanwhile.
  auto snapshot = store_.Acquire();
  ticket.epoch_ = snapshot->epoch();
  auto submitted_at = clock_->Now();
  auto promise = ticket.promise_;
  try {
    ticket.handle_ = pool_.SubmitHandle(
        [this, request, submitted_at, snapshot = std::move(snapshot),
         promise]() { RunRequest(request, submitted_at, snapshot, promise); });
  } catch (...) {
    // Enqueue failed (injected fault): nothing reached the pool, so the
    // ticket owns the promise — resolve it instead of hanging Get().
    failed_.fetch_add(1, std::memory_order_relaxed);
    promise->set_value(StatusFromException("submission"));
  }
  return ticket;
}

util::Result<core::AccessQueryResult> AqServer::Query(
    const AqRequest& request) {
  return Submit(request).Get();
}

bool AqServer::ShouldShed() const {
  if (options_.max_queue_delay_s <= 0.0) return false;
  const double ewma = service_ewma_s_.load(std::memory_order_relaxed);
  if (ewma <= 0.0) return false;  // no completed task yet: nothing to estimate
  const double workers = static_cast<double>(pool_.num_threads());
  const double estimated_delay_s =
      static_cast<double>(pool_.PendingTasks()) * ewma / workers;
  return estimated_delay_s > options_.max_queue_delay_s;
}

void AqServer::NoteServiceTime(double seconds) {
  constexpr double kAlpha = 0.2;  // the last ~5 tasks dominate the estimate
  const double prev = service_ewma_s_.load(std::memory_order_relaxed);
  const double next =
      prev <= 0.0 ? seconds : (1.0 - kAlpha) * prev + kAlpha * seconds;
  service_ewma_s_.store(next, std::memory_order_relaxed);
}

std::vector<AqTicket> AqServer::SubmitBatch(const AqBatchRequest& batch) {
  std::vector<AqRequest> derived = ExpandBatch(batch);
  std::vector<AqTicket> tickets(derived.size());
  if (derived.empty()) return tickets;
  submitted_.fetch_add(derived.size(), std::memory_order_relaxed);
  for (AqTicket& ticket : tickets) {
    ticket.server_ = this;
    ticket.promise_ = std::make_shared<AqTicket::Promise>();
    ticket.future_ = ticket.promise_->get_future();
  }

  // Admission is all-or-nothing: a batch is one burst of work, so either
  // the whole sweep is accepted or the caller gets a uniform backpressure
  // signal to retry against.
  if (pool_.PendingTasks() >= options_.max_pending) {
    rejected_.fetch_add(derived.size(), std::memory_order_relaxed);
    for (AqTicket& ticket : tickets) {
      ticket.promise_->set_value(util::Status::ResourceExhausted(
          "serve queue full (" + std::to_string(options_.max_pending) +
          " pending)"));
    }
    return tickets;
  }
  if (ShouldShed()) {
    shed_.fetch_add(derived.size(), std::memory_order_relaxed);
    for (AqTicket& ticket : tickets) {
      ticket.promise_->set_value(util::Status::Unavailable(
          "batch shed: estimated queue delay exceeds the admission budget"));
    }
    return tickets;
  }

  auto snapshot = store_.Acquire();
  auto submitted_at = clock_->Now();
  for (AqTicket& ticket : tickets) ticket.epoch_ = snapshot->epoch();

  if (!batch.request.options.exact) {
    // SSR members train per-member models and share no labeling pass:
    // each derived request runs as an ordinary individual task (and keeps
    // an individual cancellation handle).
    for (size_t i = 0; i < derived.size(); ++i) {
      auto promise = tickets[i].promise_;
      try {
        tickets[i].handle_ = pool_.SubmitHandle(
            [this, request = derived[i], submitted_at, snapshot, promise]() {
              RunRequest(request, submitted_at, snapshot, promise);
            });
      } catch (...) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        promise->set_value(StatusFromException("submission"));
      }
    }
    return tickets;
  }

  // Exact members: ExpandBatch orders category-major then seed, so each
  // (category, seed) group — the unit that shares one labeling pass — is a
  // contiguous run. One worker task per group.
  size_t begin = 0;
  while (begin < derived.size()) {
    size_t end = begin + 1;
    while (end < derived.size() &&
           derived[end].category == derived[begin].category &&
           derived[end].options.seed == derived[begin].options.seed) {
      ++end;
    }
    std::vector<AqRequest> group(derived.begin() + begin,
                                 derived.begin() + end);
    std::vector<std::shared_ptr<AqTicket::Promise>> group_promises;
    group_promises.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      group_promises.push_back(tickets[i].promise_);
    }
    try {
      pool_.SubmitHandle([this, group = std::move(group), submitted_at,
                          snapshot, promises = std::move(group_promises)]() {
        RunBatchGroup(group, submitted_at, snapshot, promises);
      });
    } catch (...) {
      util::Status status = StatusFromException("submission");
      for (size_t i = begin; i < end; ++i) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        tickets[i].promise_->set_value(status);
      }
    }
    begin = end;
  }
  return tickets;
}

std::vector<util::Result<core::AccessQueryResult>> AqServer::QueryBatch(
    const AqBatchRequest& batch) {
  std::vector<AqTicket> tickets = SubmitBatch(batch);
  std::vector<util::Result<core::AccessQueryResult>> out;
  out.reserve(tickets.size());
  for (AqTicket& ticket : tickets) out.push_back(ticket.Get());
  return out;
}

util::Result<core::AccessQueryResult> AqServer::QueryUncached(
    const AqRequest& request) {
  auto snapshot = store_.Acquire();
  return QueryUncachedOn(*snapshot, request);
}

util::Result<core::AccessQueryResult> AqServer::QueryUncachedOn(
    const Scenario& scenario, const AqRequest& request) {
  auto context = AcquireContext(scenario);
  util::Result<core::AccessQueryResult> result =
      util::Status::Internal("unreachable");
  try {
    result = Execute(request, scenario, context.get(),
                     /*use_caches=*/false);
  } catch (...) {
    // The context may hold a half-built engine state; drop it rather than
    // returning it to the pool (a fresh one is built on demand).
    return StatusFromException("uncached query");
  }
  ReleaseContext(std::move(context));
  return result;
}

void AqServer::RunRequest(const AqRequest& request,
                          util::Clock::TimePoint submitted_at,
                          std::shared_ptr<const Scenario> snapshot,
                          const std::shared_ptr<AqTicket::Promise>& promise) {
  util::Stopwatch service_watch(clock_);
  util::Result<core::AccessQueryResult> result =
      util::Status::Internal("unreachable");
  try {
    if (request.deadline_s > 0.0 &&
        clock_->SecondsSince(submitted_at) > request.deadline_s) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      promise->set_value(util::Status::DeadlineExceeded(
          "deadline expired before execution started"));
      return;
    }

    auto context = AcquireContext(*snapshot);
    try {
      result = Execute(request, *snapshot, context.get(),
                       /*use_caches=*/true);
      ReleaseContext(std::move(context));
    } catch (...) {
      // Leave `context` to die (possibly half-built engine state) and
      // degrade into a clean status; the promise below must always be
      // fulfilled or Get() would hang forever.
      result = StatusFromException("query execution");
    }
  } catch (...) {
    result = StatusFromException("query execution");
  }

  if (result.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  // Deadline-expired tasks returned above: their near-zero "service" time
  // would drag the shedding estimate toward zero exactly when the server
  // is most overloaded.
  NoteServiceTime(service_watch.ElapsedSeconds());
  promise->set_value(std::move(result));
}

void AqServer::RunBatchGroup(
    const std::vector<AqRequest>& requests,
    util::Clock::TimePoint submitted_at,
    std::shared_ptr<const Scenario> snapshot,
    const std::vector<std::shared_ptr<AqTicket::Promise>>& promises) {
  util::Stopwatch service_watch(clock_);
  std::vector<bool> fulfilled(requests.size(), false);
  // Resolves every still-pending member with one status; also the
  // degradation path for exceptions, so no waiter ever hangs.
  auto fail_remaining = [&](const util::Status& status,
                            std::atomic<uint64_t>* counter) {
    for (size_t i = 0; i < requests.size(); ++i) {
      if (fulfilled[i]) continue;
      counter->fetch_add(1, std::memory_order_relaxed);
      fulfilled[i] = true;
      promises[i]->set_value(status);
    }
  };

  try {
    // ExpandBatch copies the template's deadline into every member.
    const AqRequest& head = requests.front();
    if (head.deadline_s > 0.0 &&
        clock_->SecondsSince(submitted_at) > head.deadline_s) {
      fail_remaining(util::Status::DeadlineExceeded(
                         "deadline expired before execution started"),
                     &deadline_exceeded_);
      return;
    }

    util::Stopwatch watch(clock_);
    const std::string epoch_prefix =
        "e=" + std::to_string(snapshot->epoch()) + '|';
    std::vector<std::string> keys(requests.size());
    std::vector<size_t> missing;
    for (size_t i = 0; i < requests.size(); ++i) {
      keys[i] = epoch_prefix + CanonicalRequestKey(requests[i]);
      if (auto cached = cache_.Get(keys[i])) {
        core::AccessQueryResult result = *cached;
        result.elapsed_s = watch.ElapsedSeconds();
        completed_.fetch_add(1, std::memory_order_relaxed);
        fulfilled[i] = true;
        promises[i]->set_value(std::move(result));
      } else {
        missing.push_back(i);
      }
    }

    if (!missing.empty()) {
      auto context = AcquireContext(*snapshot);
      try {
        const synth::City& city = snapshot->base_city();
        std::vector<synth::Poi> pois = snapshot->PoisOf(head.category);
        if (pois.empty()) {
          fail_remaining(util::Status::NotFound(
                             "no POIs of requested category in scenario"),
                         &failed_);
        } else {
          // One shared labeling pass for the whole group, mirroring
          // Scenario::BuildLabelState step for step (edit-stable TODAM
          // from frozen base-city norms), so every derived answer is
          // bit-identical to the single-request path. Journeys do not
          // depend on the cost definition, so the JT capture sweep stands
          // in for each member's own sweep — including its SPQ count.
          std::vector<double> zone_norm = core::StableGravityNormsColumnar(
              city.zones, city.PoisOf(head.category),
              head.options.gravity.decay_scale_m);
          core::TodamBuilder builder(city.zones, pois, snapshot->interval(),
                                     head.options.gravity);
          core::Todam todam =
              builder.BuildGravityStable(head.options.seed, zone_norm);
          const uint64_t spqs_before = context->engine.spq_count();
          core::TripCostColumns columns;
          for (uint32_t z = 0; z < city.zones.size(); ++z) {
            context->engine.CaptureZoneCosts(todam, z, pois,
                                             snapshot->interval().day,
                                             &columns);
          }
          const uint64_t pass_spqs =
              context->engine.spq_count() - spqs_before;
          exact_state_builds_.fetch_add(1, std::memory_order_relaxed);

          std::vector<double> member_costs;
          for (size_t i : missing) {
            const core::CostMember member{requests[i].options.cost,
                                          requests[i].options.gac};
            core::AccessQueryResult result;
            result.gravity_trips = todam.num_trips();
            result.spqs = pass_spqs;
            core::MemberCostColumn(columns, member, &member_costs);
            std::vector<core::ZoneLabel> labels =
                core::AggregateZoneLabels(columns, member_costs);
            result.mac.resize(labels.size());
            result.acsd.resize(labels.size());
            for (size_t z = 0; z < labels.size(); ++z) {
              result.mac[z] = labels[z].mac;
              result.acsd[z] = labels[z].acsd;
            }
            core::FinalizeAccessQueryResultColumnar(city.zones, &result);
            result.elapsed_s = watch.ElapsedSeconds();
            try {
              cache_.Put(keys[i], std::make_shared<const
                                      core::AccessQueryResult>(result));
            } catch (...) {
              // A failed insert costs a future hit, never the answer.
            }
            completed_.fetch_add(1, std::memory_order_relaxed);
            fulfilled[i] = true;
            promises[i]->set_value(std::move(result));
          }
        }
        ReleaseContext(std::move(context));
      } catch (...) {
        // Drop the possibly half-built context; resolve the rest cleanly.
        fail_remaining(StatusFromException("batch execution"), &failed_);
      }
    }
  } catch (...) {
    fail_remaining(StatusFromException("batch execution"), &failed_);
  }
  NoteServiceTime(service_watch.ElapsedSeconds());
}

util::Result<core::AccessQueryResult> AqServer::Execute(
    const AqRequest& request, const Scenario& scenario, WorkerContext* context,
    bool use_caches) {
  util::Stopwatch watch(clock_);

  std::string cache_key;
  if (use_caches) {
    cache_key = "e=" + std::to_string(scenario.epoch()) + '|' +
                CanonicalRequestKey(request);
    if (auto cached = cache_.Get(cache_key)) {
      core::AccessQueryResult result = *cached;
      result.elapsed_s = watch.ElapsedSeconds();
      return result;
    }
  }

  std::vector<synth::Poi> pois = scenario.PoisOf(request.category);
  if (pois.empty()) {
    return util::Status::NotFound("no POIs of requested category in scenario");
  }

  const synth::City& city = scenario.base_city();
  core::AccessQueryResult result;
  if (request.options.exact) {
    LabelKey key = LabelKeyFor(request);
    std::shared_ptr<const ExactLabelState> state;
    if (use_caches) {
      bool built = false;
      state = scenario.GetOrBuildLabelState(key, &context->engine, &built);
      if (built) exact_state_builds_.fetch_add(1, std::memory_order_relaxed);
    } else {
      state = scenario.BuildLabelState(key, &context->engine);
      exact_state_builds_.fetch_add(1, std::memory_order_relaxed);
    }
    result.gravity_trips = state->todam.num_trips();
    result.spqs = state->build_spqs;
    result.mac.resize(state->labels.size());
    result.acsd.resize(state->labels.size());
    for (size_t z = 0; z < state->labels.size(); ++z) {
      result.mac[z] = state->labels[z].mac;
      result.acsd[z] = state->labels[z].acsd;
    }
  } else {
    // SSR path: the TODAM uses the same edit-stable construction as the
    // exact path, so SSR answers are deterministic functions of the
    // scenario (cacheable per epoch) and comparable across epochs.
    std::vector<double> zone_norm = core::StableGravityNorms(
        city.zones, city.PoisOf(request.category),
        request.options.gravity.decay_scale_m);
    core::TodamBuilder builder(city.zones, pois, scenario.interval(),
                               request.options.gravity);
    core::Todam todam =
        builder.BuildGravityStable(request.options.seed, zone_norm);
    result.gravity_trips = todam.num_trips();

    core::PipelineConfig config;
    config.beta = request.options.beta;
    config.model = request.options.model;
    config.cost = request.options.cost;
    config.gac = request.options.gac;
    config.seed = request.options.seed;
    // Training parallelism is a server tuning knob, not part of the query
    // (results are bit-identical for any value, so it is not cache-keyed).
    config.ml_threads = options_.ml_threads;
    auto run = core::RunSsr(city, *scenario.offline().features,
                            &context->router, pois, todam,
                            scenario.interval().day, config);
    if (!run.ok()) return run.status();
    result.mac = std::move(run.value().mac);
    result.acsd = std::move(run.value().acsd);
    result.spqs = run.value().spqs;
  }

  core::FinalizeAccessQueryResult(city.zones, &result);
  result.elapsed_s = watch.ElapsedSeconds();

  if (use_caches) {
    try {
      cache_.Put(cache_key,
                 std::make_shared<const core::AccessQueryResult>(result));
    } catch (...) {
      // A failed insert (injected fault) costs a future cache hit, never
      // the already-computed answer.
    }
  }
  return result;
}

ServerStats AqServer::stats() const {
  ServerStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.cache_evictions = cache_.evictions();
  stats.cache_expired = cache_.expired();
  stats.exact_state_builds =
      exact_state_builds_.load(std::memory_order_relaxed);
  stats.mutations = mutations_.load(std::memory_order_relaxed);
  stats.states_patched = states_patched_.load(std::memory_order_relaxed);
  stats.zones_relabeled = zones_relabeled_.load(std::memory_order_relaxed);
  stats.patch_spqs = patch_spqs_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace staq::serve
