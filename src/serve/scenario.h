// Epoch-versioned city scenarios with incremental relabeling.
//
// A Scenario is an immutable snapshot of one city configuration: the POI
// set, the analysis interval, and the interval's offline structures
// (isochrones, hop trees, feature extractor). Scenarios are published
// RCU-style by a ScenarioStore: readers Acquire() a shared_ptr to the
// current snapshot and keep using it for as long as they like; a mutation
// (POI add/remove, interval switch) builds the *next* snapshot off to the
// side and installs it with one pointer swap. In-flight queries never
// observe a half-mutated scenario and never block writers.
//
// Incremental relabeling (the reason mutations are cheap): exact answers
// are derived from an ExactLabelState — the edit-stable TODAM plus every
// zone's exact label. The edit-stable construction (core/todam.h) keys
// each (zone, POI) RNG stream by the POI's *stable id* and freezes the
// gravity normaliser over the base city's POI set, which makes the TODAM
// history-independent: editing one POI perturbs only that POI's trips.
// A mutation therefore patches the parent epoch's materialised states —
// sample the one new/removed POI column, splice it in, and relabel only
// the zones whose trip sequence changed (= zones with at least one sampled
// trip to the edited POI; exact, not a conservative superset). The patched
// state is bit-identical to a from-scratch build over the edited POI set,
// which the golden tests assert, and a scenario edit costs O(affected
// zones) SPQs instead of O(all zones).
//
// Timetable disruptions (scenario subsystem) extend the same contract to
// the supply side. SuspendRoute / CloseStop / ScaleHeadway build a
// disrupted feed through the pure transforms of scenario/transform.h,
// screen the zones that could have used a removed connection on the OLD
// timetable (scenario/impact.h), and install the next epoch with only the
// screened zones relabeled; SetFare relabels every zone of the
// generalized-cost states and shares journey-time states verbatim;
// ScaleWalkSpeed rescales the walk parameters (router and isochrone ω) and
// rebuilds everything. Each disrupted epoch carries its own city copy —
// zones and base POIs preserved, so the frozen gravity normalisers (and
// with them the TODAM) never shift — plus a network version stamp worker
// pools key their routers on. Every patched state is bit-identical to a
// full rebuild from the mutated feed (golden-tested), and mutations stay
// all-or-nothing: the new network is built entirely aside and committed
// only after every patch has succeeded.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/features.h"
#include "core/hoptree.h"
#include "core/isochrone.h"
#include "core/labeling.h"
#include "core/todam.h"
#include "router/router.h"
#include "scenario/transform.h"
#include "serve/request.h"
#include "synth/city_builder.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace staq::serve {

/// Offline structures of one analysis interval. They depend only on zones,
/// the road graph, and the GTFS feed — never on POIs — so every POI-edit
/// epoch shares its parent's OfflineState; only an interval switch builds
/// a new one.
struct OfflineState {
  OfflineState(const synth::City& city, const gtfs::TimeInterval& interval,
               core::IsochroneConfig iso_config = {});

  /// Snapshot restore: adopts persisted isochrones and hop trees verbatim
  /// and rebuilds the (cheap, deterministic) feature extractor against
  /// `city`, which must outlive the state exactly as for the building ctor.
  OfflineState(const synth::City& city, const gtfs::TimeInterval& interval,
               std::unique_ptr<core::IsochroneSet> isochrones,
               std::unique_ptr<core::HopTreeSet> hop_trees);

  gtfs::TimeInterval interval;
  std::unique_ptr<core::IsochroneSet> isochrones;
  std::unique_ptr<core::HopTreeSet> hop_trees;
  std::unique_ptr<core::FeatureExtractor> features;
  double build_seconds = 0.0;
};

/// One exact labeling of one scenario under one LabelKey: the edit-stable
/// TODAM over the key's category POIs and the exact label of every zone.
/// Immutable once published; patches copy-then-modify.
struct ExactLabelState {
  /// The category's POIs in scenario order (stable-id ascending).
  std::vector<synth::Poi> pois;
  /// Frozen gravity normalisers (StableGravityNorms over the *base* city's
  /// category POIs) — shared verbatim by every epoch so keep probabilities
  /// never shift under edits.
  std::vector<double> zone_norm;
  core::Todam todam;
  std::vector<core::ZoneLabel> labels;  // indexed by zone

  /// SPQs spent producing this state from its predecessor: a full build
  /// charges every zone, a patch only the affected ones.
  uint64_t build_spqs = 0;
  /// Zones labeled in that step (== all zones for a full build).
  uint32_t relabeled_zones = 0;
};

/// Router configuration serve runs by default: the Connection Scan engine.
/// Exact journey times, feasibility, and MAC/ACSD match the
/// label-correcting engine (asserted by the golden equivalence suites);
/// window scans make cold label builds and relabels far cheaper.
inline router::RouterOptions DefaultServeRouterOptions() {
  router::RouterOptions options;
  options.engine = router::RoutingEngine::kCsa;
  return options;
}

/// Immutable scenario snapshot. Thread-safe: all mutable state is the
/// internal label-state memo, which is guarded and memoised per key.
class Scenario {
 public:
  Scenario(uint64_t epoch, std::shared_ptr<const synth::City> base,
           std::vector<synth::Poi> pois,
           std::shared_ptr<const OfflineState> offline);

  uint64_t epoch() const { return epoch_; }
  /// The scenario's city — the disrupted copy once timetable mutations have
  /// run. Every disruption preserves zones and base POIs, so the frozen
  /// gravity normalisers read off this city never shift across epochs.
  const synth::City& base_city() const { return *base_; }
  /// Shared handle on the scenario's city; worker contexts hold it as a
  /// keepalive so their routers survive later network mutations.
  std::shared_ptr<const synth::City> city_ptr() const { return base_; }
  const std::vector<synth::Poi>& pois() const { return pois_; }
  const OfflineState& offline() const { return *offline_; }
  /// The shared offline handle, for deriving POI-edit epochs that reuse it
  /// (sharing the handle, not aliasing the scenario, so dead epochs free).
  std::shared_ptr<const OfflineState> offline_ptr() const { return offline_; }
  const gtfs::TimeInterval& interval() const { return offline_->interval; }

  /// Network stamp: increments with every timetable, fare, or walk
  /// mutation. Pooled worker contexts built for a different version are
  /// discarded rather than reused.
  uint64_t network_version() const { return network_version_; }
  /// Router options matching this scenario's network: the (possibly
  /// rescaled) walk parameters plus the connection array of the scenario's
  /// own feed.
  const router::RouterOptions& router_options() const {
    return router_options_;
  }

  /// Stamps the network version and router options (mutation derivation,
  /// ScenarioStore only). Must only be called before the scenario is
  /// installed.
  void SetNetwork(uint64_t version, const router::RouterOptions& options);

  /// The scenario's POIs of one category, in stable-id order.
  std::vector<synth::Poi> PoisOf(synth::PoiCategory category) const;

  /// Memoised exact label state: the first caller for a key builds it with
  /// `engine` (and sets *built_fresh when non-null); concurrent callers
  /// for the same key block until that build is published. `engine` is only
  /// used by the caller that actually builds.
  std::shared_ptr<const ExactLabelState> GetOrBuildLabelState(
      const LabelKey& key, core::LabelingEngine* engine,
      bool* built_fresh = nullptr) const;

  /// From-scratch build, bypassing the memo. This is the golden reference
  /// the incremental path is checked against (tests, bench gates).
  std::shared_ptr<const ExactLabelState> BuildLabelState(
      const LabelKey& key, core::LabelingEngine* engine) const;

  /// Label states the scenario currently holds materialised (ready, not
  /// in-flight). Mutations patch these into the next epoch; a state still
  /// being built during a mutation is simply not carried over — the next
  /// epoch rebuilds it on demand, and history-independence guarantees the
  /// rebuild equals the patch it missed.
  std::vector<std::pair<LabelKey, std::shared_ptr<const ExactLabelState>>>
  MaterializedStates() const;

  /// Pre-publishes a label state (mutation derivation). Must only be
  /// called before the scenario is installed.
  void SeedLabelState(const LabelKey& key,
                      std::shared_ptr<const ExactLabelState> state);

 private:
  struct StateEntry {
    LabelKey key;
    std::shared_future<std::shared_ptr<const ExactLabelState>> future;
  };

  uint64_t epoch_;
  std::shared_ptr<const synth::City> base_;
  std::vector<synth::Poi> pois_;
  std::shared_ptr<const OfflineState> offline_;
  uint64_t network_version_ = 0;
  router::RouterOptions router_options_ = DefaultServeRouterOptions();

  mutable std::mutex states_mu_;
  mutable std::unordered_map<std::string, StateEntry> states_;
};

/// Everything store::LoadSnapshot recovers from disk: the ingredients of a
/// ScenarioStore that skips the offline cold build. The city is already in
/// its final shared_ptr home because the offline state's feature extractor
/// points into it — moving the city after building the extractor would
/// dangle that pointer.
struct RestoredScenario {
  std::shared_ptr<const synth::City> city;
  std::vector<synth::Poi> pois;
  std::shared_ptr<const OfflineState> offline;
  std::vector<std::pair<LabelKey, std::shared_ptr<const ExactLabelState>>>
      label_states;
  /// Epoch the snapshot was exported from (diagnostic only: a restored
  /// store republishes as epoch 0).
  uint64_t source_epoch = 0;
  /// POI id cursor at export time. Persisted — not recomputed from the live
  /// POIs — because removed POIs leave no trace, and reusing their ids
  /// would splice new POIs onto dead RNG streams.
  uint32_t next_poi_id = 0;
};

/// Owns the current scenario and serialises mutations. Readers are
/// wait-free with respect to writers apart from one pointer-load mutex.
class ScenarioStore {
 public:
  struct Options {
    // Explicit constructor rather than a default member initializer: GCC
    // defers nested-class member initializers to the end of the enclosing
    // class, which would reject Options() in ScenarioStore's own defaulted
    // arguments.
    Options() : router(DefaultServeRouterOptions()) {}
    core::IsochroneConfig iso;
    router::RouterOptions router;
  };

  /// Takes ownership of the city; builds the offline state for `interval`
  /// and installs epoch 0 over the city's own POIs.
  ScenarioStore(synth::City city, const gtfs::TimeInterval& interval,
                Options options = Options());

  /// Warm start from a loaded snapshot (store/snapshot.h): installs the
  /// restored scenario as epoch 0 with its label states pre-seeded,
  /// skipping the offline cold build entirely.
  ScenarioStore(RestoredScenario restored, Options options = Options());

  /// The current snapshot. The returned scenario stays fully usable after
  /// any number of subsequent mutations.
  std::shared_ptr<const Scenario> Acquire() const;

  uint64_t epoch() const { return Acquire()->epoch(); }
  const synth::City& base_city() const { return *base_; }

  /// Sequence offset of epoch 0: a warm-started store restarts its local
  /// epochs at 0, but the mutation history continues where the snapshot's
  /// source left off. base_sequence() + epoch() is the store's absolute
  /// scenario sequence — the number the WAL and replication speak
  /// (wal/record.h). Cold-built stores sit at 0.
  uint64_t base_sequence() const { return base_sequence_; }

  /// The store's router options with the shared connection array injected
  /// (kCsa only; built once in the constructor). Per-worker Routers built
  /// from these share the array instead of rebuilding it — mutations never
  /// edit the feed, so one array serves every scenario epoch.
  const router::RouterOptions& router_options() const {
    return options_.router;
  }

  /// What one mutation did and what it cost.
  struct MutationReport {
    uint64_t epoch = 0;  // the epoch the mutation installed
    /// AddPoi: id of the new POI; RemovePoi: the removed id; disruptions:
    /// the target route/stop id (scenario::kAllRoutes for "all").
    uint32_t poi_id = 0;
    uint32_t states_patched = 0;  // label states carried over by patching
    uint32_t states_shared = 0;   // carried over untouched (other category)
    uint32_t zones_relabeled = 0;
    uint32_t zones_total = 0;     // per patched state
    uint64_t spqs = 0;            // SPQs spent on relabeling
    double seconds = 0.0;
  };

  /// Adds a POI and installs the next epoch. Every materialised label
  /// state of the POI's category is patched incrementally.
  MutationReport AddPoi(synth::PoiCategory category,
                        const geo::Point& position);

  /// Removes a POI by id. NotFound when absent.
  util::Result<MutationReport> RemovePoi(uint32_t poi_id);

  /// The id the next AddPoi will assign. Replication validates a replayed
  /// record against this *before* applying it, so an id mismatch leaves
  /// the store untouched instead of installing a forked epoch.
  uint32_t next_poi_id() const {
    return next_poi_id_.load(std::memory_order_acquire);
  }

  /// Switches the analysis interval: rebuilds the offline structures and
  /// installs a fresh epoch. Label states are interval-dependent and are
  /// not carried over.
  MutationReport SetInterval(const gtfs::TimeInterval& interval);

  /// Timetable disruptions (scenario subsystem). Each builds the disrupted
  /// feed through scenario/transform.h, screens the zones that could have
  /// used a removed connection on the old timetable (scenario/impact.h),
  /// and installs the next epoch with every materialised label state
  /// patched: only the screened zones relabel, and the result is
  /// bit-identical to a full rebuild from the mutated feed (golden-tested).
  /// All-or-nothing: on any error the current epoch and network stay
  /// exactly as they were.
  util::Result<MutationReport> SuspendRoute(uint32_t route);
  util::Result<MutationReport> CloseStop(uint32_t stop);
  /// Service thinning; factor >= 2, route may be scenario::kAllRoutes.
  util::Result<MutationReport> ScaleHeadway(uint32_t route, uint32_t factor);
  /// Fare shock: relabels every zone of the generalized-cost states;
  /// journey-time states are shared verbatim (fares never enter JT).
  util::Result<MutationReport> SetFare(uint32_t route, double fare);
  /// "Snow day": scales walking speed (router walk params and isochrone ω)
  /// by `factor`, cumulatively. Rebuilds the offline state and relabels
  /// every zone of every materialised state.
  util::Result<MutationReport> ScaleWalkSpeed(double factor);

  /// Network stamp of the current epoch (0 until the first disruption).
  uint64_t network_version() const { return Acquire()->network_version(); }
  /// Cumulative walk-speed factor applied by ScaleWalkSpeed (diagnostic).
  double walk_scale() const {
    return walk_scale_.load(std::memory_order_acquire);
  }

  /// Serialises `scenario` — any epoch a caller still retains — plus the
  /// store's POI id cursor to `path` (store/snapshot.h format). Safe under
  /// concurrent queries and mutations: the scenario is immutable and the
  /// cursor is read atomically, so the export never takes mutation_mu_.
  util::Status ExportSnapshot(const Scenario& scenario,
                              const std::string& path) const;

  /// Convenience: exports the current epoch.
  util::Status ExportSnapshot(const std::string& path) const {
    return ExportSnapshot(*Acquire(), path);
  }

 private:
  std::shared_ptr<const ExactLabelState> PatchAdd(
      const Scenario& next, const LabelKey& key, const ExactLabelState& parent,
      const synth::Poi& poi);
  std::shared_ptr<const ExactLabelState> PatchRemove(
      const Scenario& next, const LabelKey& key, const ExactLabelState& parent,
      uint32_t poi_id);
  /// Carries one label state across a network mutation: the TODAM is
  /// demand-side and moves verbatim; `affected` zones relabel against
  /// `engine` (built over the new network).
  std::shared_ptr<const ExactLabelState> PatchNetwork(
      const Scenario& next, const LabelKey& key, const ExactLabelState& parent,
      const std::vector<uint32_t>& affected, core::LabelingEngine* engine);
  /// Shared tail of SuspendRoute / CloseStop / ScaleHeadway: screens the
  /// affected zones on the old timetable, builds the new network aside,
  /// patches every state, and commits. Caller holds mutation_mu_.
  util::Result<MutationReport> ApplyTimetable(
      scenario::TransformResult transformed, uint32_t target,
      util::Stopwatch watch);
  void Install(std::shared_ptr<const Scenario> next);

  std::shared_ptr<const synth::City> base_;
  Options options_;
  /// Absolute sequence of epoch 0 (the snapshot's source sequence at warm
  /// start, else 0). Immutable after construction.
  uint64_t base_sequence_ = 0;

  /// The current network: the city the latest epoch serves (== base_ until
  /// the first timetable disruption), its effective router options (walk
  /// rescaled, connection array over the current feed), the effective
  /// isochrone config, and the monotone version stamp. Written only under
  /// mutation_mu_, and only after every patch of a mutation succeeded.
  std::shared_ptr<const synth::City> network_city_;
  router::RouterOptions network_router_;
  core::IsochroneConfig network_iso_;
  uint64_t network_version_ = 0;
  std::atomic<double> walk_scale_{1.0};

  /// Writer-side labeling context over the current network, used only
  /// under mutation_mu_; rebuilt (and committed together with
  /// network_city_) whenever the network changes.
  std::unique_ptr<router::Router> relabel_router_;
  std::unique_ptr<core::LabelingEngine> relabel_engine_;

  /// Serialises mutations; never held while readers run queries.
  std::mutex mutation_mu_;
  /// Next stable POI id (monotonic, never reused: a reused id would splice
  /// a new POI onto a removed POI's RNG stream). Written under mutation_mu_;
  /// atomic so ExportSnapshot can read it without joining the writer queue.
  std::atomic<uint32_t> next_poi_id_{0};

  mutable std::mutex current_mu_;
  std::shared_ptr<const Scenario> current_;
};

}  // namespace staq::serve
