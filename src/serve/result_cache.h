// Sharded LRU cache for access-query results.
//
// Keys are the canonical strings of serve/request.h prefixed with the
// scenario epoch, so a mutation never serves stale answers: results
// computed under epoch e are only ever returned to requests that resolved
// their snapshot to epoch e. Old-epoch entries age out of the LRU
// naturally — there is no explicit flush on mutation, which keeps writers
// off the cache locks.
//
// Sharding: the key hash picks one of `shards` independent LRU maps, each
// behind its own mutex, so concurrent readers on different shards never
// contend. Values are shared_ptr<const AccessQueryResult>: a hit hands the
// caller a reference to the immutable stored result without copying under
// the shard lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/access_query.h"
#include "util/clock.h"

namespace staq::serve {

class ResultCache {
 public:
  struct Options {
    size_t shards = 8;
    /// Per-shard entry capacity; total capacity = shards x this.
    size_t entries_per_shard = 64;
    /// Age bound in seconds: an entry older than this is treated as absent
    /// by Get (lazily erased, counted as `expired`). 0 disables aging —
    /// epoch keying already prevents stale answers, so the TTL exists for
    /// deployments that also want bounded result lifetime (e.g. results
    /// derived from feeds that go stale in wall-clock terms).
    double ttl_s = 0.0;
    /// Time source for aging; null = the real clock. Tests pass a
    /// VirtualClock and advance it instead of sleeping.
    const util::Clock* clock = nullptr;
  };

  explicit ResultCache(Options options);

  /// Returns the cached result or nullptr. A hit promotes the entry to
  /// most-recently-used in its shard; an entry past the TTL is erased and
  /// reported as a miss.
  std::shared_ptr<const core::AccessQueryResult> Get(const std::string& key);

  /// Inserts (or refreshes) `value` under `key`, evicting the shard's
  /// least-recently-used entries while it is over capacity.
  void Put(const std::string& key,
           std::shared_ptr<const core::AccessQueryResult> value);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t expired() const { return expired_.load(std::memory_order_relaxed); }
  size_t size() const;  // total entries across shards

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const core::AccessQueryResult> value;
    util::Clock::TimePoint inserted;
  };
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(const std::string& key);

  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> expired_{0};
};

}  // namespace staq::serve
