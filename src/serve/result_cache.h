// Sharded LRU cache for access-query results.
//
// Keys are the canonical strings of serve/request.h prefixed with the
// scenario epoch, so a mutation never serves stale answers: results
// computed under epoch e are only ever returned to requests that resolved
// their snapshot to epoch e. Old-epoch entries age out of the LRU
// naturally — there is no explicit flush on mutation, which keeps writers
// off the cache locks.
//
// Sharding: the key hash picks one of `shards` independent LRU maps, each
// behind its own mutex, so concurrent readers on different shards never
// contend. Values are shared_ptr<const AccessQueryResult>: a hit hands the
// caller a reference to the immutable stored result without copying under
// the shard lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/access_query.h"

namespace staq::serve {

class ResultCache {
 public:
  struct Options {
    size_t shards = 8;
    /// Per-shard entry capacity; total capacity = shards x this.
    size_t entries_per_shard = 64;
  };

  explicit ResultCache(Options options);

  /// Returns the cached result or nullptr. A hit promotes the entry to
  /// most-recently-used in its shard.
  std::shared_ptr<const core::AccessQueryResult> Get(const std::string& key);

  /// Inserts (or refreshes) `value` under `key`, evicting the shard's
  /// least-recently-used entry when it is full.
  void Put(const std::string& key,
           std::shared_ptr<const core::AccessQueryResult> value);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t size() const;  // total entries across shards

 private:
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<std::string,
                        std::shared_ptr<const core::AccessQueryResult>>>
        lru;
    std::unordered_map<std::string, decltype(lru)::iterator> index;
  };

  Shard& ShardFor(const std::string& key);

  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace staq::serve
