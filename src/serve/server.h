// staq::serve — concurrent access-query server.
//
// An AqServer owns a ScenarioStore (epoch-versioned scenarios, incremental
// relabeling) and a worker pool, and answers AqRequests concurrently:
//
//   * Admission: Submit() refuses new work with kResourceExhausted once the
//     queue holds max_pending tasks, so a burst degrades into fast
//     rejections instead of unbounded latency.
//   * Snapshots: each request captures the current scenario at submission.
//     Mutations arriving while it waits or runs do not affect it — it
//     answers against the epoch it was admitted under (RCU discipline).
//   * Deadlines: a request whose budget expired before a worker picked it
//     up fails with kDeadlineExceeded without doing any work; a ticket can
//     also be withdrawn explicitly while still queued.
//   * Caching: results are memoised in a sharded LRU keyed by (epoch,
//     canonical request), and exact label states are memoised per scenario,
//     so repeated analytical queries against a stable scenario cost one
//     cache probe.
//
// QueryUncached() recomputes from scratch, bypassing every cache — it is
// the golden reference that tests and the serve bench compare cached and
// incremental answers against.
#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/access_query.h"
#include "serve/request.h"
#include "serve/result_cache.h"
#include "serve/scenario.h"
#include "util/clock.h"
#include "util/thread_pool.h"
#include "wal/record.h"

namespace staq::wal {
class MutationWal;
}  // namespace staq::wal

namespace staq::serve {

class AqServer;

/// Handle to one submitted request. Get() blocks for the answer; TryCancel
/// withdraws the request if no worker has started it. The issuing AqServer
/// must outlive the ticket.
class AqTicket {
 public:
  /// epoch() value of a ticket that never resolved a snapshot (empty or
  /// rejected at admission).
  static constexpr uint64_t kNoEpoch = ~0ull;

  AqTicket() = default;

  bool valid() const { return promise_ != nullptr; }

  /// The scenario epoch the request was admitted under — the pure snapshot
  /// its answer must be bit-identical to. kNoEpoch for empty/rejected
  /// tickets. Stress tests use this to check epoch consistency.
  uint64_t epoch() const { return epoch_; }

  /// Blocks until the request resolves and returns its result. Consumes
  /// the ticket's future; a second call — or a call on an empty ticket —
  /// returns kFailedPrecondition instead of touching an invalid future.
  util::Result<core::AccessQueryResult> Get();

  /// Withdraws the request while it is still queued. On success the ticket
  /// resolves to kCancelled and no worker ever sees the request.
  bool TryCancel();

 private:
  friend class AqServer;
  using Promise = std::promise<util::Result<core::AccessQueryResult>>;

  AqServer* server_ = nullptr;
  std::shared_ptr<Promise> promise_;
  std::future<util::Result<core::AccessQueryResult>> future_;
  util::TaskHandle handle_;
  uint64_t epoch_ = kNoEpoch;
};

class AqServer {
 public:
  struct Options {
    /// Worker threads; 0 = hardware concurrency.
    size_t num_threads = 0;
    /// Worker threads for SSR model training inside each access query
    /// (COREG pool screening, MLP gradient chunks). Training is
    /// bit-identical for every value, so this is deliberately NOT part of
    /// the result-cache key — changing it never changes answers.
    int ml_threads = 1;
    /// Admission bound: Submit() rejects once this many tasks are pending.
    size_t max_pending = 256;
    /// Latency-based admission bound (the load-shedding path): when > 0,
    /// Submit() estimates the queueing delay a new request would see —
    /// pending tasks × EWMA(service time) / workers — and sheds it with
    /// kUnavailable once the estimate exceeds this budget. Shedding keeps
    /// the tail latency of *admitted* requests bounded under overload
    /// instead of letting the queue absorb the backlog; shed requests are
    /// counted in ServerStats::shed, separately from queue-full
    /// rejections. 0 disables shedding (max_pending still applies).
    double max_queue_delay_s = 0.0;
    ResultCache::Options cache;
    ScenarioStore::Options scenario;
    /// Time source for deadlines, cache aging, and latency accounting;
    /// null = the real clock. Tests pass a VirtualClock and advance time
    /// explicitly instead of sleeping. (When cache.clock is null it
    /// inherits this clock.)
    const util::Clock* clock = nullptr;
    /// Schedule shaking for the worker pool (stress tests only): seeded
    /// task reordering + jitter, see ThreadPool::PerturbOptions.
    std::optional<util::ThreadPool::PerturbOptions> perturb;
    /// When non-empty, warm-start from this snapshot file
    /// (store/snapshot.h): the loaded serving state — city, offline
    /// structures, materialised label states — is published as epoch 0 and
    /// the offline cold build is skipped. A snapshot that fails to open,
    /// verify, or decode degrades to the cold build over the passed city
    /// with a logged warning; a bad file never stops the server coming up.
    std::string warm_start_path;
  };

  /// Takes ownership of the city and runs the offline phase for `interval`.
  AqServer(synth::City city, const gtfs::TimeInterval& interval,
           Options options);
  AqServer(synth::City city, const gtfs::TimeInterval& interval);
  ~AqServer();

  AqServer(const AqServer&) = delete;
  AqServer& operator=(const AqServer&) = delete;

  // --- scenario API ------------------------------------------------------
  uint64_t epoch() const { return store_.epoch(); }
  /// Absolute scenario sequence — the server's position in the mutation
  /// history the WAL records: the warm-start snapshot's source sequence
  /// plus the local epoch. This is the number replication compares across
  /// primary and replicas (local epochs restart at 0 on every warm start
  /// and are incomparable between processes).
  uint64_t sequence() const { return store_.base_sequence() + store_.epoch(); }
  /// Sequence offset of epoch 0 (immutable after construction).
  uint64_t base_sequence() const { return store_.base_sequence(); }
  std::shared_ptr<const Scenario> Snapshot() const { return store_.Acquire(); }
  const synth::City& base_city() const { return store_.base_city(); }
  /// The store's effective router configuration — engine selector plus the
  /// shared connection array (kCsa) every worker router scans. Benches
  /// report the engine and the array's one-time build cost from here.
  const router::RouterOptions& router_options() const {
    return store_.router_options();
  }
  /// True when the serving state came from Options::warm_start_path rather
  /// than a cold build.
  bool warm_started() const { return warm_started_; }

  /// Persists the current serving state — or any retained scenario — to
  /// `path` in the store/snapshot.h format. Safe under concurrent queries
  /// and mutations (scenarios are immutable snapshots).
  util::Status ExportSnapshot(const std::string& path) const {
    return store_.ExportSnapshot(path);
  }
  util::Status ExportSnapshot(const Scenario& scenario,
                              const std::string& path) const {
    return store_.ExportSnapshot(scenario, path);
  }

  // Mutations are transactional: a failure (NotFound, or an exception out
  // of the patch/relabel machinery, e.g. an injected fault) leaves the
  // store at the previous epoch with every label state intact, and is
  // reported as a clean Status instead of escaping as an exception.
  util::Result<ScenarioStore::MutationReport> AddPoi(
      synth::PoiCategory category, const geo::Point& position);
  util::Result<ScenarioStore::MutationReport> RemovePoi(uint32_t poi_id);
  util::Result<ScenarioStore::MutationReport> SetInterval(
      const gtfs::TimeInterval& interval);

  // Timetable disruptions (scenario subsystem) — same transactional
  // contract, same WAL logging. In-flight queries keep answering against
  // the epoch (and network) they were admitted under; worker contexts are
  // keyed by the scenario's network version, so routing always matches the
  // snapshot being served.
  util::Result<ScenarioStore::MutationReport> SuspendRoute(uint32_t route);
  util::Result<ScenarioStore::MutationReport> CloseStop(uint32_t stop);
  util::Result<ScenarioStore::MutationReport> ScaleHeadway(uint32_t route,
                                                           uint32_t factor);
  util::Result<ScenarioStore::MutationReport> SetFare(uint32_t route,
                                                      double fare);
  util::Result<ScenarioStore::MutationReport> ScaleWalkSpeed(double factor);

  // --- replication API ---------------------------------------------------
  /// Makes this server a logging primary: every accepted mutation appends
  /// its record to `wal` (not owned; must outlive the server) before the
  /// mutation is acknowledged. The WAL must be exactly caught up —
  /// wal->last_sequence() == sequence() — or kFailedPrecondition; replay
  /// the log into the server first (ApplyMutation), then attach.
  ///
  /// A failed append surfaces as the mutation's status: the new epoch is
  /// serving locally but is NOT durable or replicated, and the WAL has
  /// turned read-only, so further mutations fail until it is reopened and
  /// reattached. Queries are never affected.
  util::Status AttachWal(wal::MutationWal* wal);

  /// Replays one logged mutation (the replica path; also WAL recovery on a
  /// restarting primary *before* AttachWal). Validates that the record
  /// extends this server's history — record.sequence == sequence() + 1,
  /// and for AddPoi that the locally assigned POI id matches the record —
  /// and returns kAborted on any mismatch: the replica has diverged and
  /// must stop applying rather than serve silently different answers.
  /// Records applied here are not re-logged to an attached WAL.
  util::Result<ScenarioStore::MutationReport> ApplyMutation(
      const wal::MutationRecord& record);

  // --- query API ---------------------------------------------------------
  /// Asynchronous submission. Never blocks on query work; returns a
  /// rejected ticket (kResourceExhausted) when the queue is full.
  AqTicket Submit(const AqRequest& request);

  /// Synchronous convenience: Submit + Get.
  util::Result<core::AccessQueryResult> Query(const AqRequest& request);

  /// Vector submission: expands the batch (see ExpandBatch for the order)
  /// and returns one ticket per derived request. Exact members of one
  /// (category, seed) group run as ONE worker task sharing a single
  /// labeling pass — each member's answer is derived columnarly,
  /// bit-identical to the single-request path — and every answer is
  /// inserted into the result cache under its derived single-query key, so
  /// later single submissions are cache hits. Non-exact (SSR) members
  /// share no pass and run as ordinary individual tasks. Admission
  /// (queue-full rejection, delay-budget shedding) is decided once for the
  /// whole batch. Batch tickets cannot be cancelled (TryCancel returns
  /// false): members of a group do not have individual queue slots.
  std::vector<AqTicket> SubmitBatch(const AqBatchRequest& batch);

  /// Synchronous convenience: SubmitBatch + Get on every ticket, in batch
  /// order.
  std::vector<util::Result<core::AccessQueryResult>> QueryBatch(
      const AqBatchRequest& batch);

  /// Golden reference: recomputes the answer from scratch on the caller's
  /// thread, bypassing the result cache and the label-state memo.
  util::Result<core::AccessQueryResult> QueryUncached(const AqRequest& request);

  /// Sequential reference against an explicit snapshot: like QueryUncached
  /// but answers for `scenario` (any retained epoch) rather than the
  /// current one. Stress tests retain per-epoch snapshots and check every
  /// concurrent answer bit-identically against this.
  util::Result<core::AccessQueryResult> QueryUncachedOn(
      const Scenario& scenario, const AqRequest& request);

  ServerStats stats() const;
  size_t num_threads() const { return pool_.num_threads(); }

 private:
  friend class AqTicket;

  /// Per-worker routing context: Router scratch is not shareable across
  /// threads, so each concurrently running request leases one of these.
  /// The context shares ownership of the city its router scans — a network
  /// mutation can retire that city from the store while a leased context
  /// still routes over it — and carries the network version it was built
  /// for, so a pooled context never serves a scenario of a different
  /// network.
  struct WorkerContext {
    WorkerContext(std::shared_ptr<const synth::City> city_in,
                  const router::RouterOptions& options, uint64_t version)
        : city(std::move(city_in)),
          router(&city->feed, options),
          engine(city.get(), &router),
          network_version(version) {}
    std::shared_ptr<const synth::City> city;
    router::Router router;
    core::LabelingEngine engine;
    uint64_t network_version = 0;
    /// stop_cache_epoch_ value this context's engine is known valid for.
    uint64_t stop_epoch = 0;
  };

  /// Leases a context matching `scenario`'s network: pooled contexts built
  /// for a different network version are discarded, not reused.
  std::unique_ptr<WorkerContext> AcquireContext(const Scenario& scenario);
  void ReleaseContext(std::unique_ptr<WorkerContext> context);

  /// Folds one mutation report into the stats counters.
  void NoteMutation(const ScenarioStore::MutationReport& report);
  /// Appends `record` to the attached WAL (no-op when none is attached).
  /// Must be called with wal_mu_ held, right after the store installed the
  /// record's epoch.
  util::Status LogMutation(const wal::MutationRecord& record);

  util::Result<core::AccessQueryResult> Execute(
      const AqRequest& request, const Scenario& scenario,
      WorkerContext* context, bool use_caches);
  void RunRequest(const AqRequest& request,
                  util::Clock::TimePoint submitted_at,
                  std::shared_ptr<const Scenario> snapshot,
                  const std::shared_ptr<AqTicket::Promise>& promise);
  /// Worker body of one exact (category, seed) batch group: one shared
  /// labeling pass, then per-member columnar derivation, cache fill, and
  /// promise fulfilment. `requests` and `promises` are parallel arrays.
  void RunBatchGroup(const std::vector<AqRequest>& requests,
                     util::Clock::TimePoint submitted_at,
                     std::shared_ptr<const Scenario> snapshot,
                     const std::vector<std::shared_ptr<AqTicket::Promise>>&
                         promises);
  /// True when the delay-budget estimate says a new submission should be
  /// shed (see Options::max_queue_delay_s).
  bool ShouldShed() const;
  /// Folds one completed task's service time into the shedding estimator.
  void NoteServiceTime(double seconds);

  Options options_;
  /// Resolved time source (options_.clock or the real clock). Never null.
  const util::Clock* clock_;
  /// Set while store_ initialises (declared first so it exists by then).
  bool warm_started_ = false;
  ScenarioStore store_;
  ResultCache cache_;

  /// Serialises the mutation+log critical section so WAL order always
  /// equals epoch order (the store's own mutation_mu_ only covers the
  /// store half). Never held while queries run.
  std::mutex wal_mu_;
  wal::MutationWal* wal_ = nullptr;  // attached log; not owned

  std::mutex context_mu_;
  std::vector<std::unique_ptr<WorkerContext>> free_contexts_;
  /// Bumped by mutations that may stale a WorkerContext's cached access
  /// stops; contexts are invalidated lazily on Acquire when their stamp
  /// lags, so leased contexts are covered too (not just the free list).
  std::atomic<uint64_t> stop_cache_epoch_{0};

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> exact_state_builds_{0};
  std::atomic<uint64_t> mutations_{0};
  std::atomic<uint64_t> states_patched_{0};
  std::atomic<uint64_t> zones_relabeled_{0};
  std::atomic<uint64_t> patch_spqs_{0};

  /// EWMA of per-task service seconds feeding the shedding estimate. A
  /// rough load signal, not an accounting value: concurrent updates may
  /// lose a sample (load and store are separate relaxed atomic ops), which
  /// only perturbs the estimate by one decayed term.
  std::atomic<double> service_ewma_s_{0.0};

  /// Declared last so ~AqServer destroys it first: ~ThreadPool finishes
  /// already-queued RunRequest tasks before joining, and those tasks touch
  /// every member above (contexts, mutex, caches, counters).
  util::ThreadPool pool_;
};

}  // namespace staq::serve
