#include "serve/request.h"

#include <cstdio>

namespace staq::serve {

namespace {

/// Appends "|name=<v>" with enough digits that distinct doubles produce
/// distinct strings (round-trip precision).
void AppendField(std::string* out, const char* name, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "|%s=%.17g", name, v);
  *out += buf;
}

void AppendField(std::string* out, const char* name, uint64_t v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "|%s=%llu", name,
                static_cast<unsigned long long>(v));
  *out += buf;
}

}  // namespace

std::vector<AqRequest> ExpandBatch(const AqBatchRequest& batch) {
  std::vector<synth::PoiCategory> categories =
      batch.categories.empty()
          ? std::vector<synth::PoiCategory>{batch.request.category}
          : batch.categories;
  std::vector<uint64_t> seeds =
      batch.seeds.empty() ? std::vector<uint64_t>{batch.request.options.seed}
                          : batch.seeds;
  std::vector<core::CostMember> members =
      batch.cost_members.empty()
          ? std::vector<core::CostMember>{{batch.request.options.cost,
                                           batch.request.options.gac}}
          : batch.cost_members;

  std::vector<AqRequest> out;
  out.reserve(categories.size() * seeds.size() * members.size());
  for (synth::PoiCategory category : categories) {
    for (uint64_t seed : seeds) {
      for (const core::CostMember& member : members) {
        AqRequest derived = batch.request;
        derived.category = category;
        derived.options.seed = seed;
        derived.options.cost = member.cost;
        derived.options.gac = member.gac;
        out.push_back(std::move(derived));
      }
    }
  }
  return out;
}

std::string LabelKey::Canonical() const {
  std::string out = "cat=" + std::to_string(static_cast<int>(category));
  out += "|cost=";
  out += core::CostKindName(cost);
  AppendField(&out, "decay", gravity.decay_scale_m);
  AppendField(&out, "keep", gravity.keep_scale);
  AppendField(&out, "rate", static_cast<uint64_t>(gravity.sample_rate_per_hour));
  AppendField(&out, "seed", seed);
  if (cost == core::CostKind::kGeneralizedCost) {
    AppendField(&out, "ltan", gac.lambda_tan);
    AppendField(&out, "lwt", gac.lambda_wt);
    AppendField(&out, "livt", gac.lambda_ivt);
    AppendField(&out, "let", gac.lambda_et);
    AppendField(&out, "tp", gac.transfer_penalty_s);
    AppendField(&out, "vot", gac.value_of_time);
  }
  return out;
}

LabelKey LabelKeyFor(const AqRequest& request) {
  LabelKey key;
  key.category = request.category;
  key.cost = request.options.cost;
  key.gac = request.options.gac;
  key.gravity = request.options.gravity;
  key.seed = request.options.seed;
  return key;
}

std::string CanonicalRequestKey(const AqRequest& request) {
  std::string out = LabelKeyFor(request).Canonical();
  if (request.options.exact) {
    out += "|exact";
  } else {
    AppendField(&out, "beta", request.options.beta);
    out += "|model=" + std::to_string(static_cast<int>(request.options.model));
  }
  return out;
}

}  // namespace staq::serve
