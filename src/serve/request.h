// Request/response types of the serve subsystem.
//
// An AqRequest is one access query addressed to an AqServer: the POI
// category, the full AccessQueryOptions of the core engine, and an optional
// deadline. Requests are canonicalised into cache-key strings so that two
// requests that must produce identical answers — regardless of how their
// irrelevant option fields differ — share one result-cache entry: an exact
// query ignores beta/model (no SSR stage runs), and a journey-time query
// ignores the GAC weights.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/access_query.h"

namespace staq::serve {

/// One access query submitted to an AqServer.
struct AqRequest {
  synth::PoiCategory category = synth::PoiCategory::kHospital;
  core::AccessQueryOptions options;
  /// Wall-clock budget in seconds, measured from submission. A request
  /// still queued when its budget expires fails with kDeadlineExceeded
  /// instead of occupying a worker. 0 disables the deadline.
  double deadline_s = 0.0;
};

/// One request template swept across POI categories, TODAM seeds, and cost
/// definitions — the serve form of core::VectorQuerySpec. An empty axis
/// means "the template's value". Every member of an exact batch that
/// shares a (category, seed) shares ONE labeling pass on a worker and its
/// answer lands in the ResultCache under the derived single-query key, so
/// later single submissions of any member are cache hits.
struct AqBatchRequest {
  AqRequest request;
  std::vector<synth::PoiCategory> categories;
  std::vector<uint64_t> seeds;
  std::vector<core::CostMember> cost_members;
};

/// Expands the template × axes into concrete single requests in the
/// deterministic batch order: category-major, then seed, then cost member.
/// SubmitBatch returns tickets in exactly this order.
std::vector<AqRequest> ExpandBatch(const AqBatchRequest& batch);

/// Everything an *exact* labeling depends on besides the scenario's POI
/// set: the inputs of the edit-stable TODAM plus the cost definition.
/// Scenario memoises one ExactLabelState per distinct key (see
/// serve/scenario.h).
struct LabelKey {
  synth::PoiCategory category = synth::PoiCategory::kHospital;
  core::CostKind cost = core::CostKind::kJourneyTime;
  router::GacWeights gac;
  core::GravityConfig gravity;
  uint64_t seed = 1;

  /// Canonical string form: identical keys ⇔ identical strings. GAC
  /// weights are included only under kGeneralizedCost — they cannot affect
  /// a journey-time labeling.
  std::string Canonical() const;
};

/// The label-state key a request resolves to.
LabelKey LabelKeyFor(const AqRequest& request);

/// Canonical result-cache key of a request *within one scenario epoch*
/// (the server prepends the epoch). Exact requests drop beta/model; SSR
/// requests append them to the label key.
std::string CanonicalRequestKey(const AqRequest& request);

/// Cumulative server counters, snapshotted by AqServer::stats().
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;          // promise fulfilled with an OK result
  uint64_t failed = 0;             // fulfilled with a non-OK status
  uint64_t rejected = 0;           // refused at admission (queue full)
  uint64_t shed = 0;               // refused at admission (queue-delay budget)
  uint64_t deadline_exceeded = 0;  // expired before a worker picked it up
  uint64_t cancelled = 0;          // withdrawn via AqTicket::TryCancel

  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_expired = 0;  // entries aged out by the TTL (see ResultCache)

  /// Exact label states built from scratch (full labeling sweeps).
  uint64_t exact_state_builds = 0;

  uint64_t mutations = 0;
  uint64_t states_patched = 0;    // label states carried across epochs by patching
  uint64_t zones_relabeled = 0;   // zones recomputed by all patches
  uint64_t patch_spqs = 0;        // SPQs spent inside patches
};

}  // namespace staq::serve
