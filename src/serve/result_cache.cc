#include "serve/result_cache.h"

#include <functional>

namespace staq::serve {

ResultCache::ResultCache(Options options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.entries_per_shard == 0) options_.entries_per_shard = 1;
  shards_.reserve(options_.shards);
  for (size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

std::shared_ptr<const core::AccessQueryResult> ResultCache::Get(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const core::AccessQueryResult> value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index[key] = shard.lru.begin();
  if (shard.lru.size() > options_.entries_per_shard) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace staq::serve
