#include "serve/result_cache.h"

#include <functional>

#include "util/failpoint.h"

namespace staq::serve {

ResultCache::ResultCache(Options options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.entries_per_shard == 0) options_.entries_per_shard = 1;
  if (options_.clock == nullptr) options_.clock = util::Clock::Real();
  shards_.reserve(options_.shards);
  for (size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

std::shared_ptr<const core::AccessQueryResult> ResultCache::Get(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (options_.ttl_s > 0.0 &&
      options_.clock->SecondsSince(it->second->inserted) > options_.ttl_s) {
    // Lazy aging: the entry outlived its TTL, so it no longer exists as far
    // as callers are concerned. Erase it now rather than on some sweep.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    expired_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const core::AccessQueryResult> value) {
  // Fault site: insertion failing before any shard state changes (callers
  // must treat a failed Put as "not cached", never as a failed query).
  STAQ_FAILPOINT("serve.cache.put");
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    it->second->inserted = options_.clock->Now();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(value), options_.clock->Now()});
  shard.index[key] = shard.lru.begin();
  // `while`, not `if`: a previous eviction aborted by the fault site below
  // can leave the shard over capacity; the next insert drains the excess.
  while (shard.lru.size() > options_.entries_per_shard) {
    // Fault site: eviction failing before the victim is touched — the new
    // entry is already inserted, the victim survives until the next Put.
    STAQ_FAILPOINT("serve.cache.evict");
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace staq::serve
