#include "serve/scenario.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "core/gravity.h"
#include "router/connections.h"
#include "store/snapshot.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace staq::serve {

namespace {

/// Builds (or adopts) the shared connection array once per store, so the
/// writer-side relabel router and every worker Router constructed from
/// router_options() scan one immutable array.
ScenarioStore::Options WithSharedConnections(ScenarioStore::Options options,
                                             const gtfs::Feed* feed) {
  if (options.router.engine == router::RoutingEngine::kCsa) {
    options.router.connections = router::ConnectionArray::EnsureFor(
        options.router.connections, feed);
  }
  return options;
}

}  // namespace

OfflineState::OfflineState(const synth::City& city,
                           const gtfs::TimeInterval& interval_in,
                           core::IsochroneConfig iso_config)
    : interval(interval_in) {
  util::Stopwatch watch;
  isochrones = std::make_unique<core::IsochroneSet>(city, iso_config);
  hop_trees = std::make_unique<core::HopTreeSet>(city, *isochrones, interval);
  features = std::make_unique<core::FeatureExtractor>(&city, isochrones.get(),
                                                      hop_trees.get());
  build_seconds = watch.ElapsedSeconds();
}

OfflineState::OfflineState(const synth::City& city,
                           const gtfs::TimeInterval& interval_in,
                           std::unique_ptr<core::IsochroneSet> isochrones_in,
                           std::unique_ptr<core::HopTreeSet> hop_trees_in)
    : interval(interval_in),
      isochrones(std::move(isochrones_in)),
      hop_trees(std::move(hop_trees_in)) {
  features = std::make_unique<core::FeatureExtractor>(&city, isochrones.get(),
                                                      hop_trees.get());
}

Scenario::Scenario(uint64_t epoch, std::shared_ptr<const synth::City> base,
                   std::vector<synth::Poi> pois,
                   std::shared_ptr<const OfflineState> offline)
    : epoch_(epoch),
      base_(std::move(base)),
      pois_(std::move(pois)),
      offline_(std::move(offline)) {}

std::vector<synth::Poi> Scenario::PoisOf(synth::PoiCategory category) const {
  std::vector<synth::Poi> out;
  for (const synth::Poi& poi : pois_) {
    if (poi.category == category) out.push_back(poi);
  }
  return out;
}

std::shared_ptr<const ExactLabelState> Scenario::BuildLabelState(
    const LabelKey& key, core::LabelingEngine* engine) const {
  // Fault site: a from-scratch state build failing (models OOM / engine
  // faults). GetOrBuildLabelState must propagate this to current waiters
  // without poisoning the memo key; see the catch there.
  STAQ_FAILPOINT("serve.scenario.build_label_state");
  auto state = std::make_shared<ExactLabelState>();
  state->pois = PoisOf(key.category);
  // Normalisers are frozen over the *base* city's category POIs so that
  // every epoch — and every patch — sees the same keep probabilities.
  state->zone_norm = core::StableGravityNorms(
      base_->zones, base_->PoisOf(key.category), key.gravity.decay_scale_m);
  core::TodamBuilder builder(base_->zones, state->pois, interval(),
                             key.gravity);
  state->todam = builder.BuildGravityStable(key.seed, state->zone_norm);

  engine->set_gac_weights(key.gac);
  std::vector<uint32_t> all(base_->zones.size());
  std::iota(all.begin(), all.end(), 0u);
  uint64_t spq_before = engine->spq_count();
  state->labels =
      engine->LabelZones(state->todam, all, state->pois, key.cost,
                         interval().day);
  state->build_spqs = engine->spq_count() - spq_before;
  state->relabeled_zones = static_cast<uint32_t>(all.size());
  return state;
}

std::shared_ptr<const ExactLabelState> Scenario::GetOrBuildLabelState(
    const LabelKey& key, core::LabelingEngine* engine,
    bool* built_fresh) const {
  if (built_fresh != nullptr) *built_fresh = false;
  const std::string canonical = key.Canonical();
  std::promise<std::shared_ptr<const ExactLabelState>> promise;
  std::shared_future<std::shared_ptr<const ExactLabelState>> future;
  bool is_builder = false;
  {
    std::lock_guard<std::mutex> lock(states_mu_);
    auto it = states_.find(canonical);
    if (it != states_.end()) {
      future = it->second.future;
    } else {
      future = promise.get_future().share();
      states_.emplace(canonical, StateEntry{key, future});
      is_builder = true;
    }
  }
  if (!is_builder) return future.get();

  std::shared_ptr<const ExactLabelState> state;
  try {
    state = BuildLabelState(key, engine);
  } catch (...) {
    // Unfulfilled promises hang every waiter on the shared future, and a
    // dead entry would poison the key forever. Drop the entry first (so
    // MaterializedStates and later callers never see the broken future),
    // then propagate the failure to current waiters and the caller.
    {
      std::lock_guard<std::mutex> lock(states_mu_);
      states_.erase(canonical);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  promise.set_value(state);
  if (built_fresh != nullptr) *built_fresh = true;
  return state;
}

std::vector<std::pair<LabelKey, std::shared_ptr<const ExactLabelState>>>
Scenario::MaterializedStates() const {
  std::vector<std::pair<LabelKey, std::shared_ptr<const ExactLabelState>>> out;
  std::lock_guard<std::mutex> lock(states_mu_);
  out.reserve(states_.size());
  for (const auto& [canonical, entry] : states_) {
    if (entry.future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      out.emplace_back(entry.key, entry.future.get());
    }
  }
  return out;
}

void Scenario::SeedLabelState(const LabelKey& key,
                              std::shared_ptr<const ExactLabelState> state) {
  std::promise<std::shared_ptr<const ExactLabelState>> promise;
  promise.set_value(std::move(state));
  std::lock_guard<std::mutex> lock(states_mu_);
  states_.emplace(key.Canonical(),
                  StateEntry{key, promise.get_future().share()});
}

ScenarioStore::ScenarioStore(synth::City city,
                             const gtfs::TimeInterval& interval,
                             Options options)
    : base_(std::make_shared<const synth::City>(std::move(city))),
      options_(WithSharedConnections(std::move(options), &base_->feed)),
      relabel_router_(&base_->feed, options_.router),
      relabel_engine_(base_.get(), &relabel_router_) {
  auto offline =
      std::make_shared<const OfflineState>(*base_, interval, options_.iso);
  current_ = std::make_shared<const Scenario>(/*epoch=*/0, base_, base_->pois,
                                              std::move(offline));
  for (const synth::Poi& poi : base_->pois) {
    if (poi.id >= next_poi_id_) next_poi_id_ = poi.id + 1;
  }
}

ScenarioStore::ScenarioStore(RestoredScenario restored, Options options)
    : base_(std::move(restored.city)),
      options_(WithSharedConnections(std::move(options), &base_->feed)),
      relabel_router_(&base_->feed, options_.router),
      relabel_engine_(base_.get(), &relabel_router_) {
  auto scenario = std::make_shared<Scenario>(/*epoch=*/0, base_,
                                             std::move(restored.pois),
                                             std::move(restored.offline));
  for (auto& [key, state] : restored.label_states) {
    scenario->SeedLabelState(key, std::move(state));
  }
  // The persisted cursor is authoritative (removed POIs must stay retired),
  // but never hand out an id a live POI already holds.
  uint32_t next_id = restored.next_poi_id;
  for (const synth::Poi& poi : scenario->pois()) {
    if (poi.id >= next_id) next_id = poi.id + 1;
  }
  next_poi_id_ = next_id;
  base_sequence_ = restored.source_epoch;
  current_ = std::move(scenario);
}

util::Status ScenarioStore::ExportSnapshot(const Scenario& scenario,
                                           const std::string& path) const {
  // The persisted sequence is absolute so a chain snapshot -> mutate ->
  // snapshot keeps counting instead of restarting at the local epoch.
  return store::SaveSnapshot(scenario, next_poi_id_.load(), path,
                             base_sequence_);
}

std::shared_ptr<const Scenario> ScenarioStore::Acquire() const {
  std::lock_guard<std::mutex> lock(current_mu_);
  return current_;
}

void ScenarioStore::Install(std::shared_ptr<const Scenario> next) {
  std::lock_guard<std::mutex> lock(current_mu_);
  current_ = std::move(next);
}

std::shared_ptr<const ExactLabelState> ScenarioStore::PatchAdd(
    const Scenario& next, const LabelKey& key, const ExactLabelState& parent,
    const synth::Poi& poi) {
  // Fault site: the TODAM column patch failing before the parent state is
  // copied into. The parent is immutable, so an abort here is free.
  STAQ_FAILPOINT("serve.scenario.patch_add");
  auto state = std::make_shared<ExactLabelState>(parent);
  state->pois.push_back(poi);
  const uint32_t new_index = static_cast<uint32_t>(state->pois.size() - 1);

  // Sample only the new POI's column. Every other pair's RNG stream is
  // keyed by its own stable id, so the rest of the TODAM is untouched.
  const uint32_t samples = core::TodamSamplesPerPair(key.gravity, next.interval());
  const size_t num_zones = base_->zones.size();
  std::vector<std::vector<core::TripEntry>> per_zone(num_zones);
  std::vector<double> alpha_column(num_zones);
  for (uint32_t z = 0; z < num_zones; ++z) {
    double decay = core::DistanceDecay(
        geo::Distance(base_->zones[z].centroid, poi.position),
        key.gravity.decay_scale_m);
    alpha_column[z] = core::StableAlphaValue(decay, state->zone_norm[z]);
    double keep = core::StableKeepProbability(decay, state->zone_norm[z],
                                              key.gravity.keep_scale);
    core::SampleStablePairTrips(key.seed, z, poi.id, new_index, keep,
                                next.interval(), samples, &per_zone[z]);
  }
  std::vector<uint32_t> affected;
  state->todam.AppendPoiColumn(per_zone, alpha_column, &affected);

  // Fault site: relabeling the affected zones failing mid-mutation. Only
  // the un-installed copy is damaged; the store never publishes it.
  STAQ_FAILPOINT("serve.scenario.relabel");
  relabel_engine_.set_gac_weights(key.gac);
  uint64_t spq_before = relabel_engine_.spq_count();
  relabel_engine_.RelabelZones(state->todam, affected, state->pois, key.cost,
                               next.interval().day, &state->labels);
  state->build_spqs = relabel_engine_.spq_count() - spq_before;
  state->relabeled_zones = static_cast<uint32_t>(affected.size());
  return state;
}

std::shared_ptr<const ExactLabelState> ScenarioStore::PatchRemove(
    const Scenario& next, const LabelKey& key, const ExactLabelState& parent,
    uint32_t poi_id) {
  // Fault site: mirror of serve.scenario.patch_add for the remove path.
  STAQ_FAILPOINT("serve.scenario.patch_remove");
  auto state = std::make_shared<ExactLabelState>(parent);
  auto it = std::find_if(
      state->pois.begin(), state->pois.end(),
      [poi_id](const synth::Poi& p) { return p.id == poi_id; });
  if (it == state->pois.end()) {
    // Carried-over states must contain every scenario POI of their
    // category; proceeding would erase(end()) and corrupt the TODAM.
    std::fprintf(stderr,
                 "PatchRemove: POI %u absent from parent label state\n",
                 poi_id);
    std::abort();
  }
  const uint32_t index = static_cast<uint32_t>(it - state->pois.begin());
  state->pois.erase(it);

  std::vector<uint32_t> affected;
  state->todam.RemovePoiColumn(index, &affected);

  STAQ_FAILPOINT("serve.scenario.relabel");
  relabel_engine_.set_gac_weights(key.gac);
  uint64_t spq_before = relabel_engine_.spq_count();
  relabel_engine_.RelabelZones(state->todam, affected, state->pois, key.cost,
                               next.interval().day, &state->labels);
  state->build_spqs = relabel_engine_.spq_count() - spq_before;
  state->relabeled_zones = static_cast<uint32_t>(affected.size());
  return state;
}

ScenarioStore::MutationReport ScenarioStore::AddPoi(
    synth::PoiCategory category, const geo::Point& position) {
  std::lock_guard<std::mutex> mutation(mutation_mu_);
  util::Stopwatch watch;
  auto current = Acquire();

  synth::Poi poi;
  poi.id = next_poi_id_++;
  poi.category = category;
  poi.position = position;

  std::vector<synth::Poi> pois = current->pois();
  pois.push_back(poi);
  auto next = std::make_shared<Scenario>(current->epoch() + 1, base_,
                                         std::move(pois),
                                         current->offline_ptr());

  MutationReport report;
  report.epoch = next->epoch();
  report.poi_id = poi.id;
  report.zones_total = static_cast<uint32_t>(base_->zones.size());
  for (const auto& [key, state] : current->MaterializedStates()) {
    if (key.category != category) {
      next->SeedLabelState(key, state);
      ++report.states_shared;
      continue;
    }
    auto patched = PatchAdd(*next, key, *state, poi);
    report.spqs += patched->build_spqs;
    report.zones_relabeled += patched->relabeled_zones;
    ++report.states_patched;
    next->SeedLabelState(key, std::move(patched));
  }
  Install(std::move(next));
  report.seconds = watch.ElapsedSeconds();
  return report;
}

util::Result<ScenarioStore::MutationReport> ScenarioStore::RemovePoi(
    uint32_t poi_id) {
  std::lock_guard<std::mutex> mutation(mutation_mu_);
  util::Stopwatch watch;
  auto current = Acquire();

  auto it = std::find_if(
      current->pois().begin(), current->pois().end(),
      [poi_id](const synth::Poi& p) { return p.id == poi_id; });
  if (it == current->pois().end()) {
    return util::Status::NotFound("no POI with id " + std::to_string(poi_id));
  }
  const synth::PoiCategory category = it->category;

  std::vector<synth::Poi> pois = current->pois();
  pois.erase(pois.begin() + (it - current->pois().begin()));
  auto next = std::make_shared<Scenario>(current->epoch() + 1, base_,
                                         std::move(pois),
                                         current->offline_ptr());

  MutationReport report;
  report.epoch = next->epoch();
  report.poi_id = poi_id;
  report.zones_total = static_cast<uint32_t>(base_->zones.size());
  for (const auto& [key, state] : current->MaterializedStates()) {
    if (key.category != category) {
      next->SeedLabelState(key, state);
      ++report.states_shared;
      continue;
    }
    auto patched = PatchRemove(*next, key, *state, poi_id);
    report.spqs += patched->build_spqs;
    report.zones_relabeled += patched->relabeled_zones;
    ++report.states_patched;
    next->SeedLabelState(key, std::move(patched));
  }
  Install(std::move(next));
  report.seconds = watch.ElapsedSeconds();
  return report;
}

ScenarioStore::MutationReport ScenarioStore::SetInterval(
    const gtfs::TimeInterval& interval) {
  std::lock_guard<std::mutex> mutation(mutation_mu_);
  util::Stopwatch watch;
  auto current = Acquire();

  auto offline =
      std::make_shared<const OfflineState>(*base_, interval, options_.iso);
  auto next = std::make_shared<Scenario>(current->epoch() + 1, base_,
                                         current->pois(), std::move(offline));
  // Mutation discipline: any swap of offline structures drops the writer
  // engine's cached access stops. Today the walk table is feed-derived and
  // survives interval switches, but the invalidation keeps the cache from
  // outliving any future mutation that does touch stop geometry.
  relabel_engine_.InvalidateAccessStopCache();

  MutationReport report;
  report.epoch = next->epoch();
  report.zones_total = static_cast<uint32_t>(base_->zones.size());
  Install(std::move(next));
  report.seconds = watch.ElapsedSeconds();
  return report;
}

}  // namespace staq::serve
