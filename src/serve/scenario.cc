#include "serve/scenario.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "core/gravity.h"
#include "router/connections.h"
#include "scenario/impact.h"
#include "store/snapshot.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace staq::serve {

namespace {

/// Builds (or adopts) the shared connection array once per store, so the
/// writer-side relabel router and every worker Router constructed from
/// router_options() scan one immutable array.
ScenarioStore::Options WithSharedConnections(ScenarioStore::Options options,
                                             const gtfs::Feed* feed) {
  if (options.router.engine == router::RoutingEngine::kCsa) {
    options.router.connections = router::ConnectionArray::EnsureFor(
        options.router.connections, feed);
  }
  return options;
}

/// Rebinds router options to a (possibly new) feed: under kCsa the
/// connection array is shared when the feed pointer matches and rebuilt
/// deterministically when a disruption produced a new feed.
router::RouterOptions RebindConnections(router::RouterOptions options,
                                        const gtfs::Feed* feed) {
  if (options.engine == router::RoutingEngine::kCsa) {
    options.connections =
        router::ConnectionArray::EnsureFor(options.connections, feed);
  }
  return options;
}

/// Offline state for a timetable/fare mutation: isochrones depend only on
/// the road graph and walk config — never on the timetable — so the
/// parent's polygons are adopted verbatim (bit-identical to recomputing
/// them) while hop trees and features rebuild over the disrupted city.
std::shared_ptr<const OfflineState> RebuildOfflineKeepingIsochrones(
    const synth::City& city, const OfflineState& parent) {
  std::vector<geo::Polygon> polygons;
  polygons.reserve(parent.isochrones->size());
  for (uint32_t z = 0; z < parent.isochrones->size(); ++z) {
    polygons.push_back(parent.isochrones->For(z));
  }
  auto isochrones = std::make_unique<core::IsochroneSet>(
      parent.isochrones->config(), std::move(polygons));
  auto hop_trees =
      std::make_unique<core::HopTreeSet>(city, *isochrones, parent.interval);
  return std::make_shared<const OfflineState>(
      city, parent.interval, std::move(isochrones), std::move(hop_trees));
}

std::vector<uint32_t> AllZones(size_t count) {
  std::vector<uint32_t> all(count);
  std::iota(all.begin(), all.end(), 0u);
  return all;
}

}  // namespace

OfflineState::OfflineState(const synth::City& city,
                           const gtfs::TimeInterval& interval_in,
                           core::IsochroneConfig iso_config)
    : interval(interval_in) {
  util::Stopwatch watch;
  isochrones = std::make_unique<core::IsochroneSet>(city, iso_config);
  hop_trees = std::make_unique<core::HopTreeSet>(city, *isochrones, interval);
  features = std::make_unique<core::FeatureExtractor>(&city, isochrones.get(),
                                                      hop_trees.get());
  build_seconds = watch.ElapsedSeconds();
}

OfflineState::OfflineState(const synth::City& city,
                           const gtfs::TimeInterval& interval_in,
                           std::unique_ptr<core::IsochroneSet> isochrones_in,
                           std::unique_ptr<core::HopTreeSet> hop_trees_in)
    : interval(interval_in),
      isochrones(std::move(isochrones_in)),
      hop_trees(std::move(hop_trees_in)) {
  features = std::make_unique<core::FeatureExtractor>(&city, isochrones.get(),
                                                      hop_trees.get());
}

Scenario::Scenario(uint64_t epoch, std::shared_ptr<const synth::City> base,
                   std::vector<synth::Poi> pois,
                   std::shared_ptr<const OfflineState> offline)
    : epoch_(epoch),
      base_(std::move(base)),
      pois_(std::move(pois)),
      offline_(std::move(offline)) {}

void Scenario::SetNetwork(uint64_t version,
                          const router::RouterOptions& options) {
  network_version_ = version;
  router_options_ = options;
}

std::vector<synth::Poi> Scenario::PoisOf(synth::PoiCategory category) const {
  std::vector<synth::Poi> out;
  for (const synth::Poi& poi : pois_) {
    if (poi.category == category) out.push_back(poi);
  }
  return out;
}

std::shared_ptr<const ExactLabelState> Scenario::BuildLabelState(
    const LabelKey& key, core::LabelingEngine* engine) const {
  // Fault site: a from-scratch state build failing (models OOM / engine
  // faults). GetOrBuildLabelState must propagate this to current waiters
  // without poisoning the memo key; see the catch there.
  STAQ_FAILPOINT("serve.scenario.build_label_state");
  auto state = std::make_shared<ExactLabelState>();
  state->pois = PoisOf(key.category);
  // Normalisers are frozen over the *base* city's category POIs so that
  // every epoch — and every patch — sees the same keep probabilities.
  state->zone_norm = core::StableGravityNorms(
      base_->zones, base_->PoisOf(key.category), key.gravity.decay_scale_m);
  core::TodamBuilder builder(base_->zones, state->pois, interval(),
                             key.gravity);
  state->todam = builder.BuildGravityStable(key.seed, state->zone_norm);

  engine->set_gac_weights(key.gac);
  std::vector<uint32_t> all(base_->zones.size());
  std::iota(all.begin(), all.end(), 0u);
  uint64_t spq_before = engine->spq_count();
  state->labels =
      engine->LabelZones(state->todam, all, state->pois, key.cost,
                         interval().day);
  state->build_spqs = engine->spq_count() - spq_before;
  state->relabeled_zones = static_cast<uint32_t>(all.size());
  return state;
}

std::shared_ptr<const ExactLabelState> Scenario::GetOrBuildLabelState(
    const LabelKey& key, core::LabelingEngine* engine,
    bool* built_fresh) const {
  if (built_fresh != nullptr) *built_fresh = false;
  const std::string canonical = key.Canonical();
  std::promise<std::shared_ptr<const ExactLabelState>> promise;
  std::shared_future<std::shared_ptr<const ExactLabelState>> future;
  bool is_builder = false;
  {
    std::lock_guard<std::mutex> lock(states_mu_);
    auto it = states_.find(canonical);
    if (it != states_.end()) {
      future = it->second.future;
    } else {
      future = promise.get_future().share();
      states_.emplace(canonical, StateEntry{key, future});
      is_builder = true;
    }
  }
  if (!is_builder) return future.get();

  std::shared_ptr<const ExactLabelState> state;
  try {
    state = BuildLabelState(key, engine);
  } catch (...) {
    // Unfulfilled promises hang every waiter on the shared future, and a
    // dead entry would poison the key forever. Drop the entry first (so
    // MaterializedStates and later callers never see the broken future),
    // then propagate the failure to current waiters and the caller.
    {
      std::lock_guard<std::mutex> lock(states_mu_);
      states_.erase(canonical);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  promise.set_value(state);
  if (built_fresh != nullptr) *built_fresh = true;
  return state;
}

std::vector<std::pair<LabelKey, std::shared_ptr<const ExactLabelState>>>
Scenario::MaterializedStates() const {
  std::vector<std::pair<LabelKey, std::shared_ptr<const ExactLabelState>>> out;
  std::lock_guard<std::mutex> lock(states_mu_);
  out.reserve(states_.size());
  for (const auto& [canonical, entry] : states_) {
    if (entry.future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      out.emplace_back(entry.key, entry.future.get());
    }
  }
  return out;
}

void Scenario::SeedLabelState(const LabelKey& key,
                              std::shared_ptr<const ExactLabelState> state) {
  std::promise<std::shared_ptr<const ExactLabelState>> promise;
  promise.set_value(std::move(state));
  std::lock_guard<std::mutex> lock(states_mu_);
  states_.emplace(key.Canonical(),
                  StateEntry{key, promise.get_future().share()});
}

ScenarioStore::ScenarioStore(synth::City city,
                             const gtfs::TimeInterval& interval,
                             Options options)
    : base_(std::make_shared<const synth::City>(std::move(city))),
      options_(WithSharedConnections(std::move(options), &base_->feed)),
      network_city_(base_),
      network_router_(options_.router),
      network_iso_(options_.iso),
      relabel_router_(
          std::make_unique<router::Router>(&base_->feed, network_router_)),
      relabel_engine_(std::make_unique<core::LabelingEngine>(
          base_.get(), relabel_router_.get())) {
  auto offline =
      std::make_shared<const OfflineState>(*base_, interval, options_.iso);
  auto scenario = std::make_shared<Scenario>(/*epoch=*/0, base_, base_->pois,
                                             std::move(offline));
  scenario->SetNetwork(network_version_, network_router_);
  current_ = std::move(scenario);
  for (const synth::Poi& poi : base_->pois) {
    if (poi.id >= next_poi_id_) next_poi_id_ = poi.id + 1;
  }
}

ScenarioStore::ScenarioStore(RestoredScenario restored, Options options)
    : base_(std::move(restored.city)),
      options_(WithSharedConnections(std::move(options), &base_->feed)),
      network_city_(base_),
      network_router_(options_.router),
      network_iso_(options_.iso),
      relabel_router_(
          std::make_unique<router::Router>(&base_->feed, network_router_)),
      relabel_engine_(std::make_unique<core::LabelingEngine>(
          base_.get(), relabel_router_.get())) {
  auto scenario = std::make_shared<Scenario>(/*epoch=*/0, base_,
                                             std::move(restored.pois),
                                             std::move(restored.offline));
  scenario->SetNetwork(network_version_, network_router_);
  for (auto& [key, state] : restored.label_states) {
    scenario->SeedLabelState(key, std::move(state));
  }
  // The persisted cursor is authoritative (removed POIs must stay retired),
  // but never hand out an id a live POI already holds.
  uint32_t next_id = restored.next_poi_id;
  for (const synth::Poi& poi : scenario->pois()) {
    if (poi.id >= next_id) next_id = poi.id + 1;
  }
  next_poi_id_ = next_id;
  base_sequence_ = restored.source_epoch;
  current_ = std::move(scenario);
}

util::Status ScenarioStore::ExportSnapshot(const Scenario& scenario,
                                           const std::string& path) const {
  // The persisted sequence is absolute so a chain snapshot -> mutate ->
  // snapshot keeps counting instead of restarting at the local epoch.
  return store::SaveSnapshot(scenario, next_poi_id_.load(), path,
                             base_sequence_);
}

std::shared_ptr<const Scenario> ScenarioStore::Acquire() const {
  std::lock_guard<std::mutex> lock(current_mu_);
  return current_;
}

void ScenarioStore::Install(std::shared_ptr<const Scenario> next) {
  std::lock_guard<std::mutex> lock(current_mu_);
  current_ = std::move(next);
}

std::shared_ptr<const ExactLabelState> ScenarioStore::PatchAdd(
    const Scenario& next, const LabelKey& key, const ExactLabelState& parent,
    const synth::Poi& poi) {
  // Fault site: the TODAM column patch failing before the parent state is
  // copied into. The parent is immutable, so an abort here is free.
  STAQ_FAILPOINT("serve.scenario.patch_add");
  auto state = std::make_shared<ExactLabelState>(parent);
  state->pois.push_back(poi);
  const uint32_t new_index = static_cast<uint32_t>(state->pois.size() - 1);

  // Sample only the new POI's column. Every other pair's RNG stream is
  // keyed by its own stable id, so the rest of the TODAM is untouched.
  const uint32_t samples = core::TodamSamplesPerPair(key.gravity, next.interval());
  const size_t num_zones = base_->zones.size();
  std::vector<std::vector<core::TripEntry>> per_zone(num_zones);
  std::vector<double> alpha_column(num_zones);
  for (uint32_t z = 0; z < num_zones; ++z) {
    double decay = core::DistanceDecay(
        geo::Distance(base_->zones[z].centroid, poi.position),
        key.gravity.decay_scale_m);
    alpha_column[z] = core::StableAlphaValue(decay, state->zone_norm[z]);
    double keep = core::StableKeepProbability(decay, state->zone_norm[z],
                                              key.gravity.keep_scale);
    core::SampleStablePairTrips(key.seed, z, poi.id, new_index, keep,
                                next.interval(), samples, &per_zone[z]);
  }
  std::vector<uint32_t> affected;
  state->todam.AppendPoiColumn(per_zone, alpha_column, &affected);

  // Fault site: relabeling the affected zones failing mid-mutation. Only
  // the un-installed copy is damaged; the store never publishes it.
  STAQ_FAILPOINT("serve.scenario.relabel");
  relabel_engine_->set_gac_weights(key.gac);
  uint64_t spq_before = relabel_engine_->spq_count();
  relabel_engine_->RelabelZones(state->todam, affected, state->pois, key.cost,
                               next.interval().day, &state->labels);
  state->build_spqs = relabel_engine_->spq_count() - spq_before;
  state->relabeled_zones = static_cast<uint32_t>(affected.size());
  return state;
}

std::shared_ptr<const ExactLabelState> ScenarioStore::PatchRemove(
    const Scenario& next, const LabelKey& key, const ExactLabelState& parent,
    uint32_t poi_id) {
  // Fault site: mirror of serve.scenario.patch_add for the remove path.
  STAQ_FAILPOINT("serve.scenario.patch_remove");
  auto state = std::make_shared<ExactLabelState>(parent);
  auto it = std::find_if(
      state->pois.begin(), state->pois.end(),
      [poi_id](const synth::Poi& p) { return p.id == poi_id; });
  if (it == state->pois.end()) {
    // Carried-over states must contain every scenario POI of their
    // category; proceeding would erase(end()) and corrupt the TODAM.
    std::fprintf(stderr,
                 "PatchRemove: POI %u absent from parent label state\n",
                 poi_id);
    std::abort();
  }
  const uint32_t index = static_cast<uint32_t>(it - state->pois.begin());
  state->pois.erase(it);

  std::vector<uint32_t> affected;
  state->todam.RemovePoiColumn(index, &affected);

  STAQ_FAILPOINT("serve.scenario.relabel");
  relabel_engine_->set_gac_weights(key.gac);
  uint64_t spq_before = relabel_engine_->spq_count();
  relabel_engine_->RelabelZones(state->todam, affected, state->pois, key.cost,
                               next.interval().day, &state->labels);
  state->build_spqs = relabel_engine_->spq_count() - spq_before;
  state->relabeled_zones = static_cast<uint32_t>(affected.size());
  return state;
}

ScenarioStore::MutationReport ScenarioStore::AddPoi(
    synth::PoiCategory category, const geo::Point& position) {
  std::lock_guard<std::mutex> mutation(mutation_mu_);
  util::Stopwatch watch;
  auto current = Acquire();

  synth::Poi poi;
  poi.id = next_poi_id_++;
  poi.category = category;
  poi.position = position;

  std::vector<synth::Poi> pois = current->pois();
  pois.push_back(poi);
  auto next = std::make_shared<Scenario>(current->epoch() + 1, network_city_,
                                         std::move(pois),
                                         current->offline_ptr());
  next->SetNetwork(network_version_, network_router_);

  MutationReport report;
  report.epoch = next->epoch();
  report.poi_id = poi.id;
  report.zones_total = static_cast<uint32_t>(base_->zones.size());
  for (const auto& [key, state] : current->MaterializedStates()) {
    if (key.category != category) {
      next->SeedLabelState(key, state);
      ++report.states_shared;
      continue;
    }
    auto patched = PatchAdd(*next, key, *state, poi);
    report.spqs += patched->build_spqs;
    report.zones_relabeled += patched->relabeled_zones;
    ++report.states_patched;
    next->SeedLabelState(key, std::move(patched));
  }
  Install(std::move(next));
  report.seconds = watch.ElapsedSeconds();
  return report;
}

util::Result<ScenarioStore::MutationReport> ScenarioStore::RemovePoi(
    uint32_t poi_id) {
  std::lock_guard<std::mutex> mutation(mutation_mu_);
  util::Stopwatch watch;
  auto current = Acquire();

  auto it = std::find_if(
      current->pois().begin(), current->pois().end(),
      [poi_id](const synth::Poi& p) { return p.id == poi_id; });
  if (it == current->pois().end()) {
    return util::Status::NotFound("no POI with id " + std::to_string(poi_id));
  }
  const synth::PoiCategory category = it->category;

  std::vector<synth::Poi> pois = current->pois();
  pois.erase(pois.begin() + (it - current->pois().begin()));
  auto next = std::make_shared<Scenario>(current->epoch() + 1, network_city_,
                                         std::move(pois),
                                         current->offline_ptr());
  next->SetNetwork(network_version_, network_router_);

  MutationReport report;
  report.epoch = next->epoch();
  report.poi_id = poi_id;
  report.zones_total = static_cast<uint32_t>(base_->zones.size());
  for (const auto& [key, state] : current->MaterializedStates()) {
    if (key.category != category) {
      next->SeedLabelState(key, state);
      ++report.states_shared;
      continue;
    }
    auto patched = PatchRemove(*next, key, *state, poi_id);
    report.spqs += patched->build_spqs;
    report.zones_relabeled += patched->relabeled_zones;
    ++report.states_patched;
    next->SeedLabelState(key, std::move(patched));
  }
  Install(std::move(next));
  report.seconds = watch.ElapsedSeconds();
  return report;
}

ScenarioStore::MutationReport ScenarioStore::SetInterval(
    const gtfs::TimeInterval& interval) {
  std::lock_guard<std::mutex> mutation(mutation_mu_);
  util::Stopwatch watch;
  auto current = Acquire();

  auto offline = std::make_shared<const OfflineState>(*network_city_, interval,
                                                      network_iso_);
  auto next = std::make_shared<Scenario>(current->epoch() + 1, network_city_,
                                         current->pois(), std::move(offline));
  next->SetNetwork(network_version_, network_router_);
  // Mutation discipline: any swap of offline structures drops the writer
  // engine's cached access stops. Today the walk table is feed-derived and
  // survives interval switches, but the invalidation keeps the cache from
  // outliving any future mutation that does touch stop geometry.
  relabel_engine_->InvalidateAccessStopCache();

  MutationReport report;
  report.epoch = next->epoch();
  report.zones_total = static_cast<uint32_t>(base_->zones.size());
  Install(std::move(next));
  report.seconds = watch.ElapsedSeconds();
  return report;
}

std::shared_ptr<const ExactLabelState> ScenarioStore::PatchNetwork(
    const Scenario& next, const LabelKey& key, const ExactLabelState& parent,
    const std::vector<uint32_t>& affected, core::LabelingEngine* engine) {
  // The TODAM is demand-side (zones x POIs x interval) and carries over
  // verbatim; only the screened zones resolve their trips again, against
  // the engine built over the new network. Zones outside `affected` could
  // never have used a removed connection, so their labels are already the
  // exact labels of the mutated feed.
  auto state = std::make_shared<ExactLabelState>(parent);
  engine->set_gac_weights(key.gac);
  uint64_t spq_before = engine->spq_count();
  engine->RelabelZones(state->todam, affected, state->pois, key.cost,
                       next.interval().day, &state->labels);
  state->build_spqs = engine->spq_count() - spq_before;
  state->relabeled_zones = static_cast<uint32_t>(affected.size());
  return state;
}

util::Result<ScenarioStore::MutationReport> ScenarioStore::ApplyTimetable(
    scenario::TransformResult transformed, uint32_t target,
    util::Stopwatch watch) {
  auto current = Acquire();

  // Screen on the OLD timetable: only zones that could have reached a
  // removed departure event can change label.
  scenario::ImpactInputs impact;
  impact.city = network_city_.get();
  impact.feed = &network_city_->feed;
  impact.walk = &relabel_router_->walk_table();
  impact.interval = current->interval();
  impact.removed_trips = std::move(transformed.removed_trips);
  impact.closed_stop = transformed.closed_stop;
  const std::vector<uint32_t> affected = scenario::AffectedZones(impact);

  // Fault site: the network patch failing before any member state changes.
  // Everything below is built aside; an abort here (or in any patch) leaves
  // the current epoch and network untouched.
  STAQ_FAILPOINT("serve.scenario.patch_network");

  synth::City disrupted = *network_city_;
  disrupted.feed = std::move(transformed.feed);
  auto city = std::make_shared<const synth::City>(std::move(disrupted));
  router::RouterOptions router_opts =
      RebindConnections(network_router_, &city->feed);
  auto router = std::make_unique<router::Router>(&city->feed, router_opts);
  auto engine =
      std::make_unique<core::LabelingEngine>(city.get(), router.get());
  auto offline = RebuildOfflineKeepingIsochrones(*city, current->offline());

  auto next = std::make_shared<Scenario>(current->epoch() + 1, city,
                                         current->pois(), std::move(offline));
  next->SetNetwork(network_version_ + 1, router_opts);

  MutationReport report;
  report.epoch = next->epoch();
  report.poi_id = target;
  report.zones_total = static_cast<uint32_t>(base_->zones.size());
  for (const auto& [key, state] : current->MaterializedStates()) {
    auto patched = PatchNetwork(*next, key, *state, affected, engine.get());
    report.spqs += patched->build_spqs;
    report.zones_relabeled += patched->relabeled_zones;
    ++report.states_patched;
    next->SeedLabelState(key, std::move(patched));
  }

  // Commit: every patch succeeded, so the new network becomes the store's
  // current one in the same breath as the epoch install.
  network_city_ = std::move(city);
  network_router_ = std::move(router_opts);
  relabel_router_ = std::move(router);
  relabel_engine_ = std::move(engine);
  ++network_version_;
  Install(std::move(next));
  report.seconds = watch.ElapsedSeconds();
  return report;
}

util::Result<ScenarioStore::MutationReport> ScenarioStore::SuspendRoute(
    uint32_t route) {
  std::lock_guard<std::mutex> mutation(mutation_mu_);
  util::Stopwatch watch;
  auto transformed = scenario::SuspendRoute(network_city_->feed, route);
  if (!transformed.ok()) return transformed.status();
  return ApplyTimetable(std::move(transformed).value(), route, watch);
}

util::Result<ScenarioStore::MutationReport> ScenarioStore::CloseStop(
    uint32_t stop) {
  std::lock_guard<std::mutex> mutation(mutation_mu_);
  util::Stopwatch watch;
  auto transformed = scenario::CloseStop(network_city_->feed, stop);
  if (!transformed.ok()) return transformed.status();
  return ApplyTimetable(std::move(transformed).value(), stop, watch);
}

util::Result<ScenarioStore::MutationReport> ScenarioStore::ScaleHeadway(
    uint32_t route, uint32_t factor) {
  std::lock_guard<std::mutex> mutation(mutation_mu_);
  util::Stopwatch watch;
  auto transformed =
      scenario::ScaleHeadway(network_city_->feed, route, factor);
  if (!transformed.ok()) return transformed.status();
  return ApplyTimetable(std::move(transformed).value(), route, watch);
}

util::Result<ScenarioStore::MutationReport> ScenarioStore::SetFare(
    uint32_t route, double fare) {
  std::lock_guard<std::mutex> mutation(mutation_mu_);
  util::Stopwatch watch;
  auto transformed = scenario::SetFlatFare(network_city_->feed, route, fare);
  if (!transformed.ok()) return transformed.status();
  auto current = Acquire();

  // Same fault site as the timetable path: nothing below mutates store
  // state until the commit block.
  STAQ_FAILPOINT("serve.scenario.patch_network");

  synth::City disrupted = *network_city_;
  disrupted.feed = std::move(transformed).value();
  auto city = std::make_shared<const synth::City>(std::move(disrupted));
  router::RouterOptions router_opts =
      RebindConnections(network_router_, &city->feed);
  auto router = std::make_unique<router::Router>(&city->feed, router_opts);
  auto engine =
      std::make_unique<core::LabelingEngine>(city.get(), router.get());
  auto offline = RebuildOfflineKeepingIsochrones(*city, current->offline());

  auto next = std::make_shared<Scenario>(current->epoch() + 1, city,
                                         current->pois(), std::move(offline));
  next->SetNetwork(network_version_ + 1, router_opts);

  // Fares enter GAC only: journey-time states are shared verbatim (their
  // rebuild over the new feed would reproduce the same bits), while every
  // generalized-cost state relabels all zones — any trip may board the
  // repriced route mid-journey, so no cheaper screen is sound.
  const std::vector<uint32_t> all = AllZones(base_->zones.size());
  MutationReport report;
  report.epoch = next->epoch();
  report.poi_id = route;
  report.zones_total = static_cast<uint32_t>(base_->zones.size());
  for (const auto& [key, state] : current->MaterializedStates()) {
    if (key.cost != core::CostKind::kGeneralizedCost) {
      next->SeedLabelState(key, state);
      ++report.states_shared;
      continue;
    }
    auto patched = PatchNetwork(*next, key, *state, all, engine.get());
    report.spqs += patched->build_spqs;
    report.zones_relabeled += patched->relabeled_zones;
    ++report.states_patched;
    next->SeedLabelState(key, std::move(patched));
  }

  network_city_ = std::move(city);
  network_router_ = std::move(router_opts);
  relabel_router_ = std::move(router);
  relabel_engine_ = std::move(engine);
  ++network_version_;
  Install(std::move(next));
  report.seconds = watch.ElapsedSeconds();
  return report;
}

util::Result<ScenarioStore::MutationReport> ScenarioStore::ScaleWalkSpeed(
    double factor) {
  std::lock_guard<std::mutex> mutation(mutation_mu_);
  util::Stopwatch watch;
  if (!(factor > 0.0) || !std::isfinite(factor)) {
    return util::Status::InvalidArgument(
        "walk-speed factor must be positive and finite");
  }
  auto current = Acquire();

  STAQ_FAILPOINT("serve.scenario.patch_network");

  // Same city and feed (the connection array is shared); only the walk
  // parameters change — the router's walk table and the isochrone speed ω
  // scale together so online routing and the offline reachability
  // structures describe the same pedestrian.
  router::RouterOptions router_opts = network_router_;
  router_opts.walk.speed_mps *= factor;
  core::IsochroneConfig iso = network_iso_;
  iso.omega_kph *= factor;
  auto router =
      std::make_unique<router::Router>(&network_city_->feed, router_opts);
  auto engine = std::make_unique<core::LabelingEngine>(network_city_.get(),
                                                       router.get());
  // The isochrone config changed, so this is a full offline build.
  auto offline = std::make_shared<const OfflineState>(
      *network_city_, current->interval(), iso);

  auto next = std::make_shared<Scenario>(current->epoch() + 1, network_city_,
                                         current->pois(), std::move(offline));
  next->SetNetwork(network_version_ + 1, router_opts);

  // Every journey has walk legs, so every zone of every state relabels.
  const std::vector<uint32_t> all = AllZones(base_->zones.size());
  MutationReport report;
  report.epoch = next->epoch();
  report.zones_total = static_cast<uint32_t>(base_->zones.size());
  for (const auto& [key, state] : current->MaterializedStates()) {
    auto patched = PatchNetwork(*next, key, *state, all, engine.get());
    report.spqs += patched->build_spqs;
    report.zones_relabeled += patched->relabeled_zones;
    ++report.states_patched;
    next->SeedLabelState(key, std::move(patched));
  }

  network_router_ = std::move(router_opts);
  network_iso_ = iso;
  walk_scale_.store(walk_scale_.load(std::memory_order_relaxed) * factor,
                    std::memory_order_release);
  relabel_router_ = std::move(router);
  relabel_engine_ = std::move(engine);
  ++network_version_;
  Install(std::move(next));
  report.seconds = watch.ElapsedSeconds();
  return report;
}

}  // namespace staq::serve
