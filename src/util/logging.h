// Lightweight leveled logging to stderr. Benches use Info-level progress
// lines; the library itself logs sparingly (warnings only).
#pragma once

#include <string>

namespace staq::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits `message` to stderr with a level prefix if `level` is enabled.
void Log(LogLevel level, const std::string& message);

inline void LogDebug(const std::string& m) { Log(LogLevel::kDebug, m); }
inline void LogInfo(const std::string& m) { Log(LogLevel::kInfo, m); }
inline void LogWarning(const std::string& m) { Log(LogLevel::kWarning, m); }
inline void LogError(const std::string& m) { Log(LogLevel::kError, m); }

}  // namespace staq::util
