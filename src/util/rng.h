// Deterministic pseudo-random number generation.
//
// Every stochastic component in staq (city synthesis, trip sampling, model
// initialisation, data splits) takes an explicit seed and draws from these
// generators, so that a whole experiment is reproducible bit-for-bit from a
// single integer. We deliberately avoid std::mt19937 + std::*_distribution
// because their outputs are not specified identically across standard
// library implementations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace staq::util {

/// SplitMix64: tiny, fast generator used for seeding and cheap hashing.
/// Passes BigCrush when used as a 64-bit generator. (Steele et al., 2014.)
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256** — the project's main generator. Fast, 256-bit state,
/// excellent statistical quality (Blackman & Vigna, 2018).
class Rng {
 public:
  /// Seeds the 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection
  /// method. `bound` must be > 0.
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second variate).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  /// Bernoulli draw with probability `p` of returning true.
  bool Bernoulli(double p);

  /// Poisson draw (Knuth's method for small means, normal approx above 64).
  int Poisson(double mean);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformU64(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in selection order.
  /// Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; children with distinct tags are
  /// statistically independent of each other and of the parent's stream.
  Rng Fork(uint64_t tag);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace staq::util
