// Time source seam for deterministic tests.
//
// Production code that reasons about elapsed time — request deadlines,
// cache aging, the Table-II stopwatches — reads a Clock instead of calling
// std::chrono::steady_clock::now() directly. The default implementation
// (Clock::Real()) is the real monotonic clock and costs one virtual call;
// tests substitute a VirtualClock and *advance time explicitly*, so
// deadline-expiry and age-out behaviour is exercised on demand rather than
// by sleeping and hoping the scheduler cooperates.
#pragma once

#include <atomic>
#include <chrono>

namespace staq::util {

/// Monotonic time source. Implementations must be safe to read from any
/// thread.
class Clock {
 public:
  using Duration = std::chrono::steady_clock::duration;
  using TimePoint = std::chrono::steady_clock::time_point;

  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;

  /// Seconds elapsed since `start` on this clock.
  double SecondsSince(TimePoint start) const {
    return std::chrono::duration<double>(Now() - start).count();
  }

  /// The process-wide real monotonic clock (steady_clock). Never null.
  static const Clock* Real();
};

/// Test clock: Now() returns a fixed origin plus an explicitly advanced
/// offset. Advancing is atomic, so tests may move time forward while worker
/// threads read it; time never goes backwards.
class VirtualClock final : public Clock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(TimePoint origin) : origin_(origin) {}

  TimePoint Now() const override {
    return origin_ + Duration(offset_.load(std::memory_order_acquire));
  }

  void Advance(Duration d) {
    offset_.fetch_add(d.count(), std::memory_order_acq_rel);
  }

  void AdvanceSeconds(double seconds) {
    Advance(std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(seconds)));
  }

 private:
  TimePoint origin_{};  // steady_clock epoch by default
  std::atomic<Duration::rep> offset_{0};
};

}  // namespace staq::util
