// Status / Result error model for staq.
//
// Fallible library operations return Status (or Result<T> when they also
// produce a value) rather than throwing. This mirrors the Arrow / RocksDB
// convention: errors are explicit values the caller must consume, and the
// hot path (routing, feature extraction) stays exception-free.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace staq::util {

/// Error categories for Status. Kept deliberately small; the message string
/// carries the specifics.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kResourceExhausted,  // admission control: queue full, capacity reached
  kDeadlineExceeded,   // request deadline elapsed before completion
  kCancelled,          // request withdrawn before it started
  kDataLoss,           // persisted data unreadable: checksum mismatch,
                       // truncation, torn write (snapshot store)
  kUnavailable,        // transport: peer unreachable, connection lost,
                       // replica behind the requested sequence — retryable
                       // against another replica (net error mapping)
  kAborted,            // operation gave up to preserve consistency: replayed
                       // mutation diverged from its log record, WAL refused
                       // an out-of-order append
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: either OK or a code plus message.
///
/// Status is cheap to copy when OK (no allocation) and cheap to move always.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  /// Builds a status with an explicit code — the wire-decode path, where a
  /// remote error arrives as a code value plus message. kOk drops the
  /// message (an OK status never carries one).
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error union. `ok()` implies `value()` is valid; accessing the
/// value of a failed Result is a programming error (asserts in debug).
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "use Result(T) for success");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;           // OK iff value_ holds a value.
  std::optional<T> value_;  // Engaged iff status_ is OK.
};

}  // namespace staq::util

/// Propagates a non-OK Status from an expression to the caller.
#define STAQ_RETURN_NOT_OK(expr)                   \
  do {                                             \
    ::staq::util::Status _st = (expr);             \
    if (!_st.ok()) return _st;                     \
  } while (0)
