// Minimal CSV table writer used by benches to emit the rows/series the
// paper's tables and figures report.
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace staq::util {

/// Parses RFC-4180 CSV text (quoted fields, embedded separators/quotes/
/// newlines, CRLF endings) into rows of fields. The first row is NOT
/// treated specially — callers interpret headers. Returns InvalidArgument
/// on malformed quoting.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text);

/// Reads and parses a CSV file. IoError if unreadable.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// An in-memory rectangular table with a header row, serialisable to CSV.
///
/// Cells are stored as strings; numeric convenience setters format with
/// fixed precision. Fields containing commas, quotes or newlines are quoted
/// per RFC 4180 on output.
class CsvTable {
 public:
  /// Creates a table with the given column names.
  explicit CsvTable(std::vector<std::string> header);

  size_t num_columns() const { return header_.size(); }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

  /// Appends a row; must have exactly num_columns() cells.
  Status AddRow(std::vector<std::string> cells);

  /// Serialises the header and all rows to RFC-4180 CSV text.
  std::string ToCsv() const;

  /// Writes ToCsv() to `path`, creating/truncating the file.
  Status WriteFile(const std::string& path) const;

  /// Formats a double with `precision` fractional digits.
  static std::string Num(double v, int precision = 3);
  static std::string Num(int64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace staq::util
