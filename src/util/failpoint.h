// Deterministic fault injection.
//
// Production code marks its interesting failure sites with
// STAQ_FAILPOINT("dotted.site.name"). In a normal build the macro compiles
// to nothing; with -DSTAQ_FAILPOINTS=1 (CMake option STAQ_FAILPOINTS,
// default ON when tests are built) each site calls into a process-wide
// registry that tests configure:
//
//   util::ScopedFailPoint fp("serve.cache.put",
//                            util::FailPointConfig::Throw("disk full"));
//   ... exercise the server; the Nth hit of the site throws ...
//
// Three actions are supported:
//   * kThrow — throw FailPointError at the site (exception-path testing);
//   * kDelay — sleep for a fixed duration (widen race windows);
//   * kBlock — park the hitting thread until the site is disarmed
//              (deterministic "worker is busy right now" fixtures).
// A trip schedule (skip / every / limit) selects which hits fire, so a test
// can fail only the third insert, or every insert, or exactly one.
//
// The registry is intentionally test-facing: sites are registered lazily on
// first evaluation, arming an unknown site is fine (it fires when the code
// path is reached), and everything is safe to call from any thread. The
// catalog of shipped sites lives in DESIGN.md §8.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace staq::util {

/// Exception thrown by a site armed with Action::kThrow.
class FailPointError : public std::runtime_error {
 public:
  explicit FailPointError(const std::string& what)
      : std::runtime_error(what) {}
};

/// What an armed site does when a hit matches its trip schedule.
struct FailPointConfig {
  enum class Action : uint8_t {
    kThrow,  // throw FailPointError("<site>: <message>")
    kDelay,  // sleep for `delay`, then continue
    kBlock,  // block until the site is disarmed, then continue
  };

  Action action = Action::kThrow;
  std::string message = "injected failure";
  std::chrono::milliseconds delay{0};

  /// Trip schedule, evaluated over the hits since arming: ignore the first
  /// `skip` hits, then fire on every `every`-th of the remainder, at most
  /// `limit` times (0 = unlimited).
  uint64_t skip = 0;
  uint64_t every = 1;
  uint64_t limit = 0;

  static FailPointConfig Throw(std::string message = "injected failure") {
    FailPointConfig config;
    config.action = Action::kThrow;
    config.message = std::move(message);
    return config;
  }
  static FailPointConfig ThrowOnce(std::string message = "injected failure") {
    FailPointConfig config = Throw(std::move(message));
    config.limit = 1;
    return config;
  }
  static FailPointConfig Delay(std::chrono::milliseconds delay) {
    FailPointConfig config;
    config.action = Action::kDelay;
    config.delay = delay;
    return config;
  }
  static FailPointConfig Block() {
    FailPointConfig config;
    config.action = Action::kBlock;
    return config;
  }
};

/// Process-wide failpoint registry. All members are static and thread-safe.
class FailPoints {
 public:
  /// Arms `site` with `config`, replacing any previous arming (the hit
  /// counter the trip schedule runs against restarts at zero).
  static void Arm(const std::string& site, FailPointConfig config);

  /// Disarms `site`: future hits pass through and threads parked in a
  /// kBlock action are released. No-op when not armed.
  static void Disarm(const std::string& site);

  /// Disarms every site (test teardown belt-and-braces).
  static void DisarmAll();

  /// Total Evaluate() calls on `site` since process start (armed or not).
  static uint64_t HitCount(const std::string& site);

  /// Times `site`'s action actually fired since it was last armed.
  static uint64_t TripCount(const std::string& site);

  /// Threads currently parked inside `site`'s kBlock action. Lets a test
  /// wait until a worker has provably reached the site before acting.
  static uint64_t BlockedCount(const std::string& site);

  /// Every site name Evaluate() has ever seen, sorted (the live catalog).
  static std::vector<std::string> Registered();

  /// Injection-site entry point — use the STAQ_FAILPOINT macro instead of
  /// calling this directly so disabled builds compile the site away.
  static void Evaluate(const char* site);
};

/// Arms a site for the current scope; disarms (and thereby releases any
/// blocked threads) on destruction.
class ScopedFailPoint {
 public:
  ScopedFailPoint(std::string site, FailPointConfig config)
      : site_(std::move(site)) {
    FailPoints::Arm(site_, std::move(config));
  }
  ~ScopedFailPoint() { FailPoints::Disarm(site_); }

  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

}  // namespace staq::util

#if defined(STAQ_FAILPOINTS) && STAQ_FAILPOINTS
#define STAQ_FAILPOINT(site) ::staq::util::FailPoints::Evaluate(site)
#else
#define STAQ_FAILPOINT(site) ((void)0)
#endif
