#include "util/clock.h"

namespace staq::util {

namespace {

class RealClock final : public Clock {
 public:
  TimePoint Now() const override { return std::chrono::steady_clock::now(); }
};

}  // namespace

const Clock* Clock::Real() {
  static const RealClock clock;
  return &clock;
}

}  // namespace staq::util
