// Small string helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace staq::util {

/// Splits `text` on `sep`; adjacent separators yield empty fields.
std::vector<std::string> Split(const std::string& text, char sep);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(const std::string& text);

/// True if `text` starts with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace staq::util
