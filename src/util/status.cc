#include "util/status.h"

namespace staq::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace staq::util
