// XXH64 — the one hash staq uses for on-disk and on-wire integrity.
//
// Yann Collet's xxHash, reimplemented from the public specification (the
// codebase must stay dependency-free). XXH64 is the family ClickHouse and
// LZ4 frame use for block integrity: non-cryptographic, ~word-at-a-time
// fast, and strong enough that a torn write, a truncated tail, or a
// flipped bit is detected with probability 1 - 2^-64 per block. The
// snapshot store, the mutation WAL, and the wire protocol all checksum
// with it; the query router also uses it as its shard hash.
#pragma once

#include <cstddef>
#include <cstdint>

namespace staq::util {

/// XXH64 digest of `data[0..size)` with the given seed.
uint64_t XxHash64(const void* data, size_t size, uint64_t seed = 0);

}  // namespace staq::util
