#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace staq::util {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.Next();
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  assert(bound > 0);
  // Lemire (2019): multiply-shift with rejection to remove modulo bias.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<int64_t>(NextU64());
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so the log is finite.
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = r * std::sin(kTwoPi * u2);
  has_cached_normal_ = true;
  return r * std::cos(kTwoPi * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  assert(rate > 0);
  return -std::log(1.0 - UniformDouble()) / rate;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

int Rng::Poisson(double mean) {
  assert(mean >= 0);
  if (mean <= 0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // trip-count sampling this is used for.
    double draw = Normal(mean, std::sqrt(mean));
    return draw < 0 ? 0 : static_cast<int>(draw + 0.5);
  }
  double limit = std::exp(-mean);
  double prod = UniformDouble();
  int n = 0;
  while (prod > limit) {
    prod *= UniformDouble();
    ++n;
  }
  return n;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher–Yates: first k slots end up holding the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformU64(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork(uint64_t tag) {
  // Mix the parent stream with the tag through SplitMix64 so forks with
  // different tags diverge immediately.
  SplitMix64 sm(NextU64() ^ (tag * 0x9e3779b97f4a7c15ULL + 0x165667b19e3779f9ULL));
  return Rng(sm.Next());
}

}  // namespace staq::util
