// Always-on invariant checks for contract violations that release builds
// must not turn into undefined behaviour.
//
// The Status/Result model (util/status.h) covers *recoverable* failures the
// caller is expected to handle. STAQ_CHECK covers programming errors —
// indexing a Matrix row out of range, transforming with a scaler fitted to
// a different column count — where continuing would read or write wild
// memory. A plain assert() compiles away under NDEBUG (the default Release
// build), leaving exactly the UB this macro exists to rule out, so these
// checks stay on in every build type and abort loudly instead.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace staq::util::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const char* message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s — %s\n", file, line,
               condition, message);
  std::abort();
}

}  // namespace staq::util::internal

/// Aborts with a message when `cond` is false, in every build type.
/// `msg` is a string literal naming the violated contract. Keep this on
/// per-call (not per-element) paths; the predictable branch costs nothing
/// next to any real work the call does.
#define STAQ_CHECK(cond, msg)                                                \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      ::staq::util::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                        \
  } while (0)
