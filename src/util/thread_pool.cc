#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace staq::util {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task routes exceptions into the future
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> future = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  size_t workers = std::min(num_threads(), n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Dynamic chunking: small enough for balance, large enough that the
  // shared counter is touched rarely.
  size_t grain = std::max<size_t>(1, n / (workers * 8));
  auto next = std::make_shared<std::atomic<size_t>>(0);
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    futures.push_back(Submit([next, n, grain, &body] {
      while (true) {
        size_t begin = next->fetch_add(grain);
        if (begin >= n) break;
        size_t end = std::min(n, begin + grain);
        for (size_t i = begin; i < end; ++i) body(i);
      }
    }));
  }
  // Wait for every chunk before rethrowing: the tasks reference `body`,
  // which lives in the caller's frame.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace staq::util
