#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

#include "util/failpoint.h"

namespace staq::util {

/// Shared state behind a TaskHandle: a tiny monitor so Wait/Cancel need no
/// future plumbing (a cancelled packaged_task would surface as
/// broken_promise rather than a clean "never ran").
struct TaskHandle::Shared {
  std::mutex mu;
  std::condition_variable cv;
  TaskState state = TaskState::kQueued;
  std::exception_ptr error;
};

TaskState TaskHandle::state() const {
  if (shared_ == nullptr) return TaskState::kDone;
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->state;
}

bool TaskHandle::Cancel() {
  if (shared_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(shared_->mu);
  if (shared_->state != TaskState::kQueued) return false;
  shared_->state = TaskState::kCancelled;
  shared_->cv.notify_all();
  return true;
}

void TaskHandle::Wait() {
  if (shared_ == nullptr) return;
  std::unique_lock<std::mutex> lock(shared_->mu);
  shared_->cv.wait(lock, [this] {
    return shared_->state == TaskState::kDone ||
           shared_->state == TaskState::kCancelled;
  });
  if (shared_->error) {
    std::exception_ptr error = shared_->error;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::EnablePerturbation(const PerturbOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  perturb_ = options;
  perturb_rng_.seed(options.seed);
}

ThreadPool::Job ThreadPool::PopJob(uint32_t* delay_us) {
  // Caller holds mu_ and guarantees !queue_.empty().
  size_t index = 0;
  *delay_us = 0;
  if (perturb_.has_value()) {
    if (perturb_->reorder && queue_.size() > 1) {
      index = perturb_rng_() % queue_.size();
    }
    if (perturb_->max_delay_us > 0) {
      *delay_us =
          static_cast<uint32_t>(perturb_rng_() % (perturb_->max_delay_us + 1));
    }
  }
  Job job = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  return job;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Job job;
    uint32_t delay_us = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      job = PopJob(&delay_us);
    }
    if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
    RunJob(job);
  }
}

void ThreadPool::RunJob(Job& job) {
  if (job.handle == nullptr) {
    job.task();  // packaged_task routes exceptions into the future
    return;
  }
  {
    std::lock_guard<std::mutex> lock(job.handle->mu);
    if (job.handle->state == TaskState::kCancelled) return;  // withdrawn
    job.handle->state = TaskState::kRunning;
  }
  try {
    job.task();
  } catch (...) {
    // packaged_task never throws here; keep the belt anyway.
  }
  // The packaged_task captured any exception; surface it through the handle
  // so Wait() can rethrow without a future.
  std::exception_ptr error;
  try {
    job.task.get_future().get();
  } catch (const std::future_error&) {
    // future already consumed elsewhere; nothing to propagate
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(job.handle->mu);
    job.handle->error = error;
    job.handle->state = TaskState::kDone;
  }
  job.handle->cv.notify_all();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> future = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Job{std::move(wrapped), nullptr});
  }
  cv_.notify_one();
  return future;
}

TaskHandle ThreadPool::SubmitHandle(std::function<void()> task) {
  // Fault site: a throw here models submission failing before the task is
  // ever queued (caller still holds everything it handed in).
  STAQ_FAILPOINT("util.thread_pool.submit");
  TaskHandle handle;
  handle.shared_ = std::make_shared<TaskHandle::Shared>();
  std::packaged_task<void()> wrapped(std::move(task));
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Job{std::move(wrapped), handle.shared_});
  }
  cv_.notify_one();
  return handle;
}

size_t ThreadPool::PendingTasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  size_t workers = std::min(num_threads(), n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Dynamic chunking: small enough for balance, large enough that the
  // shared counter is touched rarely.
  size_t grain = std::max<size_t>(1, n / (workers * 8));
  auto next = std::make_shared<std::atomic<size_t>>(0);
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    futures.push_back(Submit([next, n, grain, &body] {
      while (true) {
        size_t begin = next->fetch_add(grain);
        if (begin >= n) break;
        size_t end = std::min(n, begin + grain);
        for (size_t i = begin; i < end; ++i) body(i);
      }
    }));
  }
  // Wait for every chunk before rethrowing: the tasks reference `body`,
  // which lives in the caller's frame.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

PerturbingExecutor::PerturbingExecutor(size_t num_threads,
                                       const Options& options)
    : options_(options),
      submit_rng_(options.perturb.seed ^ 0x9e3779b97f4a7c15ull),
      pool_(num_threads) {
  pool_.EnablePerturbation(options.perturb);
}

TaskHandle PerturbingExecutor::SubmitHandle(std::function<void()> task) {
  if (options_.max_submit_delay_us > 0) {
    uint32_t delay_us;
    {
      std::lock_guard<std::mutex> lock(submit_mu_);
      delay_us = static_cast<uint32_t>(submit_rng_() %
                                       (options_.max_submit_delay_us + 1));
    }
    if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
  }
  return pool_.SubmitHandle(std::move(task));
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace staq::util
