#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace staq::util {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace staq::util
