#include "util/csv.h"

#include <cstdio>
#include <fstream>

namespace staq::util {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool row_has_content = false;

  size_t i = 0;
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';  // escaped quote
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      if (!field.empty() || field_was_quoted) {
        return Status::InvalidArgument("quote inside unquoted field at byte " +
                                       std::to_string(i));
      }
      in_quotes = true;
      field_was_quoted = true;
      row_has_content = true;
    } else if (c == ',') {
      end_field();
      row_has_content = true;
    } else if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') {
      end_row();
      ++i;
    } else if (c == '\n' || c == '\r') {
      end_row();
    } else {
      field += c;
      row_has_content = true;
    }
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  // Trailing row without final newline.
  if (row_has_content || !row.empty() || !field.empty()) {
    end_row();
  }
  return rows;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return ParseCsv(content);
}

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

Status CsvTable::AddRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    return Status::InvalidArgument("row has " + std::to_string(cells.size()) +
                                   " cells, expected " +
                                   std::to_string(header_.size()));
  }
  rows_.push_back(std::move(cells));
  return Status::OK();
}

std::string CsvTable::ToCsv() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ',';
      out += QuoteField(cells[i]);
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

Status CsvTable::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  out << ToCsv();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

std::string CsvTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string CsvTable::Num(int64_t v) { return std::to_string(v); }

}  // namespace staq::util
