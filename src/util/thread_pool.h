// Persistent worker-thread pool.
//
// Labeling dominates the solution's run time (paper §IV-E); sharding it
// used to spawn-and-join fresh std::threads per call. This pool keeps a
// fixed set of workers alive for the process and feeds them from a single
// mutex-guarded queue — no work stealing, because the tasks it carries
// (zone shards, bench repetitions) are coarse enough that one queue never
// becomes the bottleneck. Used by parallel labeling and the benches.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace staq::util {

/// Lifecycle of a handle-tracked task (see ThreadPool::SubmitHandle).
enum class TaskState : uint8_t {
  kQueued,     // accepted, not yet picked up by a worker
  kRunning,    // a worker is executing it
  kDone,       // finished (possibly with a captured exception)
  kCancelled,  // withdrawn before any worker started it
};

/// Handle to one submitted task: observe its state, wait for completion, or
/// cancel it while it is still queued. Copyable; all copies share state. A
/// default-constructed handle is empty (valid() == false).
class TaskHandle {
 public:
  TaskHandle() = default;

  bool valid() const { return shared_ != nullptr; }
  TaskState state() const;

  /// Withdraws the task if no worker has started it yet. Returns true on
  /// success (the task will never run); false when it is already running,
  /// done, or cancelled.
  bool Cancel();

  /// Blocks until the task is done or cancelled, then rethrows anything the
  /// task threw. Returns immediately on an empty handle.
  void Wait();

 private:
  friend class ThreadPool;
  struct Shared;
  std::shared_ptr<Shared> shared_;
};

/// Fixed-size pool of persistent workers. Submit is safe from any thread;
/// a task's exception is captured into its future (the worker survives).
/// The destructor finishes already-queued tasks before joining.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `task`. The returned future resolves when the task finishes
  /// and rethrows anything the task threw.
  std::future<void> Submit(std::function<void()> task);

  /// Enqueues `task` and returns a cancellable handle to it. Used by
  /// serving-style callers that need admission control (PendingTasks) and
  /// the ability to withdraw work whose deadline has already passed while
  /// it is still queued.
  TaskHandle SubmitHandle(std::function<void()> task);

  /// Tasks accepted but not yet started. Cancelled-but-unpopped entries are
  /// included until a worker discards them, so this is an upper bound —
  /// exactly the conservative reading admission control wants.
  size_t PendingTasks() const;

  /// Runs body(i) for every i in [0, n), handing dynamically sized chunks
  /// to the workers; blocks until all indices are done. Rethrows the first
  /// task exception after every chunk has finished. Runs inline on the
  /// caller when the pool has a single worker (or n is tiny), so it is
  /// safe at any machine size.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Process-wide pool sized to the hardware concurrency, created on first
  /// use and joined at exit. Callers needing deterministic sizing (tests)
  /// construct their own pool instead.
  static ThreadPool& Shared();

 private:
  /// One queue entry: the work plus an optional handle state (null for
  /// plain Submit tasks).
  struct Job {
    std::packaged_task<void()> task;
    std::shared_ptr<TaskHandle::Shared> handle;
  };

  void WorkerLoop();
  void RunJob(Job& job);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace staq::util
