// Persistent worker-thread pool.
//
// Labeling dominates the solution's run time (paper §IV-E); sharding it
// used to spawn-and-join fresh std::threads per call. This pool keeps a
// fixed set of workers alive for the process and feeds them from a single
// mutex-guarded queue — no work stealing, because the tasks it carries
// (zone shards, bench repetitions) are coarse enough that one queue never
// becomes the bottleneck. Used by parallel labeling and the benches.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace staq::util {

/// Fixed-size pool of persistent workers. Submit is safe from any thread;
/// a task's exception is captured into its future (the worker survives).
/// The destructor finishes already-queued tasks before joining.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `task`. The returned future resolves when the task finishes
  /// and rethrows anything the task threw.
  std::future<void> Submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), handing dynamically sized chunks
  /// to the workers; blocks until all indices are done. Rethrows the first
  /// task exception after every chunk has finished. Runs inline on the
  /// caller when the pool has a single worker (or n is tiny), so it is
  /// safe at any machine size.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Process-wide pool sized to the hardware concurrency, created on first
  /// use and joined at exit. Callers needing deterministic sizing (tests)
  /// construct their own pool instead.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace staq::util
