// Persistent worker-thread pool.
//
// Labeling dominates the solution's run time (paper §IV-E); sharding it
// used to spawn-and-join fresh std::threads per call. This pool keeps a
// fixed set of workers alive for the process and feeds them from a single
// mutex-guarded queue — no work stealing, because the tasks it carries
// (zone shards, bench repetitions) are coarse enough that one queue never
// becomes the bottleneck. Used by parallel labeling and the benches.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <thread>
#include <vector>

namespace staq::util {

/// Lifecycle of a handle-tracked task (see ThreadPool::SubmitHandle).
enum class TaskState : uint8_t {
  kQueued,     // accepted, not yet picked up by a worker
  kRunning,    // a worker is executing it
  kDone,       // finished (possibly with a captured exception)
  kCancelled,  // withdrawn before any worker started it
};

/// Handle to one submitted task: observe its state, wait for completion, or
/// cancel it while it is still queued. Copyable; all copies share state. A
/// default-constructed handle is empty (valid() == false).
class TaskHandle {
 public:
  TaskHandle() = default;

  bool valid() const { return shared_ != nullptr; }
  TaskState state() const;

  /// Withdraws the task if no worker has started it yet. Returns true on
  /// success (the task will never run); false when it is already running,
  /// done, or cancelled.
  bool Cancel();

  /// Blocks until the task is done or cancelled, then rethrows anything the
  /// task threw. Returns immediately on an empty handle.
  void Wait();

 private:
  friend class ThreadPool;
  struct Shared;
  std::shared_ptr<Shared> shared_;
};

/// Minimal task-execution seam shared by ThreadPool and test wrappers
/// (PerturbingExecutor): enough surface for serving-style callers to submit
/// cancellable work and do admission control, without pinning them to one
/// concrete pool type.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual TaskHandle SubmitHandle(std::function<void()> task) = 0;
  virtual size_t PendingTasks() const = 0;
  virtual size_t num_threads() const = 0;
};

/// Fixed-size pool of persistent workers. Submit is safe from any thread;
/// a task's exception is captured into its future (the worker survives).
/// The destructor finishes already-queued tasks before joining.
class ThreadPool : public Executor {
 public:
  /// Schedule shaking for concurrency tests: a seeded perturbation makes
  /// workers pop a pseudo-random queue entry instead of the oldest and
  /// sleep a pseudo-random jitter before running it, forcing reorderings
  /// and interleavings a quiet machine would never produce. Same seed =>
  /// same perturbation decisions (schedules stay machine-dependent, but a
  /// failing seed is usually replayable). Never enable outside tests: FIFO
  /// fairness and latency go out the window by design.
  struct PerturbOptions {
    uint64_t seed = 1;
    /// Upper bound on the pre-run jitter, in microseconds (0 = no jitter).
    uint32_t max_delay_us = 100;
    /// Pop a pseudo-random queued job instead of the front one.
    bool reorder = true;
  };

  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool() override;
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const override { return threads_.size(); }

  /// Enables schedule shaking (see PerturbOptions). Tasks already queued
  /// are perturbed too; call right after construction for full coverage.
  void EnablePerturbation(const PerturbOptions& options);

  /// Enqueues `task`. The returned future resolves when the task finishes
  /// and rethrows anything the task threw.
  std::future<void> Submit(std::function<void()> task);

  /// Enqueues `task` and returns a cancellable handle to it. Used by
  /// serving-style callers that need admission control (PendingTasks) and
  /// the ability to withdraw work whose deadline has already passed while
  /// it is still queued.
  TaskHandle SubmitHandle(std::function<void()> task) override;

  /// Tasks accepted but not yet started. Cancelled-but-unpopped entries are
  /// included until a worker discards them, so this is an upper bound —
  /// exactly the conservative reading admission control wants.
  size_t PendingTasks() const override;

  /// Runs body(i) for every i in [0, n), handing dynamically sized chunks
  /// to the workers; blocks until all indices are done. Rethrows the first
  /// task exception after every chunk has finished. Runs inline on the
  /// caller when the pool has a single worker (or n is tiny), so it is
  /// safe at any machine size.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Process-wide pool sized to the hardware concurrency, created on first
  /// use and joined at exit. Callers needing deterministic sizing (tests)
  /// construct their own pool instead.
  static ThreadPool& Shared();

 private:
  /// One queue entry: the work plus an optional handle state (null for
  /// plain Submit tasks).
  struct Job {
    std::packaged_task<void()> task;
    std::shared_ptr<TaskHandle::Shared> handle;
  };

  void WorkerLoop();
  void RunJob(Job& job);
  /// Pops the next job under mu_, honouring an active perturbation; writes
  /// the jitter to apply (microseconds) into *delay_us.
  Job PopJob(uint32_t* delay_us);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stop_ = false;
  /// Engaged only in shaken test builds; guarded by mu_ (the RNG is shared
  /// by every worker, which is what makes the decision stream seeded).
  std::optional<PerturbOptions> perturb_;
  std::mt19937_64 perturb_rng_;
  std::vector<std::thread> threads_;
};

/// Seed-driven schedule shaker: an Executor that owns a ThreadPool with
/// perturbation enabled (plus optional submit-side jitter, which shuffles
/// the arrival order of concurrent submitters). Stress harnesses run the
/// system under a PerturbingExecutor-shaped pool across many seeds; any
/// seed that fails is a concurrency bug with a (usually) replayable
/// schedule. See tests/serve/stress_test.cc for the canonical use.
class PerturbingExecutor final : public Executor {
 public:
  struct Options {
    ThreadPool::PerturbOptions perturb;
    /// Upper bound on the jitter applied on the *submitting* thread before
    /// each enqueue, in microseconds (0 = none).
    uint32_t max_submit_delay_us = 0;
  };

  PerturbingExecutor(size_t num_threads, const Options& options);

  TaskHandle SubmitHandle(std::function<void()> task) override;
  size_t PendingTasks() const override { return pool_.PendingTasks(); }
  size_t num_threads() const override { return pool_.num_threads(); }

  /// The wrapped pool, for plain Submit / ParallelFor use in tests.
  ThreadPool& pool() { return pool_; }

 private:
  Options options_;
  std::mutex submit_mu_;  // guards submit_rng_
  std::mt19937_64 submit_rng_;
  ThreadPool pool_;
};

}  // namespace staq::util
