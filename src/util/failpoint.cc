#include "util/failpoint.h"

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace staq::util {

namespace {

/// One registered site. Heap-allocated once and never freed (the registry
/// lives for the process), so Evaluate can block on a site's monitor after
/// dropping the registry lock.
struct Site {
  std::mutex mu;
  std::condition_variable cv;
  bool armed = false;
  FailPointConfig config;
  uint64_t hits_total = 0;      // every Evaluate() since process start
  uint64_t hits_since_arm = 0;  // trip schedule runs against this
  uint64_t trips = 0;           // actions fired since last Arm
  uint64_t blocked = 0;         // threads parked in kBlock right now
  /// Bumped by Arm/Disarm so a blocked thread wakes when *its* arming ends,
  /// not when a later re-arm happens to be active.
  uint64_t generation = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, std::unique_ptr<Site>> sites;

  static Registry& Instance() {
    static Registry* registry = new Registry();  // immortal
    return *registry;
  }

  Site* FindOrCreate(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu);
    auto& slot = sites[name];
    if (slot == nullptr) slot = std::make_unique<Site>();
    return slot.get();
  }

  Site* Find(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = sites.find(name);
    return it == sites.end() ? nullptr : it->second.get();
  }
};

}  // namespace

void FailPoints::Arm(const std::string& site, FailPointConfig config) {
  if (config.every == 0) config.every = 1;
  Site* s = Registry::Instance().FindOrCreate(site);
  std::lock_guard<std::mutex> lock(s->mu);
  s->armed = true;
  s->config = std::move(config);
  s->hits_since_arm = 0;
  s->trips = 0;
  ++s->generation;
  s->cv.notify_all();  // re-arming releases waiters of the previous arming
}

void FailPoints::Disarm(const std::string& site) {
  Site* s = Registry::Instance().Find(site);
  if (s == nullptr) return;
  std::lock_guard<std::mutex> lock(s->mu);
  s->armed = false;
  ++s->generation;
  s->cv.notify_all();
}

void FailPoints::DisarmAll() {
  Registry& registry = Registry::Instance();
  std::vector<Site*> sites;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    sites.reserve(registry.sites.size());
    for (auto& [name, site] : registry.sites) sites.push_back(site.get());
  }
  for (Site* s : sites) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->armed = false;
    ++s->generation;
    s->cv.notify_all();
  }
}

uint64_t FailPoints::HitCount(const std::string& site) {
  Site* s = Registry::Instance().Find(site);
  if (s == nullptr) return 0;
  std::lock_guard<std::mutex> lock(s->mu);
  return s->hits_total;
}

uint64_t FailPoints::TripCount(const std::string& site) {
  Site* s = Registry::Instance().Find(site);
  if (s == nullptr) return 0;
  std::lock_guard<std::mutex> lock(s->mu);
  return s->trips;
}

uint64_t FailPoints::BlockedCount(const std::string& site) {
  Site* s = Registry::Instance().Find(site);
  if (s == nullptr) return 0;
  std::lock_guard<std::mutex> lock(s->mu);
  return s->blocked;
}

std::vector<std::string> FailPoints::Registered() {
  Registry& registry = Registry::Instance();
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    names.reserve(registry.sites.size());
    for (const auto& [name, site] : registry.sites) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

void FailPoints::Evaluate(const char* site) {
  Site* s = Registry::Instance().FindOrCreate(site);
  std::unique_lock<std::mutex> lock(s->mu);
  ++s->hits_total;
  if (!s->armed) return;

  const uint64_t hit = ++s->hits_since_arm;
  const FailPointConfig& config = s->config;
  if (hit <= config.skip) return;
  if ((hit - config.skip - 1) % config.every != 0) return;
  if (config.limit != 0 && s->trips >= config.limit) return;
  ++s->trips;

  switch (config.action) {
    case FailPointConfig::Action::kThrow: {
      std::string what = std::string(site) + ": " + config.message;
      lock.unlock();
      throw FailPointError(what);
    }
    case FailPointConfig::Action::kDelay: {
      auto delay = config.delay;
      lock.unlock();
      std::this_thread::sleep_for(delay);
      return;
    }
    case FailPointConfig::Action::kBlock: {
      const uint64_t generation = s->generation;
      ++s->blocked;
      s->cv.wait(lock, [s, generation] { return s->generation != generation; });
      --s->blocked;
      return;
    }
  }
}

}  // namespace staq::util
