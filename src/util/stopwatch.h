// Wall-clock timing helpers used by the Table-II cost accounting.
#pragma once

#include <chrono>
#include <cstdint>

#include "util/clock.h"

namespace staq::util {

/// Monotonic stopwatch. Starts running on construction. Reads the real
/// clock by default; tests pass a VirtualClock so "elapsed" time advances
/// only when the test says so.
class Stopwatch {
 public:
  Stopwatch() : Stopwatch(nullptr) {}
  explicit Stopwatch(const Clock* clock)
      : clock_(clock != nullptr ? clock : Clock::Real()),
        start_(clock_->Now()) {}

  /// Restarts the stopwatch from zero.
  void Reset() { start_ = clock_->Now(); }

  /// Elapsed time in seconds since construction / last Reset().
  double ElapsedSeconds() const { return clock_->SecondsSince(start_); }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  const Clock* clock_;
  Clock::TimePoint start_;
};

/// Accumulates time across multiple start/stop windows; used to attribute
/// wall-clock to pipeline stages (feature extraction vs labeling vs training).
class StageTimer {
 public:
  void Start() { watch_.Reset(); }
  void Stop() { total_seconds_ += watch_.ElapsedSeconds(); }
  void Add(double seconds) { total_seconds_ += seconds; }
  double TotalSeconds() const { return total_seconds_; }

 private:
  Stopwatch watch_;
  double total_seconds_ = 0.0;
};

}  // namespace staq::util
