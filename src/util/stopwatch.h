// Wall-clock timing helpers used by the Table-II cost accounting.
#pragma once

#include <chrono>
#include <cstdint>

namespace staq::util {

/// Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop windows; used to attribute
/// wall-clock to pipeline stages (feature extraction vs labeling vs training).
class StageTimer {
 public:
  void Start() { watch_.Reset(); }
  void Stop() { total_seconds_ += watch_.ElapsedSeconds(); }
  void Add(double seconds) { total_seconds_ += seconds; }
  double TotalSeconds() const { return total_seconds_; }

 private:
  Stopwatch watch_;
  double total_seconds_ = 0.0;
};

}  // namespace staq::util
