// Temporal origin-destination access matrix (paper §III-C).
//
// The TODAM is conceptually |Z| x |P| x |R|: every (zone, POI, start-time)
// trip. Materialising the full matrix M_f is exactly the bottleneck the
// paper attacks, so this type supports both:
//   * materialised construction (full or gravity-masked M_g) — trips are
//     stored grouped by origin zone, which is the access pattern of both
//     labeling and aggregation;
//   * counting-only construction, which reproduces Table I's matrix sizes
//     at full city scale without allocating hundreds of millions of trips.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gravity.h"
#include "gtfs/time.h"
#include "synth/city_builder.h"
#include "util/rng.h"
#include "util/status.h"

namespace staq::core {

/// One sampled trip from a zone: destination POI index (into the POI set
/// the TODAM was built over) and start time.
struct TripEntry {
  uint32_t poi = 0;        // index into the builder's POI vector
  gtfs::TimeOfDay depart = 0;

  bool operator==(const TripEntry& other) const {
    return poi == other.poi && depart == other.depart;
  }
};

/// |R|: start-time samples per (zone, POI) pair for one (gravity, interval)
/// combination. Shared by TodamBuilder and the incremental TODAM patch path
/// (serve/scenario.cc), which samples a single POI column without
/// constructing a builder.
uint32_t TodamSamplesPerPair(const GravityConfig& config,
                             const gtfs::TimeInterval& interval);

/// Frozen per-zone gravity normalisers for the *edit-stable* TODAM mode
/// (serve scenario store): Σ_j decay(d_ij) over a fixed reference POI set.
/// Freezing the normaliser — instead of re-normalising α over the current
/// POI set — is what makes a POI add/remove perturb only that POI's trips,
/// so incremental relabeling can be exact (see serve/scenario.h).
std::vector<double> StableGravityNorms(const std::vector<synth::Zone>& zones,
                                       const std::vector<synth::Poi>& pois,
                                       double decay_scale_m);

/// Columnar StableGravityNorms: one decay column per POI accumulated with
/// an Axpy over all zones. Each norms[z] sums the same decays in the same
/// ascending-POI order as the scalar loop above (kept as the foil), so the
/// result is bit-identical; the batch serve/query paths use this form.
std::vector<double> StableGravityNormsColumnar(
    const std::vector<synth::Zone>& zones, const std::vector<synth::Poi>& pois,
    double decay_scale_m);

/// Samples the trips of one (zone, poi) pair in the edit-stable mode. The
/// RNG stream is keyed by the POI's *stable id* (not its index or the POI
/// count), so the same pair draws the same trips regardless of which other
/// POIs exist — the property both BuildGravityStable and the incremental
/// TODAM patch rely on for bit-identical agreement. Appends kept trips
/// (with `poi_index` as the stored index) to `out`.
void SampleStablePairTrips(uint64_t seed, uint32_t zone, uint32_t poi_id,
                           uint32_t poi_index, double keep_probability,
                           const gtfs::TimeInterval& interval,
                           uint32_t samples, std::vector<TripEntry>* out);

/// Keep probability of one pair in the edit-stable mode. A zero frozen
/// normaliser (reference set had no POIs of the category) degenerates to
/// keeping every sample — still deterministic and history-independent.
inline double StableKeepProbability(double decay, double zone_norm,
                                    double keep_scale) {
  if (zone_norm <= 0.0) return 1.0;
  double p = keep_scale * decay / zone_norm;
  return p > 1.0 ? 1.0 : p;
}

/// The α entry recorded for one pair in the edit-stable mode (decay over
/// the frozen normaliser; rows sum to 1 exactly at the reference POI set).
inline double StableAlphaValue(double decay, double zone_norm) {
  return zone_norm <= 0.0 ? 0.0 : decay / zone_norm;
}

/// Materialised TODAM over one POI set and one time interval.
class Todam {
 public:
  /// Trips originating at `zone`, grouped contiguously.
  const std::vector<TripEntry>& TripsFor(uint32_t zone) const {
    return trips_[zone];
  }
  size_t num_zones() const { return trips_.size(); }
  uint64_t num_trips() const { return num_trips_; }

  /// α_ij weights used during construction (row-normalised); needed again
  /// for the gravity-weighted feature aggregation.
  const std::vector<std::vector<double>>& alpha() const { return alpha_; }

  /// Fraction of trips whose POI is within the walking reach `reach_m` of
  /// the origin centroid (the paper's walk-only share diagnostic, §V-B2).
  double WalkOnlyFraction(const std::vector<synth::Zone>& zones,
                          const std::vector<synth::Poi>& pois,
                          double reach_m) const;

  // --- scenario mutation hooks (serve subsystem) ------------------------
  //
  // Both hooks keep the invariant that a patched TODAM equals the one
  // BuildGravityStable would produce from scratch over the edited POI set:
  // within a zone, trips stay grouped per POI in POI-vector order, so
  // removing a column erases one contiguous block and appending a column
  // extends the tail. Zones whose trip sequence changed are recorded in
  // `affected` (ascending) — exactly the zones whose labels can change.

  /// Removes every trip targeting POI index `poi_index` and shifts higher
  /// indices down by one (mirroring erasure from the POI vector). Also
  /// drops the α column when α is populated.
  void RemovePoiColumn(uint32_t poi_index, std::vector<uint32_t>* affected);

  /// Appends a new POI column: `per_zone_trips[z]` are the new trips of
  /// zone z (their `poi` must be the new index == old POI count), appended
  /// after the zone's existing trips. `alpha_column[z]`, when non-empty,
  /// extends the α row of each zone.
  void AppendPoiColumn(const std::vector<std::vector<TripEntry>>& per_zone_trips,
                       const std::vector<double>& alpha_column,
                       std::vector<uint32_t>* affected);

  /// Reassembles a TODAM from persisted columns (snapshot restore).
  /// `trips[z]` / `alpha[z]` become zone z's rows verbatim, so the
  /// restored matrix is bit-identical to the built one (the property the
  /// snapshot golden tests assert end to end).
  static Todam FromParts(std::vector<std::vector<TripEntry>> trips,
                         std::vector<std::vector<double>> alpha);

 private:
  friend class TodamBuilder;
  std::vector<std::vector<TripEntry>> trips_;
  std::vector<std::vector<double>> alpha_;
  uint64_t num_trips_ = 0;
};

/// Builds full and gravity TODAMs and their trip counts.
class TodamBuilder {
 public:
  /// `zones`/`pois` must outlive the builder call; `interval` gives the
  /// start-time window, `config` the gravity parameters.
  TodamBuilder(const std::vector<synth::Zone>& zones,
               const std::vector<synth::Poi>& pois,
               const gtfs::TimeInterval& interval, GravityConfig config);

  /// |R|: start-time samples per (zone, POI) pair.
  uint32_t SamplesPerPair() const;

  /// Size of the full matrix M_f = |Z| x |P| x |R| (no materialisation).
  uint64_t FullTripCount() const;

  /// Materialises the full TODAM M_f. Use only at small scales.
  Todam BuildFull(uint64_t seed) const;

  /// Materialises the gravity TODAM M_g: per pair (i,j), each of the |R|
  /// start times is kept with probability min(1, keep_scale * α_ij).
  Todam BuildGravity(uint64_t seed) const;

  /// Edit-stable variant for the serve scenario store: keep probability is
  /// min(1, keep_scale * decay_ij / zone_norm[i]) with `zone_norm` frozen
  /// (StableGravityNorms over a reference POI set), and the per-pair RNG is
  /// keyed by the POI's stable id. At the reference POI set this draws the
  /// same keep probabilities as BuildGravity; under POI edits it is
  /// history-independent: rebuilding from scratch equals patching via
  /// Remove/AppendPoiColumn, trip for trip.
  Todam BuildGravityStable(uint64_t seed,
                           const std::vector<double>& zone_norm) const;

  /// Trip count of M_g under `seed` without materialising the start times
  /// (draws only the per-pair binomial counts). Matches BuildGravity's
  /// count for the same seed.
  uint64_t GravityTripCount(uint64_t seed) const;

 private:
  double KeepProbability(double alpha_ij) const;

  const std::vector<synth::Zone>& zones_;
  const std::vector<synth::Poi>& pois_;
  gtfs::TimeInterval interval_;
  GravityConfig config_;
  std::vector<std::vector<double>> alpha_;
};

}  // namespace staq::core
