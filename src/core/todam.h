// Temporal origin-destination access matrix (paper §III-C).
//
// The TODAM is conceptually |Z| x |P| x |R|: every (zone, POI, start-time)
// trip. Materialising the full matrix M_f is exactly the bottleneck the
// paper attacks, so this type supports both:
//   * materialised construction (full or gravity-masked M_g) — trips are
//     stored grouped by origin zone, which is the access pattern of both
//     labeling and aggregation;
//   * counting-only construction, which reproduces Table I's matrix sizes
//     at full city scale without allocating hundreds of millions of trips.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gravity.h"
#include "gtfs/time.h"
#include "synth/city_builder.h"
#include "util/rng.h"
#include "util/status.h"

namespace staq::core {

/// One sampled trip from a zone: destination POI index (into the POI set
/// the TODAM was built over) and start time.
struct TripEntry {
  uint32_t poi = 0;        // index into the builder's POI vector
  gtfs::TimeOfDay depart = 0;
};

/// Materialised TODAM over one POI set and one time interval.
class Todam {
 public:
  /// Trips originating at `zone`, grouped contiguously.
  const std::vector<TripEntry>& TripsFor(uint32_t zone) const {
    return trips_[zone];
  }
  size_t num_zones() const { return trips_.size(); }
  uint64_t num_trips() const { return num_trips_; }

  /// α_ij weights used during construction (row-normalised); needed again
  /// for the gravity-weighted feature aggregation.
  const std::vector<std::vector<double>>& alpha() const { return alpha_; }

  /// Fraction of trips whose POI is within the walking reach `reach_m` of
  /// the origin centroid (the paper's walk-only share diagnostic, §V-B2).
  double WalkOnlyFraction(const std::vector<synth::Zone>& zones,
                          const std::vector<synth::Poi>& pois,
                          double reach_m) const;

 private:
  friend class TodamBuilder;
  std::vector<std::vector<TripEntry>> trips_;
  std::vector<std::vector<double>> alpha_;
  uint64_t num_trips_ = 0;
};

/// Builds full and gravity TODAMs and their trip counts.
class TodamBuilder {
 public:
  /// `zones`/`pois` must outlive the builder call; `interval` gives the
  /// start-time window, `config` the gravity parameters.
  TodamBuilder(const std::vector<synth::Zone>& zones,
               const std::vector<synth::Poi>& pois,
               const gtfs::TimeInterval& interval, GravityConfig config);

  /// |R|: start-time samples per (zone, POI) pair.
  uint32_t SamplesPerPair() const;

  /// Size of the full matrix M_f = |Z| x |P| x |R| (no materialisation).
  uint64_t FullTripCount() const;

  /// Materialises the full TODAM M_f. Use only at small scales.
  Todam BuildFull(uint64_t seed) const;

  /// Materialises the gravity TODAM M_g: per pair (i,j), each of the |R|
  /// start times is kept with probability min(1, keep_scale * α_ij).
  Todam BuildGravity(uint64_t seed) const;

  /// Trip count of M_g under `seed` without materialising the start times
  /// (draws only the per-pair binomial counts). Matches BuildGravity's
  /// count for the same seed.
  uint64_t GravityTripCount(uint64_t seed) const;

 private:
  double KeepProbability(double alpha_ij) const;

  const std::vector<synth::Zone>& zones_;
  const std::vector<synth::Poi>& pois_;
  gtfs::TimeInterval interval_;
  GravityConfig config_;
  std::vector<std::vector<double>> alpha_;
};

}  // namespace staq::core
