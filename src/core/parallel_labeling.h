// Parallel labeling.
//
// Labeling dominates the solution's run time (paper §IV-E) and the related
// work notes that "parallelization can benefit an SSR approach too, as the
// majority of the runtime is in labeling" (§II). This module shards the
// zone list across the shared util::ThreadPool, each worker with its own
// Router instance (the router's scratch space is not shareable), and
// returns labels in the same order as the input zones — bit-identical to
// the serial path.
#pragma once

#include <cstdint>
#include <vector>

#include "core/labeling.h"
#include "core/todam.h"
#include "router/router.h"
#include "synth/city_builder.h"

namespace staq::core {

/// Labels `zones` using `num_threads` workers. num_threads <= 1 degrades
/// to the serial LabelingEngine. Results match LabelZones exactly.
/// `total_spqs` (optional) receives the SPQ count across workers.
///
/// With RoutingEngine::kCsa the connection array is built (or taken from
/// router_options.connections) ONCE and shared read-only by every worker's
/// Router; the default kAuto mode then labels via window scans.
std::vector<ZoneLabel> LabelZonesParallel(
    const synth::City& city, const Todam& todam,
    const std::vector<uint32_t>& zones, const std::vector<synth::Poi>& pois,
    CostKind kind, gtfs::Day day, int num_threads,
    const router::RouterOptions& router_options = {},
    router::GacWeights gac_weights = {}, uint64_t* total_spqs = nullptr,
    LabelingMode mode = LabelingMode::kAuto);

}  // namespace staq::core
