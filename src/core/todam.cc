#include "core/todam.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ml/kernels.h"

namespace staq::core {

namespace {

/// Independent per-(zone, poi) generator so counting and materialisation
/// agree and pairs can be processed in any order.
util::Rng PairRng(uint64_t seed, uint32_t zone, uint32_t poi,
                  uint32_t num_pois) {
  uint64_t pair_index =
      static_cast<uint64_t>(zone) * num_pois + poi;
  util::SplitMix64 mixer(seed ^ (pair_index * 0x9e3779b97f4a7c15ULL +
                                 0x2545f4914f6cdd1dULL));
  return util::Rng(mixer.Next());
}

/// Independent per-(zone, poi-id) generator for the edit-stable mode: the
/// key ignores the POI's index and the POI count, so a pair's stream
/// survives any edit to the rest of the POI set.
util::Rng StablePairRng(uint64_t seed, uint32_t zone, uint32_t poi_id) {
  uint64_t pair_key =
      (static_cast<uint64_t>(zone) << 32) | static_cast<uint64_t>(poi_id);
  util::SplitMix64 mixer(seed ^ (pair_key * 0x9e3779b97f4a7c15ULL +
                                 0x94d049bb133111ebULL));
  return util::Rng(mixer.Next());
}

}  // namespace

uint32_t TodamSamplesPerPair(const GravityConfig& config,
                             const gtfs::TimeInterval& interval) {
  double samples = config.sample_rate_per_hour * interval.DurationHours();
  return static_cast<uint32_t>(std::lround(std::max(1.0, samples)));
}

std::vector<double> StableGravityNorms(const std::vector<synth::Zone>& zones,
                                       const std::vector<synth::Poi>& pois,
                                       double decay_scale_m) {
  std::vector<double> norms(zones.size(), 0.0);
  for (size_t z = 0; z < zones.size(); ++z) {
    for (const synth::Poi& poi : pois) {
      norms[z] += DistanceDecay(geo::Distance(zones[z].centroid, poi.position),
                                decay_scale_m);
    }
  }
  return norms;
}

std::vector<double> StableGravityNormsColumnar(
    const std::vector<synth::Zone>& zones, const std::vector<synth::Poi>& pois,
    double decay_scale_m) {
  std::vector<double> norms(zones.size(), 0.0);
  std::vector<double> column(zones.size());
  // Ascending-POI accumulation per element: each norms[z] sees the exact
  // addition sequence of the scalar foil above (1.0 * x == x bitwise).
  for (const synth::Poi& poi : pois) {
    DistanceDecayColumn(zones, poi.position, decay_scale_m, column.data());
    ml::kernels::Axpy(zones.size(), 1.0, column.data(), norms.data());
  }
  return norms;
}

void SampleStablePairTrips(uint64_t seed, uint32_t zone, uint32_t poi_id,
                           uint32_t poi_index, double keep_probability,
                           const gtfs::TimeInterval& interval,
                           uint32_t samples, std::vector<TripEntry>* out) {
  double keep = keep_probability > 1.0 ? 1.0 : keep_probability;
  if (keep <= 0.0) return;  // α = 0: no trips for this pair
  util::Rng rng = StablePairRng(seed, zone, poi_id);
  double span = static_cast<double>(interval.end - interval.start);
  for (uint32_t r = 0; r < samples; ++r) {
    // Same draw discipline as BuildGravity: one Bernoulli + one time draw
    // per candidate, so a pair's trips depend only on its own stream.
    bool kept = rng.Bernoulli(keep);
    gtfs::TimeOfDay t =
        interval.start + static_cast<gtfs::TimeOfDay>(rng.UniformDouble() * span);
    if (kept) out->push_back(TripEntry{poi_index, t});
  }
}

void Todam::RemovePoiColumn(uint32_t poi_index,
                            std::vector<uint32_t>* affected) {
  if (affected != nullptr) affected->clear();
  for (uint32_t z = 0; z < trips_.size(); ++z) {
    auto& zone_trips = trips_[z];
    size_t before = zone_trips.size();
    size_t w = 0;
    for (size_t i = 0; i < zone_trips.size(); ++i) {
      TripEntry t = zone_trips[i];
      if (t.poi == poi_index) continue;
      if (t.poi > poi_index) --t.poi;
      zone_trips[w++] = t;
    }
    zone_trips.resize(w);
    num_trips_ -= before - w;
    if (w != before && affected != nullptr) affected->push_back(z);
  }
  if (!alpha_.empty()) {
    for (auto& row : alpha_) {
      if (poi_index < row.size()) row.erase(row.begin() + poi_index);
    }
  }
}

void Todam::AppendPoiColumn(
    const std::vector<std::vector<TripEntry>>& per_zone_trips,
    const std::vector<double>& alpha_column, std::vector<uint32_t>* affected) {
  if (affected != nullptr) affected->clear();
  for (uint32_t z = 0; z < trips_.size(); ++z) {
    const auto& added = per_zone_trips[z];
    if (!added.empty()) {
      trips_[z].insert(trips_[z].end(), added.begin(), added.end());
      num_trips_ += added.size();
      if (affected != nullptr) affected->push_back(z);
    }
  }
  if (!alpha_.empty() && !alpha_column.empty()) {
    for (size_t z = 0; z < alpha_.size(); ++z) {
      alpha_[z].push_back(alpha_column[z]);
    }
  }
}

double Todam::WalkOnlyFraction(const std::vector<synth::Zone>& zones,
                               const std::vector<synth::Poi>& pois,
                               double reach_m) const {
  uint64_t walkable = 0;
  uint64_t total = 0;
  for (size_t z = 0; z < trips_.size(); ++z) {
    for (const TripEntry& trip : trips_[z]) {
      double d = geo::Distance(zones[z].centroid, pois[trip.poi].position);
      if (d <= reach_m) ++walkable;
      ++total;
    }
  }
  return total > 0 ? static_cast<double>(walkable) / static_cast<double>(total)
                   : 0.0;
}

TodamBuilder::TodamBuilder(const std::vector<synth::Zone>& zones,
                           const std::vector<synth::Poi>& pois,
                           const gtfs::TimeInterval& interval,
                           GravityConfig config)
    : zones_(zones), pois_(pois), interval_(interval), config_(config) {
  alpha_ = AttractivenessMatrix(zones_, pois_, config_.decay_scale_m);
}

uint32_t TodamBuilder::SamplesPerPair() const {
  return TodamSamplesPerPair(config_, interval_);
}

uint64_t TodamBuilder::FullTripCount() const {
  return static_cast<uint64_t>(zones_.size()) * pois_.size() *
         SamplesPerPair();
}

double TodamBuilder::KeepProbability(double alpha_ij) const {
  double p = config_.keep_scale * alpha_ij;
  return p > 1.0 ? 1.0 : p;
}

Todam Todam::FromParts(std::vector<std::vector<TripEntry>> trips,
                       std::vector<std::vector<double>> alpha) {
  Todam todam;
  todam.trips_ = std::move(trips);
  todam.alpha_ = std::move(alpha);
  todam.num_trips_ = 0;
  for (const auto& zone_trips : todam.trips_) {
    todam.num_trips_ += zone_trips.size();
  }
  return todam;
}

Todam TodamBuilder::BuildFull(uint64_t seed) const {
  Todam todam;
  todam.alpha_ = alpha_;
  todam.trips_.resize(zones_.size());
  uint32_t samples = SamplesPerPair();
  for (uint32_t z = 0; z < zones_.size(); ++z) {
    auto& zone_trips = todam.trips_[z];
    zone_trips.reserve(static_cast<size_t>(pois_.size()) * samples);
    for (uint32_t p = 0; p < pois_.size(); ++p) {
      util::Rng rng = PairRng(seed, z, p, static_cast<uint32_t>(pois_.size()));
      double span = static_cast<double>(interval_.end - interval_.start);
      for (uint32_t r = 0; r < samples; ++r) {
        gtfs::TimeOfDay t = interval_.start +
                            static_cast<gtfs::TimeOfDay>(rng.UniformDouble() * span);
        zone_trips.push_back(TripEntry{p, t});
      }
    }
    todam.num_trips_ += zone_trips.size();
  }
  return todam;
}

Todam TodamBuilder::BuildGravity(uint64_t seed) const {
  Todam todam;
  todam.alpha_ = alpha_;
  todam.trips_.resize(zones_.size());
  uint32_t samples = SamplesPerPair();
  for (uint32_t z = 0; z < zones_.size(); ++z) {
    auto& zone_trips = todam.trips_[z];
    for (uint32_t p = 0; p < pois_.size(); ++p) {
      double keep = KeepProbability(alpha_[z][p]);
      if (keep <= 0.0) continue;  // α = 0: no trips for this pair (M_b row 0)
      util::Rng rng = PairRng(seed, z, p, static_cast<uint32_t>(pois_.size()));
      double span = static_cast<double>(interval_.end - interval_.start);
      for (uint32_t r = 0; r < samples; ++r) {
        // One Bernoulli + one time draw per candidate, both single-word,
        // so counting and building stay in RNG lockstep.
        bool kept = rng.Bernoulli(keep);
        gtfs::TimeOfDay t = interval_.start +
                            static_cast<gtfs::TimeOfDay>(rng.UniformDouble() * span);
        if (kept) zone_trips.push_back(TripEntry{p, t});
      }
    }
    todam.num_trips_ += zone_trips.size();
  }
  return todam;
}

Todam TodamBuilder::BuildGravityStable(
    uint64_t seed, const std::vector<double>& zone_norm) const {
  Todam todam;
  todam.trips_.resize(zones_.size());
  todam.alpha_.resize(zones_.size());
  uint32_t samples = SamplesPerPair();
  for (uint32_t z = 0; z < zones_.size(); ++z) {
    auto& zone_trips = todam.trips_[z];
    auto& alpha_row = todam.alpha_[z];
    alpha_row.reserve(pois_.size());
    for (uint32_t p = 0; p < pois_.size(); ++p) {
      double decay =
          DistanceDecay(geo::Distance(zones_[z].centroid, pois_[p].position),
                        config_.decay_scale_m);
      alpha_row.push_back(StableAlphaValue(decay, zone_norm[z]));
      double keep =
          StableKeepProbability(decay, zone_norm[z], config_.keep_scale);
      SampleStablePairTrips(seed, z, pois_[p].id, p, keep, interval_, samples,
                            &zone_trips);
    }
    todam.num_trips_ += zone_trips.size();
  }
  return todam;
}

uint64_t TodamBuilder::GravityTripCount(uint64_t seed) const {
  uint64_t count = 0;
  uint32_t samples = SamplesPerPair();
  for (uint32_t z = 0; z < zones_.size(); ++z) {
    for (uint32_t p = 0; p < pois_.size(); ++p) {
      double keep = KeepProbability(alpha_[z][p]);
      if (keep <= 0.0) continue;
      if (keep >= 1.0) {
        count += samples;
        continue;
      }
      util::Rng rng = PairRng(seed, z, p, static_cast<uint32_t>(pois_.size()));
      for (uint32_t r = 0; r < samples; ++r) {
        if (rng.Bernoulli(keep)) ++count;
        (void)rng.NextU64();  // skip the time draw to stay in lockstep
      }
    }
  }
  return count;
}

}  // namespace staq::core
