#include "core/todam.h"

#include <cassert>
#include <cmath>

namespace staq::core {

namespace {

/// Independent per-(zone, poi) generator so counting and materialisation
/// agree and pairs can be processed in any order.
util::Rng PairRng(uint64_t seed, uint32_t zone, uint32_t poi,
                  uint32_t num_pois) {
  uint64_t pair_index =
      static_cast<uint64_t>(zone) * num_pois + poi;
  util::SplitMix64 mixer(seed ^ (pair_index * 0x9e3779b97f4a7c15ULL +
                                 0x2545f4914f6cdd1dULL));
  return util::Rng(mixer.Next());
}

}  // namespace

double Todam::WalkOnlyFraction(const std::vector<synth::Zone>& zones,
                               const std::vector<synth::Poi>& pois,
                               double reach_m) const {
  uint64_t walkable = 0;
  uint64_t total = 0;
  for (size_t z = 0; z < trips_.size(); ++z) {
    for (const TripEntry& trip : trips_[z]) {
      double d = geo::Distance(zones[z].centroid, pois[trip.poi].position);
      if (d <= reach_m) ++walkable;
      ++total;
    }
  }
  return total > 0 ? static_cast<double>(walkable) / static_cast<double>(total)
                   : 0.0;
}

TodamBuilder::TodamBuilder(const std::vector<synth::Zone>& zones,
                           const std::vector<synth::Poi>& pois,
                           const gtfs::TimeInterval& interval,
                           GravityConfig config)
    : zones_(zones), pois_(pois), interval_(interval), config_(config) {
  alpha_ = AttractivenessMatrix(zones_, pois_, config_.decay_scale_m);
}

uint32_t TodamBuilder::SamplesPerPair() const {
  double samples = config_.sample_rate_per_hour * interval_.DurationHours();
  return static_cast<uint32_t>(std::lround(std::max(1.0, samples)));
}

uint64_t TodamBuilder::FullTripCount() const {
  return static_cast<uint64_t>(zones_.size()) * pois_.size() *
         SamplesPerPair();
}

double TodamBuilder::KeepProbability(double alpha_ij) const {
  double p = config_.keep_scale * alpha_ij;
  return p > 1.0 ? 1.0 : p;
}

Todam TodamBuilder::BuildFull(uint64_t seed) const {
  Todam todam;
  todam.alpha_ = alpha_;
  todam.trips_.resize(zones_.size());
  uint32_t samples = SamplesPerPair();
  for (uint32_t z = 0; z < zones_.size(); ++z) {
    auto& zone_trips = todam.trips_[z];
    zone_trips.reserve(static_cast<size_t>(pois_.size()) * samples);
    for (uint32_t p = 0; p < pois_.size(); ++p) {
      util::Rng rng = PairRng(seed, z, p, static_cast<uint32_t>(pois_.size()));
      double span = static_cast<double>(interval_.end - interval_.start);
      for (uint32_t r = 0; r < samples; ++r) {
        gtfs::TimeOfDay t = interval_.start +
                            static_cast<gtfs::TimeOfDay>(rng.UniformDouble() * span);
        zone_trips.push_back(TripEntry{p, t});
      }
    }
    todam.num_trips_ += zone_trips.size();
  }
  return todam;
}

Todam TodamBuilder::BuildGravity(uint64_t seed) const {
  Todam todam;
  todam.alpha_ = alpha_;
  todam.trips_.resize(zones_.size());
  uint32_t samples = SamplesPerPair();
  for (uint32_t z = 0; z < zones_.size(); ++z) {
    auto& zone_trips = todam.trips_[z];
    for (uint32_t p = 0; p < pois_.size(); ++p) {
      double keep = KeepProbability(alpha_[z][p]);
      if (keep <= 0.0) continue;  // α = 0: no trips for this pair (M_b row 0)
      util::Rng rng = PairRng(seed, z, p, static_cast<uint32_t>(pois_.size()));
      double span = static_cast<double>(interval_.end - interval_.start);
      for (uint32_t r = 0; r < samples; ++r) {
        // One Bernoulli + one time draw per candidate, both single-word,
        // so counting and building stay in RNG lockstep.
        bool kept = rng.Bernoulli(keep);
        gtfs::TimeOfDay t = interval_.start +
                            static_cast<gtfs::TimeOfDay>(rng.UniformDouble() * span);
        if (kept) zone_trips.push_back(TripEntry{p, t});
      }
    }
    todam.num_trips_ += zone_trips.size();
  }
  return todam;
}

uint64_t TodamBuilder::GravityTripCount(uint64_t seed) const {
  uint64_t count = 0;
  uint32_t samples = SamplesPerPair();
  for (uint32_t z = 0; z < zones_.size(); ++z) {
    for (uint32_t p = 0; p < pois_.size(); ++p) {
      double keep = KeepProbability(alpha_[z][p]);
      if (keep <= 0.0) continue;
      if (keep >= 1.0) {
        count += samples;
        continue;
      }
      util::Rng rng = PairRng(seed, z, p, static_cast<uint32_t>(pois_.size()));
      for (uint32_t r = 0; r < samples; ++r) {
        if (rng.Bernoulli(keep)) ++count;
        (void)rng.NextU64();  // skip the time draw to stay in lockstep
      }
    }
  }
  return count;
}

}  // namespace staq::core
