#include "core/hoptree.h"

#include <algorithm>
#include <map>
#include <set>

#include "geo/grid_index.h"

namespace staq::core {

HopTree::HopTree(uint32_t root, std::vector<HopLeaf> leaves)
    : root_(root), leaves_(std::move(leaves)) {
  std::sort(leaves_.begin(), leaves_.end(),
            [](const HopLeaf& a, const HopLeaf& b) { return a.zone < b.zone; });
}

const HopLeaf* HopTree::Find(uint32_t zone) const {
  auto it = std::lower_bound(leaves_.begin(), leaves_.end(), zone,
                             [](const HopLeaf& leaf, uint32_t z) {
                               return leaf.zone < z;
                             });
  if (it != leaves_.end() && it->zone == zone) return &*it;
  return nullptr;
}

const geo::KdTree* HopTree::LeafIndex() const {
  if (leaves_.empty()) return nullptr;
  std::call_once(leaf_index_->once, [this] {
    std::vector<geo::IndexedPoint> points;
    points.reserve(leaves_.size());
    for (uint32_t i = 0; i < leaves_.size(); ++i) {
      points.push_back(geo::IndexedPoint{leaves_[i].position, i});
    }
    leaf_index_->tree = std::make_unique<geo::KdTree>(std::move(points));
  });
  return leaf_index_->tree.get();
}

namespace {

/// Transient per-leaf accumulator during tree construction.
struct LeafAccum {
  uint32_t service_count = 0;
  double journey_sum_s = 0.0;
  std::set<gtfs::RouteId> routes;
};

std::vector<HopLeaf> Finalize(const std::map<uint32_t, LeafAccum>& accums,
                              const std::vector<synth::Zone>& zones) {
  std::vector<HopLeaf> leaves;
  leaves.reserve(accums.size());
  for (const auto& [zone, acc] : accums) {
    HopLeaf leaf;
    leaf.zone = zone;
    leaf.service_count = acc.service_count;
    leaf.route_count = static_cast<uint32_t>(acc.routes.size());
    leaf.mean_journey_s =
        acc.service_count > 0
            ? acc.journey_sum_s / static_cast<double>(acc.service_count)
            : 0.0;
    leaf.position = zones[zone].centroid;
    leaves.push_back(leaf);
  }
  return leaves;
}

}  // namespace

HopTreeSet::HopTreeSet(const synth::City& city, const IsochroneSet& isochrones,
                       const gtfs::TimeInterval& interval,
                       HopTreeOptions options)
    : interval_(interval) {
  const gtfs::Feed& feed = city.feed;
  size_t num_zones = city.zones.size();

  // Assign each stop to its zone (nearest centroid).
  stop_zone_.resize(feed.num_stops());
  {
    std::vector<geo::IndexedPoint> centroids;
    centroids.reserve(num_zones);
    for (const synth::Zone& z : city.zones) {
      centroids.push_back(geo::IndexedPoint{z.centroid, z.id});
    }
    geo::KdTree zone_tree(std::move(centroids));
    for (gtfs::StopId s = 0; s < feed.num_stops(); ++s) {
      stop_zone_[s] = zone_tree.Nearest(feed.stop(s).position).id;
    }
  }

  // Walkable stops per zone: grid prefilter by reach, then the exact
  // isochrone containment test (F_stops ∩ W_i of §IV-A).
  std::vector<std::vector<gtfs::StopId>> walkable(num_zones);
  {
    std::vector<geo::IndexedPoint> stop_points;
    stop_points.reserve(feed.num_stops());
    for (gtfs::StopId s = 0; s < feed.num_stops(); ++s) {
      stop_points.push_back(geo::IndexedPoint{feed.stop(s).position, s});
    }
    double reach = isochrones.config().ReachMeters();
    if (!stop_points.empty()) {
      geo::GridIndex grid(std::move(stop_points), std::max(reach, 50.0));
      for (uint32_t z = 0; z < num_zones; ++z) {
        for (const geo::Neighbor& n :
             grid.WithinRadius(city.zones[z].centroid, reach * 1.5)) {
          if (isochrones.For(z).Contains(feed.stop(n.id).position)) {
            walkable[z].push_back(n.id);
          }
        }
      }
    }
  }

  outbound_.resize(num_zones);
  inbound_.resize(num_zones);
  const auto& stop_times = feed.stop_times();

  for (uint32_t z = 0; z < num_zones; ++z) {
    std::map<uint32_t, LeafAccum> ob_accum;
    std::map<uint32_t, LeafAccum> ib_accum;

    for (gtfs::StopId s : walkable[z]) {
      for (const gtfs::Departure& dep : feed.DeparturesInWindow(
               s, interval_.day, interval_.start, interval_.end)) {
        const gtfs::Trip& trip = feed.trip(dep.trip);
        uint32_t first = trip.first_stop_time;
        uint32_t end = first + trip.num_stop_times;
        gtfs::RouteId route = trip.route;

        // Outbound: visit each subsequent call of the service.
        for (uint32_t i = dep.stop_time_index + 1; i < end; ++i) {
          const gtfs::StopTime& call = stop_times[i];
          double ride_s = static_cast<double>(call.arrival - dep.time);
          if (ride_s > options.max_ride_s) break;
          uint32_t leaf_zone = stop_zone_[call.stop];
          if (leaf_zone == z) continue;
          LeafAccum& acc = ob_accum[leaf_zone];
          ++acc.service_count;
          acc.journey_sum_s += ride_s;
          acc.routes.insert(route);
        }

        // Inbound: visit each preceding call (a passenger boarding there
        // reaches this walkable stop).
        const gtfs::StopTime& here = stop_times[dep.stop_time_index];
        for (uint32_t i = first; i < dep.stop_time_index; ++i) {
          const gtfs::StopTime& call = stop_times[i];
          double ride_s = static_cast<double>(here.arrival - call.departure);
          if (ride_s < 0 || ride_s > options.max_ride_s) continue;
          uint32_t leaf_zone = stop_zone_[call.stop];
          if (leaf_zone == z) continue;
          LeafAccum& acc = ib_accum[leaf_zone];
          ++acc.service_count;
          acc.journey_sum_s += ride_s;
          acc.routes.insert(route);
        }
      }
    }

    outbound_[z] = HopTree(z, Finalize(ob_accum, city.zones));
    inbound_[z] = HopTree(z, Finalize(ib_accum, city.zones));
  }
}

std::vector<uint32_t> HopTreeSet::ReachableZones(uint32_t zone,
                                                 int hops) const {
  std::vector<uint8_t> seen(outbound_.size(), 0);
  std::vector<uint32_t> frontier{zone};
  std::vector<uint32_t> out;
  for (int h = 0; h < hops; ++h) {
    std::vector<uint32_t> next;
    for (uint32_t f : frontier) {
      for (const HopLeaf& leaf : outbound_[f].leaves()) {
        if (leaf.zone == zone || seen[leaf.zone]) continue;
        seen[leaf.zone] = 1;
        out.push_back(leaf.zone);
        next.push_back(leaf.zone);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace staq::core
