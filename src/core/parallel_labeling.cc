#include "core/parallel_labeling.h"

#include <algorithm>
#include <atomic>
#include <future>

#include "router/connections.h"
#include "util/thread_pool.h"

namespace staq::core {

std::vector<ZoneLabel> LabelZonesParallel(
    const synth::City& city, const Todam& todam,
    const std::vector<uint32_t>& zones, const std::vector<synth::Poi>& pois,
    CostKind kind, gtfs::Day day, int num_threads,
    const router::RouterOptions& router_options,
    router::GacWeights gac_weights, uint64_t* total_spqs, LabelingMode mode) {
  // Build (or adopt) the connection array once, outside the workers: each
  // per-worker Router then shares the immutable array instead of rebuilding
  // it num_threads times.
  router::RouterOptions options = router_options;
  if (options.engine == router::RoutingEngine::kCsa) {
    options.connections =
        router::ConnectionArray::EnsureFor(options.connections, &city.feed);
  }
  const router::RouterOptions& router_options_shared = options;

  if (num_threads <= 1 || zones.size() <= 1) {
    router::Router router(&city.feed, router_options_shared);
    LabelingEngine engine(&city, &router, gac_weights, mode);
    auto labels = engine.LabelZones(todam, zones, pois, kind, day);
    if (total_spqs != nullptr) *total_spqs = engine.spq_count();
    return labels;
  }

  size_t workers = std::min<size_t>(static_cast<size_t>(num_threads),
                                    zones.size());
  std::vector<ZoneLabel> labels(zones.size());
  std::atomic<size_t> next_index{0};
  std::atomic<uint64_t> spqs{0};

  auto work = [&]() {
    // Per-worker router: scratch space is instance-local.
    router::Router router(&city.feed, router_options_shared);
    LabelingEngine engine(&city, &router, gac_weights, mode);
    while (true) {
      size_t i = next_index.fetch_add(1);
      if (i >= zones.size()) break;
      labels[i] = engine.LabelZone(todam, zones[i], pois, kind, day);
    }
    spqs.fetch_add(engine.spq_count());
  };

  // Persistent workers instead of spawn-and-join threads; futures carry any
  // worker exception, and all workers are drained before rethrowing (the
  // tasks reference this frame).
  util::ThreadPool& pool = util::ThreadPool::Shared();
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (size_t w = 0; w < workers; ++w) futures.push_back(pool.Submit(work));
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  if (total_spqs != nullptr) *total_spqs = spqs.load();
  return labels;
}

}  // namespace staq::core
