#include "core/parallel_labeling.h"

#include <atomic>
#include <thread>

namespace staq::core {

std::vector<ZoneLabel> LabelZonesParallel(
    const synth::City& city, const Todam& todam,
    const std::vector<uint32_t>& zones, const std::vector<synth::Poi>& pois,
    CostKind kind, gtfs::Day day, int num_threads,
    const router::RouterOptions& router_options,
    router::GacWeights gac_weights, uint64_t* total_spqs) {
  if (num_threads <= 1 || zones.size() <= 1) {
    router::Router router(&city.feed, router_options);
    LabelingEngine engine(&city, &router, gac_weights);
    auto labels = engine.LabelZones(todam, zones, pois, kind, day);
    if (total_spqs != nullptr) *total_spqs = engine.spq_count();
    return labels;
  }

  size_t workers = std::min<size_t>(static_cast<size_t>(num_threads),
                                    zones.size());
  std::vector<ZoneLabel> labels(zones.size());
  std::atomic<size_t> next_index{0};
  std::atomic<uint64_t> spqs{0};

  auto work = [&]() {
    // Per-worker router: scratch space is instance-local.
    router::Router router(&city.feed, router_options);
    LabelingEngine engine(&city, &router, gac_weights);
    while (true) {
      size_t i = next_index.fetch_add(1);
      if (i >= zones.size()) break;
      labels[i] = engine.LabelZone(todam, zones[i], pois, kind, day);
    }
    spqs.fetch_add(engine.spq_count());
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) threads.emplace_back(work);
  for (std::thread& t : threads) t.join();

  if (total_spqs != nullptr) *total_spqs = spqs.load();
  return labels;
}

}  // namespace staq::core
