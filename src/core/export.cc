#include "core/export.h"

#include <algorithm>
#include <fstream>
#include <vector>

#include "util/strings.h"

namespace staq::core {

namespace {

/// Minimal JSON string escaping (quotes and backslashes; our identifiers
/// contain nothing else special).
std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string PointGeometry(const geo::LocalProjection& projection,
                          const geo::Point& p) {
  geo::LatLon ll = projection.Unproject(p);
  return util::Format(
      "{\"type\":\"Point\",\"coordinates\":[%.7f,%.7f]}", ll.lon, ll.lat);
}

}  // namespace

util::Status ExportAccessGeoJson(const synth::City& city,
                                 const geo::LocalProjection& projection,
                                 const AccessQueryResult& result,
                                 const std::vector<synth::Poi>& pois,
                                 const std::string& path) {
  if (result.mac.size() != city.zones.size()) {
    return util::Status::InvalidArgument(
        "result does not cover the city's zones");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return util::Status::IoError("cannot open " + path);

  out << "{\"type\":\"FeatureCollection\",\"features\":[\n";
  bool first = true;
  for (const synth::Zone& z : city.zones) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"type\":\"Feature\",\"geometry\":"
        << PointGeometry(projection, z.centroid) << ",\"properties\":{"
        << "\"kind\":\"zone\",\"zone_id\":" << z.id
        << util::Format(",\"mac_s\":%.1f", result.mac[z.id])
        << util::Format(",\"acsd_s\":%.1f", result.acsd[z.id])
        << ",\"class\":\""
        << JsonEscape(AccessClassName(
               static_cast<AccessClass>(result.classes[z.id])))
        << "\"" << util::Format(",\"population\":%.0f", z.population)
        << util::Format(",\"vulnerability\":%.3f", z.vulnerability) << "}}";
  }
  for (const synth::Poi& p : pois) {
    out << ",\n{\"type\":\"Feature\",\"geometry\":"
        << PointGeometry(projection, p.position) << ",\"properties\":{"
        << "\"kind\":\"poi\",\"poi_id\":" << p.id << ",\"category\":\""
        << JsonEscape(synth::PoiCategoryName(p.category)) << "\"}}";
  }
  out << "\n]}\n";
  if (!out) return util::Status::IoError("write failed for " + path);
  return util::Status::OK();
}

std::string RenderAccessReport(const synth::City& city,
                               const AccessQueryResult& result,
                               const std::string& title) {
  std::string md;
  md += "# " + title + "\n\n";
  md += util::Format("Zones analysed: %zu; population %.0f.\n\n",
                     city.zones.size(), city.TotalPopulation());

  md += "## Headline measures\n\n";
  md += util::Format("| measure | value |\n|---|---|\n");
  md += util::Format("| mean access cost (MAC) | %.1f min |\n",
                     result.mean_mac / 60);
  md += util::Format("| mean temporal variation (ACSD) | %.1f min |\n",
                     result.mean_acsd / 60);
  md += util::Format("| fairness (Jain) | %.3f |\n", result.fairness);
  md += util::Format("| population-weighted fairness | %.3f |\n",
                     result.population_fairness);
  md += util::Format("| vulnerability-weighted fairness | %.3f |\n",
                     result.vulnerable_fairness);
  md += util::Format("| SPQs issued | %llu of %llu gravity trips |\n",
                     static_cast<unsigned long long>(result.spqs),
                     static_cast<unsigned long long>(result.gravity_trips));
  md += util::Format("| answered in | %.2f s |\n\n", result.elapsed_s);

  md += "## Accessibility classes\n\n| class | zones |\n|---|---|\n";
  int histogram[4] = {0, 0, 0, 0};
  for (int c : result.classes) ++histogram[c];
  for (int c = 0; c < 4; ++c) {
    md += util::Format("| %s | %d |\n",
                       AccessClassName(static_cast<AccessClass>(c)),
                       histogram[c]);
  }

  md += "\n## Worst-served zones\n\n";
  md += "| zone | MAC (min) | ACSD (min) | population | vulnerability |\n";
  md += "|---|---|---|---|---|\n";
  std::vector<uint32_t> order(city.zones.size());
  for (uint32_t z = 0; z < order.size(); ++z) order[z] = z;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return result.mac[a] > result.mac[b];
  });
  for (size_t i = 0; i < std::min<size_t>(10, order.size()); ++i) {
    uint32_t z = order[i];
    md += util::Format("| %u | %.1f | %.1f | %.0f | %.2f |\n", z,
                       result.mac[z] / 60, result.acsd[z] / 60,
                       city.zones[z].population, city.zones[z].vulnerability);
  }
  return md;
}

util::Status WriteAccessReport(const synth::City& city,
                               const AccessQueryResult& result,
                               const std::string& title,
                               const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return util::Status::IoError("cannot open " + path);
  out << RenderAccessReport(city, result, title);
  if (!out) return util::Status::IoError("write failed for " + path);
  return util::Status::OK();
}

}  // namespace staq::core
