// Gravity model of accessibility (paper §III-B, §III-C).
//
// Attractiveness α_ij says how likely residents of zone z_i are to travel
// to POI p_j. Following the paper's evaluation we derive it from a negative
// exponential distance-decay function and normalise over the POI set per
// zone, so Σ_j α_ij = 1. The TODAM builder then samples trips per (i,j)
// pair in proportion to α_ij — this is where the Hansen equation moves
// "downstream" into matrix construction and produces the Table-I
// reductions.
#pragma once

#include <vector>

#include "synth/city_builder.h"

namespace staq::core {

/// Gravity / sampling configuration.
struct GravityConfig {
  /// e-folding distance of the negative exponential decay (metres).
  double decay_scale_m = 4000;
  /// Trip-keep multiplier k: a trip for pair (i,j) enters M_g with
  /// probability min(1, k * α_ij). Larger POI sets spread α thinner, so
  /// the same k yields stronger reductions — the Table-I effect.
  double keep_scale = 25.0;
  /// Start-time samples per hour; |R| = rate x interval duration.
  int sample_rate_per_hour = 30;
};

/// Raw (unnormalised) attractiveness of a POI at `distance_m` from a zone.
double DistanceDecay(double distance_m, double decay_scale_m);

/// Columnar form of DistanceDecay: one POI's decay against every zone
/// centroid, written to `out` (size >= zones.size()). Element i equals
/// DistanceDecay(Distance(zones[i].centroid, poi_position), decay_scale_m)
/// exactly — the decay stays a per-element std::exp, only the loop
/// structure is columnar.
void DistanceDecayColumn(const std::vector<synth::Zone>& zones,
                         const geo::Point& poi_position, double decay_scale_m,
                         double* out);

/// The α row for one zone over a POI set: decay-weighted and normalised to
/// sum to 1 (all-zero rows stay all-zero; happens only with no POIs).
std::vector<double> AttractivenessRow(const geo::Point& zone_centroid,
                                      const std::vector<synth::Poi>& pois,
                                      double decay_scale_m);

/// Dense |Z| x |P| attractiveness matrix, row-normalised.
std::vector<std::vector<double>> AttractivenessMatrix(
    const std::vector<synth::Zone>& zones, const std::vector<synth::Poi>& pois,
    double decay_scale_m);

/// Gravity configuration calibrated for a (possibly scaled) city spec.
///
/// α is normalised over the POI set, so at a POI-count scale s the per-pair
/// α grows by 1/s; dividing keep_scale by the same factor keeps the keep
/// probability — and therefore the Table-I reduction percentages —
/// invariant under scaling.
GravityConfig CalibratedGravityConfig(const synth::CitySpec& spec);

}  // namespace staq::core
