#include "core/access_query.h"

#include <algorithm>

#include "ml/kernels.h"
#include "util/stopwatch.h"

namespace staq::core {

void FinalizeAccessQueryResult(const std::vector<synth::Zone>& zones,
                               AccessQueryResult* result) {
  result->classes = ClassifyAccessibility(result->mac, result->acsd);
  result->mean_mac = 0.0;
  result->mean_acsd = 0.0;
  for (size_t z = 0; z < result->mac.size(); ++z) {
    result->mean_mac += result->mac[z];
    result->mean_acsd += result->acsd[z];
  }
  result->mean_mac /= static_cast<double>(result->mac.size());
  result->mean_acsd /= static_cast<double>(result->acsd.size());

  result->fairness = JainIndex(result->mac);
  std::vector<double> pop_weights, vulnerable_weights;
  pop_weights.reserve(zones.size());
  vulnerable_weights.reserve(zones.size());
  for (const synth::Zone& z : zones) {
    pop_weights.push_back(z.population);
    vulnerable_weights.push_back(z.population * z.vulnerability);
  }
  result->population_fairness = WeightedJainIndex(result->mac, pop_weights);
  result->vulnerable_fairness =
      WeightedJainIndex(result->mac, vulnerable_weights);
}

void FinalizeAccessQueryResultColumnar(const std::vector<synth::Zone>& zones,
                                       AccessQueryResult* result) {
  result->classes = ClassifyAccessibilityColumnar(result->mac, result->acsd);
  size_t n = result->mac.size();
  result->mean_mac = ml::kernels::ReduceSum(n, result->mac.data()) /
                     static_cast<double>(n);
  result->mean_acsd = ml::kernels::ReduceSum(n, result->acsd.data()) /
                      static_cast<double>(n);

  result->fairness = JainIndexColumnar(result->mac);
  std::vector<double> pop_weights, vulnerable_weights;
  pop_weights.reserve(zones.size());
  vulnerable_weights.reserve(zones.size());
  for (const synth::Zone& z : zones) {
    pop_weights.push_back(z.population);
    vulnerable_weights.push_back(z.population * z.vulnerability);
  }
  result->population_fairness =
      WeightedJainIndexColumnar(result->mac, pop_weights);
  result->vulnerable_fairness =
      WeightedJainIndexColumnar(result->mac, vulnerable_weights);
}

AccessQueryEngine::AccessQueryEngine(synth::City city,
                                     gtfs::TimeInterval interval)
    : city_(std::move(city)), interval_(interval) {
  pipeline_ = std::make_unique<SsrPipeline>(&city_, interval_);
}

util::Result<AccessQueryResult> AccessQueryEngine::Query(
    synth::PoiCategory category, const AccessQueryOptions& options) {
  std::vector<synth::Poi> pois = city_.PoisOf(category);
  if (pois.empty()) {
    return util::Status::NotFound("no POIs of requested category");
  }

  util::Stopwatch watch;
  Todam todam = pipeline_->BuildGravityTodam(pois, options.gravity,
                                             options.seed);

  AccessQueryResult result;
  result.gravity_trips = todam.num_trips();

  if (options.exact) {
    GroundTruth truth =
        pipeline_->ComputeGroundTruth(pois, todam, options.cost, options.gac);
    result.mac = std::move(truth.mac);
    result.acsd = std::move(truth.acsd);
    result.spqs = truth.spqs;
  } else {
    PipelineConfig config;
    config.beta = options.beta;
    config.model = options.model;
    config.cost = options.cost;
    config.gac = options.gac;
    config.seed = options.seed;
    auto run = pipeline_->Run(pois, todam, config);
    if (!run.ok()) return run.status();
    result.mac = std::move(run.value().mac);
    result.acsd = std::move(run.value().acsd);
    result.spqs = run.value().spqs;
  }

  FinalizeAccessQueryResult(city_.zones, &result);

  result.elapsed_s = watch.ElapsedSeconds();
  return result;
}

util::Result<std::vector<AccessQueryResult>> AccessQueryEngine::QueryVector(
    synth::PoiCategory category, const AccessQueryOptions& base,
    const VectorQuerySpec& spec) {
  if (!base.exact) {
    return util::Status::InvalidArgument(
        "vector queries require exact=true: SSR members train per-member "
        "models and share no labeling pass");
  }
  std::vector<synth::PoiCategory> categories =
      spec.categories.empty() ? std::vector<synth::PoiCategory>{category}
                              : spec.categories;
  std::vector<uint64_t> seeds = spec.seeds.empty()
                                    ? std::vector<uint64_t>{base.seed}
                                    : spec.seeds;
  std::vector<CostMember> members =
      spec.cost_members.empty()
          ? std::vector<CostMember>{{base.cost, base.gac}}
          : spec.cost_members;
  for (const CostMember& m : members) {
    if (m.cost == CostKind::kGeneralizedCost && !m.gac.Valid()) {
      return util::Status::InvalidArgument(
          "invalid GAC weights in vector query member");
    }
  }

  std::vector<AccessQueryResult> out;
  out.reserve(categories.size() * seeds.size() * members.size());
  std::vector<double> member_costs;
  for (synth::PoiCategory cat : categories) {
    for (uint64_t seed : seeds) {
      if (!spec.use_columnar) {
        // Scalar foil: each derived member is an independent full query.
        for (const CostMember& m : members) {
          AccessQueryOptions options = base;
          options.seed = seed;
          options.cost = m.cost;
          options.gac = m.gac;
          auto result = Query(cat, options);
          if (!result.ok()) return result.status();
          out.push_back(std::move(result.value()));
        }
        continue;
      }

      std::vector<synth::Poi> pois = city_.PoisOf(cat);
      if (pois.empty()) {
        return util::Status::NotFound("no POIs of requested category");
      }
      util::Stopwatch watch;
      Todam todam = pipeline_->BuildGravityTodam(pois, base.gravity, seed);
      CapturedCosts captured =
          pipeline_->CaptureGroundTruthColumns(pois, todam);
      for (const CostMember& m : members) {
        AccessQueryResult result;
        result.gravity_trips = todam.num_trips();
        MemberCostColumn(captured.columns, m, &member_costs);
        std::vector<ZoneLabel> labels =
            AggregateZoneLabels(captured.columns, member_costs);
        result.mac.resize(labels.size());
        result.acsd.resize(labels.size());
        for (size_t z = 0; z < labels.size(); ++z) {
          result.mac[z] = labels[z].mac;
          result.acsd[z] = labels[z].acsd;
        }
        // Each member reports the full pass it would have paid alone.
        result.spqs = captured.spqs;
        FinalizeAccessQueryResultColumnar(city_.zones, &result);
        result.elapsed_s = watch.ElapsedSeconds();
        out.push_back(std::move(result));
      }
    }
  }
  return out;
}

uint32_t AccessQueryEngine::AddPoi(synth::PoiCategory category,
                                   const geo::Point& position) {
  uint32_t id = city_.pois.empty() ? 0 : city_.pois.back().id + 1;
  city_.pois.push_back(synth::Poi{id, category, position});
  ++scenario_version_;
  return id;
}

util::Status AccessQueryEngine::RemovePoi(uint32_t poi_id) {
  auto it = std::find_if(city_.pois.begin(), city_.pois.end(),
                         [poi_id](const synth::Poi& p) {
                           return p.id == poi_id;
                         });
  if (it == city_.pois.end()) {
    return util::Status::NotFound("no POI with id " + std::to_string(poi_id));
  }
  city_.pois.erase(it);
  ++scenario_version_;
  return util::Status::OK();
}

void AccessQueryEngine::SetInterval(const gtfs::TimeInterval& interval) {
  interval_ = interval;
  pipeline_ = std::make_unique<SsrPipeline>(&city_, interval_);
  ++scenario_version_;
}

}  // namespace staq::core
