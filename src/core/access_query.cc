#include "core/access_query.h"

#include <algorithm>

#include "util/stopwatch.h"

namespace staq::core {

void FinalizeAccessQueryResult(const std::vector<synth::Zone>& zones,
                               AccessQueryResult* result) {
  result->classes = ClassifyAccessibility(result->mac, result->acsd);
  result->mean_mac = 0.0;
  result->mean_acsd = 0.0;
  for (size_t z = 0; z < result->mac.size(); ++z) {
    result->mean_mac += result->mac[z];
    result->mean_acsd += result->acsd[z];
  }
  result->mean_mac /= static_cast<double>(result->mac.size());
  result->mean_acsd /= static_cast<double>(result->acsd.size());

  result->fairness = JainIndex(result->mac);
  std::vector<double> pop_weights, vulnerable_weights;
  pop_weights.reserve(zones.size());
  vulnerable_weights.reserve(zones.size());
  for (const synth::Zone& z : zones) {
    pop_weights.push_back(z.population);
    vulnerable_weights.push_back(z.population * z.vulnerability);
  }
  result->population_fairness = WeightedJainIndex(result->mac, pop_weights);
  result->vulnerable_fairness =
      WeightedJainIndex(result->mac, vulnerable_weights);
}

AccessQueryEngine::AccessQueryEngine(synth::City city,
                                     gtfs::TimeInterval interval)
    : city_(std::move(city)), interval_(interval) {
  pipeline_ = std::make_unique<SsrPipeline>(&city_, interval_);
}

util::Result<AccessQueryResult> AccessQueryEngine::Query(
    synth::PoiCategory category, const AccessQueryOptions& options) {
  std::vector<synth::Poi> pois = city_.PoisOf(category);
  if (pois.empty()) {
    return util::Status::NotFound("no POIs of requested category");
  }

  util::Stopwatch watch;
  Todam todam = pipeline_->BuildGravityTodam(pois, options.gravity,
                                             options.seed);

  AccessQueryResult result;
  result.gravity_trips = todam.num_trips();

  if (options.exact) {
    GroundTruth truth =
        pipeline_->ComputeGroundTruth(pois, todam, options.cost, options.gac);
    result.mac = std::move(truth.mac);
    result.acsd = std::move(truth.acsd);
    result.spqs = truth.spqs;
  } else {
    PipelineConfig config;
    config.beta = options.beta;
    config.model = options.model;
    config.cost = options.cost;
    config.gac = options.gac;
    config.seed = options.seed;
    auto run = pipeline_->Run(pois, todam, config);
    if (!run.ok()) return run.status();
    result.mac = std::move(run.value().mac);
    result.acsd = std::move(run.value().acsd);
    result.spqs = run.value().spqs;
  }

  FinalizeAccessQueryResult(city_.zones, &result);

  result.elapsed_s = watch.ElapsedSeconds();
  return result;
}

uint32_t AccessQueryEngine::AddPoi(synth::PoiCategory category,
                                   const geo::Point& position) {
  uint32_t id = city_.pois.empty() ? 0 : city_.pois.back().id + 1;
  city_.pois.push_back(synth::Poi{id, category, position});
  ++scenario_version_;
  return id;
}

util::Status AccessQueryEngine::RemovePoi(uint32_t poi_id) {
  auto it = std::find_if(city_.pois.begin(), city_.pois.end(),
                         [poi_id](const synth::Poi& p) {
                           return p.id == poi_id;
                         });
  if (it == city_.pois.end()) {
    return util::Status::NotFound("no POI with id " + std::to_string(poi_id));
  }
  city_.pois.erase(it);
  ++scenario_version_;
  return util::Status::OK();
}

void AccessQueryEngine::SetInterval(const gtfs::TimeInterval& interval) {
  interval_ = interval;
  pipeline_ = std::make_unique<SsrPipeline>(&city_, interval_);
  ++scenario_version_;
}

}  // namespace staq::core
