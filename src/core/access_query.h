// Dynamic access queries — the library's user-facing API (paper §I, §III).
//
// An AccessQueryEngine wraps a city and answers analytical access queries:
// "what is the aggregate access cost to <POI category> in <time interval>,
// how does it vary across zones, and how fairly is it distributed?" —
// either exactly (full labeling, the naive baseline) or via the SSR
// solution at a chosen labeling budget.
//
// The engine supports the *dynamic* part of the paper's motivation: POIs
// can be added or removed (e.g. testing a new vaccination-centre site) and
// the analysis interval can be changed (re-running the offline phase);
// subsequent queries reflect the updated scenario.
#pragma once

#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "synth/city_builder.h"

namespace staq::core {

/// Options for one access query.
struct AccessQueryOptions {
  /// false: SSR solution at `beta`; true: exact full labeling.
  bool exact = false;
  double beta = 0.05;
  ml::ModelKind model = ml::ModelKind::kMlp;
  CostKind cost = CostKind::kJourneyTime;
  GravityConfig gravity;
  router::GacWeights gac;
  uint64_t seed = 1;
};

/// Answer to an access query: the zone-level measures of §III-D plus
/// summary statistics and cost accounting.
struct AccessQueryResult {
  std::vector<double> mac;   // per zone
  std::vector<double> acsd;  // per zone
  std::vector<int> classes;  // AccessClass per zone
  double mean_mac = 0.0;
  double mean_acsd = 0.0;
  double fairness = 0.0;             // Jain index over MAC
  double population_fairness = 0.0;  // population-weighted
  double vulnerable_fairness = 0.0;  // weighted by population x vulnerability
  uint64_t spqs = 0;
  double elapsed_s = 0.0;
  uint64_t gravity_trips = 0;
};

/// Assembles the user-facing answer from zone-level measures: classes,
/// summary means, and the three fairness indices. Shared by the single
/// client engine below and the concurrent serve subsystem (serve/server.h);
/// `result.mac`/`result.acsd` must already be populated.
void FinalizeAccessQueryResult(const std::vector<synth::Zone>& zones,
                               AccessQueryResult* result);

/// Kernel-backed FinalizeAccessQueryResult, bit-identical to the scalar
/// form (which stays as the foil): the summary means, classes and the
/// three Jain indices reduce through the columnar measure variants.
void FinalizeAccessQueryResultColumnar(const std::vector<synth::Zone>& zones,
                                       AccessQueryResult* result);

/// Axes of a vector query: one request template swept across POI
/// categories, TODAM seeds (the `t`-resample axis) and cost definitions.
/// An empty axis means "the template's value". Derived results are ordered
/// category-major, then seed, then cost member — the order QueryVector
/// returns and the serve batch tier caches under.
struct VectorQuerySpec {
  std::vector<synth::PoiCategory> categories;
  std::vector<uint64_t> seeds;
  std::vector<CostMember> cost_members;
  /// false selects the scalar foil: one independent Query per derived
  /// member, sharing nothing. Kept for equivalence tests and the
  /// bench_load speedup gate.
  bool use_columnar = true;
};

/// Owns a city and serves access queries against it.
class AccessQueryEngine {
 public:
  /// Takes ownership of the city. The offline phase for `interval` runs
  /// immediately.
  AccessQueryEngine(synth::City city, gtfs::TimeInterval interval);

  const synth::City& city() const { return city_; }
  const gtfs::TimeInterval& interval() const { return interval_; }
  double offline_seconds() const { return pipeline_->offline_seconds(); }

  /// Answers an AQ for one POI category under the current scenario.
  util::Result<AccessQueryResult> Query(synth::PoiCategory category,
                                        const AccessQueryOptions& options);

  /// Answers a vector of derived queries in one call. All members of a
  /// (category, seed) group share ONE exact labeling pass — journeys do
  /// not depend on the cost definition — and each member's measures are
  /// derived columnarly, bit-identical to the single Query it replaces
  /// (including `spqs`, which every single exact query would pay in full).
  /// Requires `base.exact`: SSR templates train per-member models and have
  /// no shared pass to amortise (InvalidArgument).
  util::Result<std::vector<AccessQueryResult>> QueryVector(
      synth::PoiCategory category, const AccessQueryOptions& base,
      const VectorQuerySpec& spec);

  /// Dynamic scenario edit: adds a POI (e.g. a candidate facility site).
  /// Returns its id. Takes effect on the next Query().
  uint32_t AddPoi(synth::PoiCategory category, const geo::Point& position);

  /// Dynamic scenario edit: removes a POI by id. NotFound if absent.
  util::Status RemovePoi(uint32_t poi_id);

  /// Switches the analysis interval, re-running the offline phase (hop
  /// trees are interval-specific).
  void SetInterval(const gtfs::TimeInterval& interval);

  /// Monotonic counter bumped by every scenario mutation (POI add/remove,
  /// interval switch). External caches keyed on it observe staleness
  /// without inspecting the scenario itself.
  uint64_t scenario_version() const { return scenario_version_; }

 private:
  synth::City city_;
  gtfs::TimeInterval interval_;
  std::unique_ptr<SsrPipeline> pipeline_;
  uint64_t scenario_version_ = 0;
};

}  // namespace staq::core
