#include "core/features.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace staq::core {

namespace {

const char* const kFeatureNames[kNumFeatures] = {
    "od_distance_m",        // 0
    "walkable",             // 1
    "reachable_1hop",       // 2
    "reachable_2hop",       // 3
    "ob_best_dist_to_d_m",  // 4
    "ob_best_service",      // 5
    "ob_best_journey_s",    // 6
    "ib_best_dist_to_o_m",  // 7
    "ib_best_service",      // 8
    "ib_best_journey_s",    // 9
    "interchange_count",    // 10
    "ic_nearest_to_o_m",    // 11
    "ic_nearest_to_d_m",    // 12
    "ic_max_strength",      // 13
    "hf_best_dist_to_d_m",  // 14
    "hf_interchanges",      // 15
    "ob_leaf_count",        // 16
    "ib_leaf_count",        // 17
    "reach2_fraction",      // 18
    "ob_total_service",     // 19
};

/// Service-count threshold marking a leaf as "high frequency": the top
/// quartile of the tree's leaves (>= 1).
uint32_t HighFrequencyThreshold(const HopTree& tree) {
  if (tree.leaves().empty()) return 1;
  std::vector<uint32_t> counts;
  counts.reserve(tree.size());
  for (const HopLeaf& leaf : tree.leaves()) counts.push_back(leaf.service_count);
  size_t idx = counts.size() * 3 / 4;
  std::nth_element(counts.begin(), counts.begin() + idx, counts.end());
  return std::max<uint32_t>(1, counts[idx]);
}

/// Sorted zone-id intersection between two trees' leaves.
bool LeavesIntersect(const HopTree& a, const HopTree& b) {
  auto ia = a.leaves().begin(), ea = a.leaves().end();
  auto ib = b.leaves().begin(), eb = b.leaves().end();
  while (ia != ea && ib != eb) {
    if (ia->zone < ib->zone) {
      ++ia;
    } else if (ib->zone < ia->zone) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

const char* FeatureName(size_t index) {
  return index < kNumFeatures ? kFeatureNames[index] : "invalid";
}

FeatureExtractor::FeatureExtractor(const synth::City* city,
                                   const IsochroneSet* isochrones,
                                   const HopTreeSet* hop_trees)
    : city_(city), isochrones_(isochrones), hop_trees_(hop_trees) {
  std::vector<geo::IndexedPoint> centroids;
  centroids.reserve(city_->zones.size());
  for (const synth::Zone& z : city_->zones) {
    centroids.push_back(geo::IndexedPoint{z.centroid, z.id});
  }
  zone_index_ = std::make_unique<geo::KdTree>(std::move(centroids));
}

uint32_t FeatureExtractor::PoiZone(const synth::Poi& poi) const {
  return zone_index_->Nearest(poi.position).id;
}

FeatureExtractor::OriginCache FeatureExtractor::ComputeOriginCache(
    uint32_t zone) const {
  OriginCache cache;
  auto reachable = hop_trees_->ReachableZones(zone, 2);
  cache.reach2_fraction = static_cast<double>(reachable.size()) /
                          static_cast<double>(city_->zones.size());
  for (const HopLeaf& leaf : hop_trees_->Outbound(zone).leaves()) {
    cache.ob_total_service += leaf.service_count;
  }
  cache.hf_threshold = HighFrequencyThreshold(hop_trees_->Outbound(zone));
  cache.ready = true;
  return cache;
}

void FeatureExtractor::ExtractOd(uint32_t zone, const synth::Poi& poi,
                                 double* out) const {
  uint32_t poi_zone = PoiZone(poi);
  auto interchanges =
      FindInterchanges(hop_trees_->Outbound(zone),
                       hop_trees_->Inbound(poi_zone), *isochrones_);
  ExtractOdImpl(zone, poi, poi_zone, interchanges, ComputeOriginCache(zone),
                out);
}

void FeatureExtractor::ExtractOdImpl(
    uint32_t zone, const synth::Poi& poi, uint32_t poi_zone,
    const std::vector<Interchange>& interchanges, const OriginCache& origin,
    double* out) const {
  const geo::Point& o = city_->zones[zone].centroid;
  const geo::Point& d = poi.position;
  const HopTree& ob = hop_trees_->Outbound(zone);
  const HopTree& ib = hop_trees_->Inbound(poi_zone);
  double od = geo::Distance(o, d);
  double reach_m = isochrones_->config().ReachMeters();

  std::fill(out, out + kNumFeatures, 0.0);
  out[0] = od;
  out[1] = od <= reach_m ? 1.0 : 0.0;
  out[2] = ob.Find(poi_zone) != nullptr ? 1.0 : 0.0;
  out[3] = (out[2] != 0.0 || LeavesIntersect(ob, ib)) ? 1.0 : 0.0;

  // Nearest outbound leaf to the destination.
  out[4] = od;  // fallback when the tree is empty: best you can do is walk
  for (const HopLeaf& leaf : ob.leaves()) {
    double dist = geo::Distance(leaf.position, d);
    if (dist < out[4]) {
      out[4] = dist;
      out[5] = leaf.service_count;
      out[6] = leaf.mean_journey_s;
    }
  }
  // Nearest inbound leaf to the origin.
  out[7] = od;
  for (const HopLeaf& leaf : ib.leaves()) {
    double dist = geo::Distance(leaf.position, o);
    if (dist < out[7]) {
      out[7] = dist;
      out[8] = leaf.service_count;
      out[9] = leaf.mean_journey_s;
    }
  }

  // Interchange structure.
  out[10] = static_cast<double>(interchanges.size());
  out[11] = od;
  out[12] = od;
  for (const Interchange& ic : interchanges) {
    out[11] = std::min(out[11], geo::Distance(ic.position, o));
    out[12] = std::min(out[12], geo::Distance(ic.position, d));
    out[13] = std::max(out[13], static_cast<double>(ic.strength));
  }

  // High-frequency reach: how close the top-quartile outbound leaves get
  // to the destination, and how many of them host an interchange.
  uint32_t hf_threshold = origin.hf_threshold;
  out[14] = od;
  for (const HopLeaf& leaf : ob.leaves()) {
    if (leaf.service_count < hf_threshold) continue;
    out[14] = std::min(out[14], geo::Distance(leaf.position, d));
  }
  for (const Interchange& ic : interchanges) {
    const HopLeaf* leaf = ob.Find(ic.ob_zone);
    if (leaf != nullptr && leaf->service_count >= hf_threshold) {
      out[15] += 1.0;
    }
  }

  out[16] = static_cast<double>(ob.size());
  out[17] = static_cast<double>(ib.size());
  out[18] = origin.reach2_fraction;
  out[19] = origin.ob_total_service;
}

ml::Matrix FeatureExtractor::ExtractZoneMatrix(
    const std::vector<synth::Poi>& pois,
    const std::vector<std::vector<double>>& alpha) const {
  size_t num_zones = city_->zones.size();
  ml::Matrix features(num_zones, kNumFeatures);

  // POI zones are shared across origins; resolve once.
  std::vector<uint32_t> poi_zone(pois.size());
  for (size_t j = 0; j < pois.size(); ++j) poi_zone[j] = PoiZone(pois[j]);

  std::vector<double> od_features(kNumFeatures);
  for (uint32_t z = 0; z < num_zones; ++z) {
    OriginCache origin = ComputeOriginCache(z);
    // Interchanges depend only on the destination ZONE; POIs sharing a
    // zone reuse the computation.
    std::unordered_map<uint32_t, std::vector<Interchange>> ic_cache;

    double* row = features.row(z);
    double weight_sum = 0.0;
    for (size_t j = 0; j < pois.size(); ++j) {
      double w = alpha[z][j];
      if (w <= 0.0) continue;
      auto [it, inserted] = ic_cache.try_emplace(poi_zone[j]);
      if (inserted) {
        it->second = FindInterchanges(hop_trees_->Outbound(z),
                                      hop_trees_->Inbound(poi_zone[j]),
                                      *isochrones_);
      }
      ExtractOdImpl(z, pois[j], poi_zone[j], it->second, origin,
                    od_features.data());
      for (size_t f = 0; f < kNumFeatures; ++f) {
        row[f] += w * od_features[f];
      }
      weight_sum += w;
    }
    if (weight_sum > 0.0) {
      for (size_t f = 0; f < kNumFeatures; ++f) row[f] /= weight_sum;
    }
  }
  return features;
}

}  // namespace staq::core
