// Data sampling (paper §IV-C): splitting zones into the labeled set L and
// unlabeled set U by a sampling budget β.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace staq::core {

/// Uniform random sample of ⌈β · num_zones⌉ zones (at least 2, at most
/// all), ascending ids. The paper assumes random sampling gives reasonable
/// geographic coverage.
util::Result<std::vector<uint32_t>> SampleLabeledZones(size_t num_zones,
                                                       double beta,
                                                       uint64_t seed);

}  // namespace staq::core
