// Online feature extraction (paper §IV-B).
//
// For a (z_i, p_j) pair, the extractor maps the query over the outbound
// tree OB(z_i) and the inbound tree IB(zone(p_j)) and emits a fixed-width
// descriptor of their connectivity: reachability flags, nearest-leaf
// geometry and service statistics, interchange structure, high-frequency
// route reach, and origin-level coverage. For training, per-OD vectors are
// aggregated to the origin level with the same α weights the gravity-based
// access measures use (§IV-C).
#pragma once

#include <memory>
#include <vector>

#include "core/hoptree.h"
#include "core/interchange.h"
#include "core/isochrone.h"
#include "geo/kdtree.h"
#include "ml/matrix.h"
#include "synth/city_builder.h"

namespace staq::core {

/// Width of the per-OD feature vector.
inline constexpr size_t kNumFeatures = 20;

/// Stable name of each feature dimension (for docs/exports).
const char* FeatureName(size_t index);

/// Computes per-OD and zone-aggregated feature vectors from pre-computed
/// structures. Read-only over the city; cheap to construct.
class FeatureExtractor {
 public:
  FeatureExtractor(const synth::City* city, const IsochroneSet* isochrones,
                   const HopTreeSet* hop_trees);

  /// The zone a POI belongs to (nearest centroid).
  uint32_t PoiZone(const synth::Poi& poi) const;

  /// Fills `out[0..kNumFeatures)` with the descriptor of (zone, poi).
  void ExtractOd(uint32_t zone, const synth::Poi& poi, double* out) const;

  /// |Z| x kNumFeatures matrix: per-OD features aggregated to the origin
  /// level by an α-weighted mean (α rows normalised per zone, as produced
  /// by AttractivenessMatrix). alpha[z].size() must equal pois.size().
  ml::Matrix ExtractZoneMatrix(
      const std::vector<synth::Poi>& pois,
      const std::vector<std::vector<double>>& alpha) const;

 private:
  struct OriginCache {
    double reach2_fraction = 0.0;
    double ob_total_service = 0.0;
    uint32_t hf_threshold = 1;  // "high frequency" leaf service cut-off
    bool ready = false;
  };

  void ExtractOdImpl(uint32_t zone, const synth::Poi& poi, uint32_t poi_zone,
                     const std::vector<Interchange>& interchanges,
                     const OriginCache& origin, double* out) const;
  OriginCache ComputeOriginCache(uint32_t zone) const;

  const synth::City* city_;
  const IsochroneSet* isochrones_;
  const HopTreeSet* hop_trees_;
  std::unique_ptr<geo::KdTree> zone_index_;
};

}  // namespace staq::core
