// Interchange identification (paper §IV-B1).
//
// An interchange exists where a leaf of the origin's outbound tree is
// within walking distance of a leaf of the destination's inbound tree: a
// passenger can ride out of the origin, walk, and ride into the
// destination. Computed online per (z_i, z_j) query with a k-NN (k = 1)
// search from each outbound leaf onto the inbound tree followed by a
// walking-isochrone intersection test.
#pragma once

#include <vector>

#include "core/hoptree.h"
#include "core/isochrone.h"

namespace staq::core {

/// A feasible mid-journey connection between the two trees.
struct Interchange {
  uint32_t ob_zone = 0;  // leaf zone of the outbound tree
  uint32_t ib_zone = 0;  // leaf zone of the inbound tree
  double gap_m = 0.0;    // centroid distance between the two leaf zones
  /// Connectivity strength: min(outbound service count, inbound service
  /// count) of the joined leaves.
  uint32_t strength = 0;
  geo::Point position;   // midpoint, used for proximity features
};

/// Finds all interchanges between ob and ib. Same-zone leaf pairs always
/// interchange; distinct zones interchange when their walking isochrones
/// overlap.
std::vector<Interchange> FindInterchanges(const HopTree& ob, const HopTree& ib,
                                          const IsochroneSet& isochrones);

}  // namespace staq::core
