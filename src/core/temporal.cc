#include "core/temporal.h"

#include <algorithm>
#include <cassert>

namespace staq::core {

util::Result<std::vector<IntervalResult>> CompareIntervals(
    AccessQueryEngine* engine, synth::PoiCategory category,
    const AccessQueryOptions& options,
    const std::vector<gtfs::TimeInterval>& intervals) {
  if (intervals.empty()) {
    return util::Status::InvalidArgument("no intervals given");
  }
  std::vector<IntervalResult> out;
  out.reserve(intervals.size());
  for (const gtfs::TimeInterval& interval : intervals) {
    engine->SetInterval(interval);
    auto result = engine->Query(category, options);
    if (!result.ok()) return result.status();
    out.push_back(IntervalResult{interval, std::move(result).value()});
  }
  return out;
}

std::vector<double> TemporalSpread(
    const std::vector<IntervalResult>& results) {
  assert(!results.empty());
  size_t n = results[0].result.mac.size();
  std::vector<double> spread(n, 0.0);
  for (size_t z = 0; z < n; ++z) {
    double lo = results[0].result.mac[z];
    double hi = lo;
    for (const IntervalResult& r : results) {
      assert(r.result.mac.size() == n);
      lo = std::min(lo, r.result.mac[z]);
      hi = std::max(hi, r.result.mac[z]);
    }
    spread[z] = hi - lo;
  }
  return spread;
}

std::vector<uint32_t> TemporalAccessDeserts(
    const std::vector<IntervalResult>& results, double factor) {
  assert(!results.empty());
  std::vector<uint32_t> deserts;
  size_t n = results[0].result.mac.size();
  for (uint32_t z = 0; z < n; ++z) {
    double reference = results[0].result.mac[z];
    if (reference <= 0.0) continue;
    for (size_t i = 1; i < results.size(); ++i) {
      if (results[i].result.mac[z] > factor * reference) {
        deserts.push_back(z);
        break;
      }
    }
  }
  return deserts;
}

}  // namespace staq::core
