// Labeled-set selection strategies beyond uniform random sampling.
//
// The paper samples L uniformly and notes (§IV-C, §VI) that "active
// learning strategies may be explored to ensure coverage and to capture
// aspects of uncertainty". This module implements that future-work item:
//
//  * kRandom         — the paper's baseline (core/sampling.h).
//  * kSpatialSpread  — greedy k-centre (farthest-point) selection on zone
//                      centroids: guarantees geographic coverage, the
//                      property random sampling only achieves in
//                      expectation.
//  * kFeatureDiverse — k-means++-style D² sampling in standardised feature
//                      space: spends the budget where the connectivity
//                      descriptors differ most.
//
// All strategies are deterministic given the seed.
#pragma once

#include <vector>

#include "geo/latlon.h"
#include "ml/matrix.h"
#include "util/status.h"

namespace staq::core {

enum class SamplingStrategy {
  kRandom = 0,
  kSpatialSpread,
  kFeatureDiverse,
};

const char* SamplingStrategyName(SamplingStrategy strategy);

/// Selects ⌈β·n⌉ zones (≥ 2) with the given strategy, ascending ids.
/// `positions` is required (size n) for kSpatialSpread; `features`
/// (n rows) for kFeatureDiverse; unused arguments may be null.
util::Result<std::vector<uint32_t>> SelectLabeledZones(
    SamplingStrategy strategy, size_t num_zones, double beta, uint64_t seed,
    const std::vector<geo::Point>* positions, const ml::Matrix* features);

}  // namespace staq::core
