// Labeling (paper §IV-D): running SPQs for the trips of selected zones and
// aggregating the access costs to zone level.
//
// For each labeled zone, every trip recorded for it in M_g is resolved by
// the multi-modal router (the OTP substitute) and the chosen cost (JT or
// GAC) is aggregated to the zone mean (MAC) and standard deviation (ACSD),
// which form the SSR target vector. This is by far the dominant cost of
// the whole solution and is proportional to β — the scalability lever of
// §IV-E.
//
// Two execution strategies produce bit-identical labels:
//  * kPerTrip issues one Router::Route call per TODAM trip (the original
//    formulation, kept as the equivalence baseline);
//  * kBatched groups a zone's trips by departure time and answers each
//    group with one Router::RouteMany expansion, deduplicating repeated
//    POIs within a group and reusing the zone's access-stop lookup across
//    all groups. Costs are still accumulated in original trip order, so
//    the floating-point aggregates match the per-trip path exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "core/todam.h"
#include "router/csa.h"
#include "router/router.h"
#include "synth/city_builder.h"

namespace staq::core {

/// Which access cost fills the TODAM (paper §III-C).
enum class CostKind {
  kJourneyTime,      // JT: AT(d) - t, seconds
  kGeneralizedCost,  // GAC: Eq. 1, generalized seconds
};

const char* CostKindName(CostKind kind);

/// How the engine dispatches a zone's SPQs to the router. All modes give
/// bit-identical ZoneLabels; kBatched shares one expansion per departure
/// group, kProfile shares ONE connection-scan sweep across every departure
/// group of the zone.
enum class LabelingMode {
  kBatched,
  kPerTrip,
  /// One CsaEngine::RouteWindow per zone: every departure group becomes a
  /// lane of a single profile scan. Requires the bound Router to run
  /// RoutingEngine::kCsa (checked at labeling time).
  kProfile,
  /// Resolves per call: kProfile when the bound Router has a CSA engine,
  /// kBatched otherwise. The default for the parallel pipeline and serve.
  kAuto,
};

/// Zone-level label: the access measures of §III-D restricted to one zone.
struct ZoneLabel {
  double mac = 0.0;   // mean access cost
  double acsd = 0.0;  // access cost standard deviation
  uint32_t num_trips = 0;
  uint32_t num_infeasible = 0;  // trips the router could not resolve
  uint32_t num_walk_only = 0;
};

struct TripCostColumns;  // core/columnar.h

/// Runs SPQs and aggregates. Holds a Router (stateful scratch), so one
/// engine per thread.
class LabelingEngine {
 public:
  /// `city` and `router` must outlive the engine. The default kAuto mode
  /// follows the router's engine: window scans when it runs CSA, batched
  /// expansions otherwise.
  LabelingEngine(const synth::City* city, router::Router* router,
                 router::GacWeights gac_weights = {},
                 LabelingMode mode = LabelingMode::kAuto);

  /// Labels one zone: resolves every trip of `zone` in `todam` against the
  /// given POI set and aggregates `kind` costs. Infeasible trips are
  /// excluded from the aggregates but counted.
  ZoneLabel LabelZone(const Todam& todam, uint32_t zone,
                      const std::vector<synth::Poi>& pois, CostKind kind,
                      gtfs::Day day);

  /// Labels many zones (the L set, or all zones for the naive baseline).
  std::vector<ZoneLabel> LabelZones(const Todam& todam,
                                    const std::vector<uint32_t>& zones,
                                    const std::vector<synth::Poi>& pois,
                                    CostKind kind, gtfs::Day day);

  /// Columnar capture hook (core/columnar.h): labels `zone` exactly like
  /// LabelZone while appending every trip's cost *basis* (JT seconds, the
  /// five GAC components, fare) to `columns` in original trip order. One
  /// captured pass derives any number of cost definitions bit-identically
  /// — journeys do not depend on the cost kind. Routing mode, SPQ
  /// accounting and the returned label (kJourneyTime) are unchanged.
  ZoneLabel CaptureZoneCosts(const Todam& todam, uint32_t zone,
                             const std::vector<synth::Poi>& pois,
                             gtfs::Day day, TripCostColumns* columns);

  /// Delta-labeling hook (serve subsystem): relabels exactly `zones` and
  /// patches the full-size label vector `labels` (indexed by zone id) in
  /// place. Each patched entry is bit-identical to what a fresh LabelZone
  /// call would produce, so patching after a scenario edit equals a full
  /// recompute on the zones that changed.
  void RelabelZones(const Todam& todam, const std::vector<uint32_t>& zones,
                    const std::vector<synth::Poi>& pois, CostKind kind,
                    gtfs::Day day, std::vector<ZoneLabel>* labels);

  /// Rebinds the engine to a different router (e.g. after a scenario swap
  /// that replaced the walk table). Invalidates the access-stop cache —
  /// cached hops reference the previous router's stop set.
  void SetRouter(router::Router* router);

  /// Scenario mutation hook: drops every cached per-zone AccessStops list.
  /// Must be called whenever the stop set or walk parameters behind the
  /// bound router change; zone centroids are immutable, so POI-only edits
  /// do not require it.
  void InvalidateAccessStopCache();

  /// Swaps the GAC weights used by subsequent kGeneralizedCost labeling.
  /// Serve workers share one engine across requests with differing weights.
  void set_gac_weights(router::GacWeights weights) { gac_weights_ = weights; }

  /// Total SPQs answered since construction (for cost accounting). One per
  /// TODAM trip regardless of mode — batching changes how queries are
  /// executed, not how many are asked.
  uint64_t spq_count() const { return spq_count_; }

  /// Router expansions actually dispatched. Equals spq_count() in kPerTrip
  /// mode; in kBatched mode each departure group costs one expansion; in
  /// kProfile mode each zone costs one window scan.
  uint64_t expansion_count() const { return expansion_count_; }

 private:
  ZoneLabel LabelZonePerTrip(const Todam& todam, uint32_t zone,
                             const std::vector<synth::Poi>& pois,
                             CostKind kind, gtfs::Day day);
  ZoneLabel LabelZoneBatched(const Todam& todam, uint32_t zone,
                             const std::vector<synth::Poi>& pois,
                             CostKind kind, gtfs::Day day);
  ZoneLabel LabelZoneProfile(const Todam& todam, uint32_t zone,
                             const std::vector<synth::Poi>& pois,
                             CostKind kind, gtfs::Day day);

  const synth::City* city_;
  router::Router* router_;
  router::GacWeights gac_weights_;
  LabelingMode mode_;
  uint64_t spq_count_ = 0;
  uint64_t expansion_count_ = 0;

  // Columnar capture sink: when set, every resolved journey is also
  // recorded at capture_base_ + original trip index. Active only inside
  // CaptureZoneCosts.
  TripCostColumns* capture_ = nullptr;
  size_t capture_base_ = 0;

  /// The zone's access stops, from the per-zone cache when warm. Batched
  /// mode only; the serve hot path relabels the same zones over and over,
  /// which makes the walk-table lookup worth caching across calls.
  const std::vector<router::WalkHop>& CachedAccessStops(uint32_t zone);

  // Per-zone AccessStops cache (batched mode). zone_access_valid_[z] gates
  // zone_access_[z]; InvalidateAccessStopCache / SetRouter reset it.
  std::vector<std::vector<router::WalkHop>> zone_access_;
  std::vector<uint8_t> zone_access_valid_;

  // Batched-mode scratch (capacity persists across zones).
  std::vector<uint32_t> order_;          // trip indices sorted by departure
  std::vector<uint64_t> poi_stamp_;      // per-POI: last group it appeared in
  std::vector<uint32_t> poi_slot_;       // per-POI: its slot in that group
  uint64_t group_stamp_ = 0;
  std::vector<geo::Point> group_points_;        // deduped targets of a group
  std::vector<router::Journey> group_journeys_;
  std::vector<uint32_t> group_slots_;    // slot per grouped trip
  std::vector<double> trip_cost_;        // per original trip index
  std::vector<uint8_t> trip_flags_;      // bit0 feasible, bit1 walk-only
  std::vector<geo::Neighbor> neighbor_scratch_;

  // Profile-mode scratch: the zone's POIs deduplicated once across every
  // departure group (poi_zone_* stamps, like the per-group poi_* pair), one
  // WindowLane per group, and the lanes' target/journey lists stored flat
  // so lane pointers index into two shared arrays.
  std::vector<uint64_t> poi_zone_stamp_;
  std::vector<uint32_t> poi_zone_slot_;
  uint64_t zone_stamp_ = 0;
  std::vector<geo::Point> unique_points_;       // zone-unique POI positions
  std::vector<uint32_t> profile_members_;       // per-lane unique-target ids
  std::vector<router::Journey> profile_journeys_;
  std::vector<size_t> lane_offsets_;            // lane -> profile_members_ pos
  std::vector<router::WindowLane> lanes_;
};

}  // namespace staq::core
