// Labeling (paper §IV-D): running SPQs for the trips of selected zones and
// aggregating the access costs to zone level.
//
// For each labeled zone, every trip recorded for it in M_g is resolved by
// the multi-modal router (the OTP substitute) and the chosen cost (JT or
// GAC) is aggregated to the zone mean (MAC) and standard deviation (ACSD),
// which form the SSR target vector. This is by far the dominant cost of
// the whole solution and is proportional to β — the scalability lever of
// §IV-E.
#pragma once

#include <cstdint>
#include <vector>

#include "core/todam.h"
#include "router/router.h"
#include "synth/city_builder.h"

namespace staq::core {

/// Which access cost fills the TODAM (paper §III-C).
enum class CostKind {
  kJourneyTime,      // JT: AT(d) - t, seconds
  kGeneralizedCost,  // GAC: Eq. 1, generalized seconds
};

const char* CostKindName(CostKind kind);

/// Zone-level label: the access measures of §III-D restricted to one zone.
struct ZoneLabel {
  double mac = 0.0;   // mean access cost
  double acsd = 0.0;  // access cost standard deviation
  uint32_t num_trips = 0;
  uint32_t num_infeasible = 0;  // trips the router could not resolve
  uint32_t num_walk_only = 0;
};

/// Runs SPQs and aggregates. Holds a Router (stateful scratch), so one
/// engine per thread.
class LabelingEngine {
 public:
  /// `city` and `router` must outlive the engine.
  LabelingEngine(const synth::City* city, router::Router* router,
                 router::GacWeights gac_weights = {});

  /// Labels one zone: resolves every trip of `zone` in `todam` against the
  /// given POI set and aggregates `kind` costs. Infeasible trips are
  /// excluded from the aggregates but counted.
  ZoneLabel LabelZone(const Todam& todam, uint32_t zone,
                      const std::vector<synth::Poi>& pois, CostKind kind,
                      gtfs::Day day);

  /// Labels many zones (the L set, or all zones for the naive baseline).
  std::vector<ZoneLabel> LabelZones(const Todam& todam,
                                    const std::vector<uint32_t>& zones,
                                    const std::vector<synth::Poi>& pois,
                                    CostKind kind, gtfs::Day day);

  /// Total SPQs issued since construction (for cost accounting).
  uint64_t spq_count() const { return spq_count_; }

 private:
  const synth::City* city_;
  router::Router* router_;
  router::GacWeights gac_weights_;
  uint64_t spq_count_ = 0;
};

}  // namespace staq::core
