// Result export: GeoJSON and Markdown.
//
// The access measures are "typically mapped to provide a visual analysis"
// (paper §III-D, Fig. 5). ExportAccessGeoJson writes a FeatureCollection —
// one Point feature per zone carrying MAC / ACSD / class / population, plus
// the POI sites — that drops straight into QGIS, kepler.gl or geojson.io.
// WriteAccessReport renders the same result as a human-readable Markdown
// briefing (summary, fairness, class histogram, worst zones).
#pragma once

#include <string>

#include "core/access_query.h"
#include "geo/latlon.h"

namespace staq::core {

/// Writes a GeoJSON FeatureCollection for `result` over `city`.
/// `projection` converts the city's local metres to WGS-84. `pois`
/// (optional) adds the queried POI sites as features.
util::Status ExportAccessGeoJson(const synth::City& city,
                                 const geo::LocalProjection& projection,
                                 const AccessQueryResult& result,
                                 const std::vector<synth::Poi>& pois,
                                 const std::string& path);

/// Renders a Markdown report of the query result.
/// `title` heads the document (e.g. "Access to hospitals, weekday AM peak").
std::string RenderAccessReport(const synth::City& city,
                               const AccessQueryResult& result,
                               const std::string& title);

/// RenderAccessReport + write to `path`.
util::Status WriteAccessReport(const synth::City& city,
                               const AccessQueryResult& result,
                               const std::string& title,
                               const std::string& path);

}  // namespace staq::core
