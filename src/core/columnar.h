// Column-at-a-time (SoA) measure evaluation over one shared labeling pass.
//
// The key observation: a routed Journey is independent of the access-cost
// definition. JT and every GAC variant are post-processing of the same
// journey, so a batch of queries that differ only in cost definition can
// share ONE labeling pass — the dominant cost of the whole solution — and
// derive each member's per-zone MAC/ACSD from captured per-trip cost
// *components* with cheap vector kernels. This is the ClickHouse-style
// "columns once, aggregates many" restructuring of ROADMAP item 4.
//
// Determinism contract (mirrors ml/kernels.h): every derived value
// accumulates in the same order as the scalar path it replaces —
//  * a member's GAC column is one Gemm over the five cost components in
//    ascending component order, matching the scalar expression's
//    left-associated sum (cost.cc), with the FARE/VOT term applied as a
//    per-element division epilogue (never multiply-by-reciprocal);
//  * per-zone aggregation compacts a zone's feasible costs preserving the
//    original trip order, then reduces with the single-accumulator
//    ascending-index ReduceSum/Dot kernels — the same addition sequence as
//    the interleaved scalar loop in labeling.cc.
// The scalar implementations stay in place as the equivalence foil; the
// golden suite (tests/core/columnar_test.cc) asserts bit-identity on both
// city families across seeds and cost kinds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/labeling.h"
#include "router/cost.h"

namespace staq::core {

/// The five weighted GAC components of Eq. 1, in the order the scalar
/// expression sums them: TAN, WT, IVT, ET, transfers. FARE/VOT is not a
/// component — it is a division epilogue (see MemberCostColumn).
inline constexpr size_t kNumGacParts = 5;

/// Per-trip cost basis captured during one labeling pass, CSR-grouped by
/// zone: trips of zone z occupy [zone_offsets[z], zone_offsets[z + 1]) in
/// every column, in the zone's ORIGINAL trip order (the aggregation order
/// of the scalar path). Infeasible trips hold zeros and are excluded from
/// aggregates via `flags`.
struct TripCostColumns {
  std::vector<size_t> zone_offsets{0};  // CSR offsets, one per zone + 1
  std::vector<uint8_t> flags;           // bit0 feasible, bit1 walk-only
  std::vector<double> jt;               // JT seconds (AT(d) - t)
  std::vector<double> gac_parts;        // trips x kNumGacParts, row-major
  std::vector<double> fare;             // currency units

  size_t num_trips() const { return flags.size(); }
  size_t num_zones() const { return zone_offsets.size() - 1; }

  /// Opens the next zone's trip range; returns the base index its trips
  /// occupy. Newly opened slots are zeroed (the infeasible encoding).
  size_t AppendZone(size_t trips);

  /// Records one resolved trip at `index` (base + original trip index).
  /// Infeasible journeys leave the zeroed slot and clear the flags.
  void Record(size_t index, const router::Journey& journey);

  void Clear();
};

/// One cost definition of a vector query. Members that differ only here
/// share a single labeling pass.
struct CostMember {
  CostKind cost = CostKind::kJourneyTime;
  router::GacWeights gac;
};

/// Derives one member's per-trip cost column from the captured components.
/// Bit-identical to evaluating the scalar cost expression per journey for
/// the DfT domain of non-negative weights (a zero initial accumulator only
/// changes bits when a product is -0.0, which non-negative weights over
/// non-negative components cannot produce).
void MemberCostColumn(const TripCostColumns& columns, const CostMember& member,
                      std::vector<double>* out);

/// Aggregates a member's cost column to per-zone labels. Bit-identical to
/// the scalar aggregation tail of LabelingEngine (original-order feasible
/// compaction, then single-accumulator ascending reductions).
std::vector<ZoneLabel> AggregateZoneLabels(const TripCostColumns& columns,
                                           const std::vector<double>& costs);

}  // namespace staq::core
