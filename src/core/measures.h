// Accessibility measures over the (predicted or ground-truth) zone labels
// (paper §III-D): MAC, ACSD, the four-class accessibility classification,
// and the Jain fairness index.
#pragma once

#include <string>
#include <vector>

namespace staq::core {

/// The accessibility classes of §III-D.
enum class AccessClass {
  kBest = 0,        // low MAC, low ACSD
  kWorst,           // high MAC, low ACSD
  kMostlyGood,      // low MAC, high ACSD
  kMostlyBad,       // high MAC, high ACSD
};

const char* AccessClassName(AccessClass c);

/// Classifies every zone using the paper's rule set: "low" means below the
/// across-zone average, "high" above. Returns one class per zone (as int,
/// matching AccessClass).
std::vector<int> ClassifyAccessibility(const std::vector<double>& mac,
                                       const std::vector<double>& acsd);

/// Jain's fairness index over per-zone MAC values:
/// J = (Σx)^2 / (n Σx^2), in (0, 1]; 1 = perfectly even access.
/// Requires non-empty input; all-zero input returns 1 (trivially even).
double JainIndex(const std::vector<double>& values);

/// Population (or any) weighted Jain index: each zone contributes with the
/// given weight, exposing unfairness against specific groups.
double WeightedJainIndex(const std::vector<double>& values,
                         const std::vector<double>& weights);

/// |truth - predicted| of the Jain index — the paper's FIE metric.
double FairnessIndexError(const std::vector<double>& truth_mac,
                          const std::vector<double>& predicted_mac);

// --- columnar (kernel-backed) variants ------------------------------------
//
// Bit-identical to the scalar functions above, which stay as the
// equivalence foil: the ml::kernels reductions accumulate each value in
// the same ascending-index single-accumulator order as the scalar loops
// (splitting an interleaved multi-accumulator loop into one reduction per
// accumulator preserves each accumulator's addition sequence).

/// ClassifyAccessibility with the across-zone means reduced by kernel.
std::vector<int> ClassifyAccessibilityColumnar(const std::vector<double>& mac,
                                               const std::vector<double>& acsd);

/// JainIndex via ReduceSum / Dot.
double JainIndexColumnar(const std::vector<double>& values);

/// WeightedJainIndex via ReduceSum / Dot. The w·x² accumulator reduces as
/// Dot(w ⊙ x, x), preserving the scalar's (w*x)*x product association.
double WeightedJainIndexColumnar(const std::vector<double>& values,
                                 const std::vector<double>& weights);

}  // namespace staq::core
