// Walking isochrones (paper §IV-A, Fig. 2C).
//
// The isochrone of a zone is the area walkable from its centroid within
// the acceptable walking time τ at speed ω, computed in the road graph G.
// The paper derives shapefiles; we take the convex hull of the road nodes
// reached by a bounded Dijkstra, which supports the two operations the
// pipeline needs: stop ∩ isochrone tests and isochrone x isochrone
// intersection (the interchange test).
#pragma once

#include <vector>

#include "geo/polygon.h"
#include "graph/graph.h"
#include "synth/city_builder.h"

namespace staq::core {

/// Walking parameters for isochrone computation. Paper values: τ = 600 s,
/// ω = 4.5 km/h.
struct IsochroneConfig {
  double tau_s = 600;
  double omega_kph = 4.5;

  /// Maximum walkable metres implied by τ and ω.
  double ReachMeters() const { return tau_s * omega_kph / 3.6; }
};

/// Isochrone around one road node: convex hull of nodes within the walk
/// budget. Degenerates to a small square around isolated nodes so that
/// containment tests stay meaningful.
geo::Polygon WalkingIsochrone(const graph::Graph& road, graph::NodeId source,
                              const IsochroneConfig& config);

/// The pre-computed isochrone set W: one polygon per zone.
class IsochroneSet {
 public:
  /// Computes isochrones for every zone of the city (paper: pre-computed
  /// offline). O(|Z| x bounded-Dijkstra).
  IsochroneSet(const synth::City& city, IsochroneConfig config);

  /// Reassembles a set from persisted polygons (snapshot restore); the
  /// polygons are stored verbatim, so the restored set is bit-identical to
  /// the computed one.
  IsochroneSet(IsochroneConfig config, std::vector<geo::Polygon> isochrones)
      : config_(config), isochrones_(std::move(isochrones)) {}

  const IsochroneConfig& config() const { return config_; }
  size_t size() const { return isochrones_.size(); }
  const geo::Polygon& For(uint32_t zone) const { return isochrones_[zone]; }

  /// True if the walkable areas of the two zones overlap.
  bool Overlap(uint32_t zone_a, uint32_t zone_b) const {
    return isochrones_[zone_a].Intersects(isochrones_[zone_b]);
  }

 private:
  IsochroneConfig config_;
  std::vector<geo::Polygon> isochrones_;
};

}  // namespace staq::core
