#include "core/labeling.h"

#include <algorithm>
#include <cmath>

#include "core/columnar.h"
#include "util/check.h"

namespace staq::core {

const char* CostKindName(CostKind kind) {
  switch (kind) {
    case CostKind::kJourneyTime:
      return "JT";
    case CostKind::kGeneralizedCost:
      return "GAC";
  }
  return "unknown";
}

LabelingEngine::LabelingEngine(const synth::City* city,
                               router::Router* router,
                               router::GacWeights gac_weights,
                               LabelingMode mode)
    : city_(city), router_(router), gac_weights_(gac_weights), mode_(mode) {}

void LabelingEngine::SetRouter(router::Router* router) {
  router_ = router;
  InvalidateAccessStopCache();
}

void LabelingEngine::InvalidateAccessStopCache() {
  std::fill(zone_access_valid_.begin(), zone_access_valid_.end(), 0);
}

const std::vector<router::WalkHop>& LabelingEngine::CachedAccessStops(
    uint32_t zone) {
  if (zone_access_valid_.size() <= zone) {
    zone_access_valid_.resize(city_->zones.size(), 0);
    zone_access_.resize(city_->zones.size());
  }
  if (!zone_access_valid_[zone]) {
    router_->walk_table().AccessStops(city_->zones[zone].centroid,
                                      &zone_access_[zone], &neighbor_scratch_);
    zone_access_valid_[zone] = 1;
  }
  return zone_access_[zone];
}

ZoneLabel LabelingEngine::LabelZone(const Todam& todam, uint32_t zone,
                                    const std::vector<synth::Poi>& pois,
                                    CostKind kind, gtfs::Day day) {
  LabelingMode mode = mode_;
  if (mode == LabelingMode::kAuto) {
    mode = router_->csa() != nullptr ? LabelingMode::kProfile
                                     : LabelingMode::kBatched;
  }
  switch (mode) {
    case LabelingMode::kPerTrip:
      return LabelZonePerTrip(todam, zone, pois, kind, day);
    case LabelingMode::kProfile:
      return LabelZoneProfile(todam, zone, pois, kind, day);
    default:
      return LabelZoneBatched(todam, zone, pois, kind, day);
  }
}

ZoneLabel LabelingEngine::LabelZonePerTrip(const Todam& todam, uint32_t zone,
                                           const std::vector<synth::Poi>& pois,
                                           CostKind kind, gtfs::Day day) {
  ZoneLabel label;
  const geo::Point& origin = city_->zones[zone].centroid;
  double sum = 0.0, sum_sq = 0.0;
  uint32_t feasible = 0;

  const std::vector<TripEntry>& trips = todam.TripsFor(zone);
  for (size_t i = 0; i < trips.size(); ++i) {
    const TripEntry& trip = trips[i];
    router::Journey journey = router_->Route(origin, pois[trip.poi].position,
                                             day, trip.depart);
    ++spq_count_;
    ++expansion_count_;
    ++label.num_trips;
    if (capture_ != nullptr) capture_->Record(capture_base_ + i, journey);
    if (!journey.feasible) {
      ++label.num_infeasible;
      continue;
    }
    if (journey.IsWalkOnly()) ++label.num_walk_only;
    double cost = kind == CostKind::kJourneyTime
                      ? journey.JourneyTimeSeconds()
                      : router::GeneralizedAccessCost(journey, gac_weights_);
    sum += cost;
    sum_sq += cost * cost;
    ++feasible;
  }

  if (feasible > 0) {
    double n = static_cast<double>(feasible);
    label.mac = sum / n;
    double var = sum_sq / n - label.mac * label.mac;
    label.acsd = var > 0 ? std::sqrt(var) : 0.0;
  }
  return label;
}

ZoneLabel LabelingEngine::LabelZoneBatched(const Todam& todam, uint32_t zone,
                                           const std::vector<synth::Poi>& pois,
                                           CostKind kind, gtfs::Day day) {
  ZoneLabel label;
  const std::vector<TripEntry>& trips = todam.TripsFor(zone);
  label.num_trips = static_cast<uint32_t>(trips.size());
  spq_count_ += trips.size();
  if (trips.empty()) return label;

  const geo::Point& origin = city_->zones[zone].centroid;
  const std::vector<router::WalkHop>& origin_access = CachedAccessStops(zone);

  order_.resize(trips.size());
  for (uint32_t i = 0; i < trips.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(), [&](uint32_t a, uint32_t b) {
    return trips[a].depart < trips[b].depart;
  });

  if (poi_stamp_.size() < pois.size()) {
    poi_stamp_.resize(pois.size(), 0);
    poi_slot_.resize(pois.size(), 0);
  }
  trip_cost_.resize(trips.size());
  trip_flags_.resize(trips.size());

  // One RouteMany per departure group, with repeated POIs inside a group
  // collapsed to a single target.
  size_t g = 0;
  while (g < order_.size()) {
    gtfs::TimeOfDay depart = trips[order_[g]].depart;
    size_t g_end = g;
    ++group_stamp_;
    group_points_.clear();
    group_slots_.clear();
    while (g_end < order_.size() && trips[order_[g_end]].depart == depart) {
      uint32_t poi = trips[order_[g_end]].poi;
      if (poi_stamp_[poi] != group_stamp_) {
        poi_stamp_[poi] = group_stamp_;
        poi_slot_[poi] = static_cast<uint32_t>(group_points_.size());
        group_points_.push_back(pois[poi].position);
      }
      group_slots_.push_back(poi_slot_[poi]);
      ++g_end;
    }

    group_journeys_.resize(group_points_.size());
    router_->RouteMany(origin, group_points_.data(), group_points_.size(),
                       day, depart, group_journeys_.data(), &origin_access);
    ++expansion_count_;

    for (size_t k = g; k < g_end; ++k) {
      const router::Journey& journey = group_journeys_[group_slots_[k - g]];
      uint32_t idx = order_[k];
      if (capture_ != nullptr) capture_->Record(capture_base_ + idx, journey);
      uint8_t flags = 0;
      double cost = 0.0;
      if (journey.feasible) {
        flags |= 1;
        if (journey.IsWalkOnly()) flags |= 2;
        cost = kind == CostKind::kJourneyTime
                   ? journey.JourneyTimeSeconds()
                   : router::GeneralizedAccessCost(journey, gac_weights_);
      }
      trip_cost_[idx] = cost;
      trip_flags_[idx] = flags;
    }
    g = g_end;
  }

  // Accumulate in ORIGINAL trip order so the floating-point sums match the
  // per-trip path bit for bit.
  double sum = 0.0, sum_sq = 0.0;
  uint32_t feasible = 0;
  for (size_t i = 0; i < trips.size(); ++i) {
    if (!(trip_flags_[i] & 1)) {
      ++label.num_infeasible;
      continue;
    }
    if (trip_flags_[i] & 2) ++label.num_walk_only;
    double cost = trip_cost_[i];
    sum += cost;
    sum_sq += cost * cost;
    ++feasible;
  }

  if (feasible > 0) {
    double n = static_cast<double>(feasible);
    label.mac = sum / n;
    double var = sum_sq / n - label.mac * label.mac;
    label.acsd = var > 0 ? std::sqrt(var) : 0.0;
  }
  return label;
}

ZoneLabel LabelingEngine::LabelZoneProfile(const Todam& todam, uint32_t zone,
                                           const std::vector<synth::Poi>& pois,
                                           CostKind kind, gtfs::Day day) {
  router::CsaEngine* csa = router_->csa();
  STAQ_CHECK(csa != nullptr,
             "LabelingMode::kProfile requires RoutingEngine::kCsa");

  ZoneLabel label;
  const std::vector<TripEntry>& trips = todam.TripsFor(zone);
  label.num_trips = static_cast<uint32_t>(trips.size());
  spq_count_ += trips.size();
  if (trips.empty()) return label;

  const geo::Point& origin = city_->zones[zone].centroid;
  const std::vector<router::WalkHop>& origin_access = CachedAccessStops(zone);

  order_.resize(trips.size());
  for (uint32_t i = 0; i < trips.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(), [&](uint32_t a, uint32_t b) {
    return trips[a].depart < trips[b].depart;
  });

  if (poi_stamp_.size() < pois.size()) {
    poi_stamp_.resize(pois.size(), 0);
    poi_slot_.resize(pois.size(), 0);
  }
  if (poi_zone_stamp_.size() < pois.size()) {
    poi_zone_stamp_.resize(pois.size(), 0);
    poi_zone_slot_.resize(pois.size(), 0);
  }
  trip_cost_.resize(trips.size());
  trip_flags_.resize(trips.size());

  // Every departure group becomes one lane of a single window scan. The
  // zone's POIs are deduplicated twice: once zone-wide (the unique-target
  // table every lane indexes into) and once per group (a lane must list
  // each of its targets exactly once). Lane member/journey lists are flat
  // slices of two shared arrays; group_slots_ records each trip's flat
  // journey position.
  ++zone_stamp_;
  unique_points_.clear();
  profile_members_.clear();
  lane_offsets_.clear();
  lanes_.clear();
  group_slots_.clear();
  size_t g = 0;
  while (g < order_.size()) {
    gtfs::TimeOfDay depart = trips[order_[g]].depart;
    lane_offsets_.push_back(profile_members_.size());
    router::WindowLane lane;
    lane.depart = depart;
    lanes_.push_back(lane);
    ++group_stamp_;
    while (g < order_.size() && trips[order_[g]].depart == depart) {
      uint32_t poi = trips[order_[g]].poi;
      if (poi_zone_stamp_[poi] != zone_stamp_) {
        poi_zone_stamp_[poi] = zone_stamp_;
        poi_zone_slot_[poi] =
            static_cast<uint32_t>(unique_points_.size());
        unique_points_.push_back(pois[poi].position);
      }
      if (poi_stamp_[poi] != group_stamp_) {
        poi_stamp_[poi] = group_stamp_;
        poi_slot_[poi] = static_cast<uint32_t>(profile_members_.size());
        profile_members_.push_back(poi_zone_slot_[poi]);
      }
      group_slots_.push_back(poi_slot_[poi]);
      ++g;
    }
  }
  lane_offsets_.push_back(profile_members_.size());

  profile_journeys_.resize(profile_members_.size());
  for (size_t l = 0; l < lanes_.size(); ++l) {
    lanes_[l].targets = profile_members_.data() + lane_offsets_[l];
    lanes_[l].num_targets = lane_offsets_[l + 1] - lane_offsets_[l];
    lanes_[l].out = profile_journeys_.data() + lane_offsets_[l];
  }
  csa->RouteWindow(origin, unique_points_.data(), unique_points_.size(),
                   lanes_.data(), lanes_.size(), day, &origin_access);
  ++expansion_count_;

  for (size_t k = 0; k < order_.size(); ++k) {
    const router::Journey& journey = profile_journeys_[group_slots_[k]];
    uint32_t idx = order_[k];
    if (capture_ != nullptr) capture_->Record(capture_base_ + idx, journey);
    uint8_t flags = 0;
    double cost = 0.0;
    if (journey.feasible) {
      flags |= 1;
      if (journey.IsWalkOnly()) flags |= 2;
      cost = kind == CostKind::kJourneyTime
                 ? journey.JourneyTimeSeconds()
                 : router::GeneralizedAccessCost(journey, gac_weights_);
    }
    trip_cost_[idx] = cost;
    trip_flags_[idx] = flags;
  }

  // Accumulate in ORIGINAL trip order so the floating-point sums match the
  // per-trip path bit for bit.
  double sum = 0.0, sum_sq = 0.0;
  uint32_t feasible = 0;
  for (size_t i = 0; i < trips.size(); ++i) {
    if (!(trip_flags_[i] & 1)) {
      ++label.num_infeasible;
      continue;
    }
    if (trip_flags_[i] & 2) ++label.num_walk_only;
    double cost = trip_cost_[i];
    sum += cost;
    sum_sq += cost * cost;
    ++feasible;
  }

  if (feasible > 0) {
    double n = static_cast<double>(feasible);
    label.mac = sum / n;
    double var = sum_sq / n - label.mac * label.mac;
    label.acsd = var > 0 ? std::sqrt(var) : 0.0;
  }
  return label;
}

ZoneLabel LabelingEngine::CaptureZoneCosts(const Todam& todam, uint32_t zone,
                                           const std::vector<synth::Poi>& pois,
                                           gtfs::Day day,
                                           TripCostColumns* columns) {
  capture_ = columns;
  capture_base_ = columns->AppendZone(todam.TripsFor(zone).size());
  ZoneLabel label = LabelZone(todam, zone, pois, CostKind::kJourneyTime, day);
  capture_ = nullptr;
  return label;
}

std::vector<ZoneLabel> LabelingEngine::LabelZones(
    const Todam& todam, const std::vector<uint32_t>& zones,
    const std::vector<synth::Poi>& pois, CostKind kind, gtfs::Day day) {
  std::vector<ZoneLabel> out;
  out.reserve(zones.size());
  for (uint32_t z : zones) {
    out.push_back(LabelZone(todam, z, pois, kind, day));
  }
  return out;
}

void LabelingEngine::RelabelZones(const Todam& todam,
                                  const std::vector<uint32_t>& zones,
                                  const std::vector<synth::Poi>& pois,
                                  CostKind kind, gtfs::Day day,
                                  std::vector<ZoneLabel>* labels) {
  for (uint32_t z : zones) {
    (*labels)[z] = LabelZone(todam, z, pois, kind, day);
  }
}

}  // namespace staq::core
