#include "core/labeling.h"

#include <algorithm>
#include <cmath>

namespace staq::core {

const char* CostKindName(CostKind kind) {
  switch (kind) {
    case CostKind::kJourneyTime:
      return "JT";
    case CostKind::kGeneralizedCost:
      return "GAC";
  }
  return "unknown";
}

LabelingEngine::LabelingEngine(const synth::City* city,
                               router::Router* router,
                               router::GacWeights gac_weights,
                               LabelingMode mode)
    : city_(city), router_(router), gac_weights_(gac_weights), mode_(mode) {}

void LabelingEngine::SetRouter(router::Router* router) {
  router_ = router;
  InvalidateAccessStopCache();
}

void LabelingEngine::InvalidateAccessStopCache() {
  std::fill(zone_access_valid_.begin(), zone_access_valid_.end(), 0);
}

const std::vector<router::WalkHop>& LabelingEngine::CachedAccessStops(
    uint32_t zone) {
  if (zone_access_valid_.size() <= zone) {
    zone_access_valid_.resize(city_->zones.size(), 0);
    zone_access_.resize(city_->zones.size());
  }
  if (!zone_access_valid_[zone]) {
    router_->walk_table().AccessStops(city_->zones[zone].centroid,
                                      &zone_access_[zone], &neighbor_scratch_);
    zone_access_valid_[zone] = 1;
  }
  return zone_access_[zone];
}

ZoneLabel LabelingEngine::LabelZone(const Todam& todam, uint32_t zone,
                                    const std::vector<synth::Poi>& pois,
                                    CostKind kind, gtfs::Day day) {
  return mode_ == LabelingMode::kBatched
             ? LabelZoneBatched(todam, zone, pois, kind, day)
             : LabelZonePerTrip(todam, zone, pois, kind, day);
}

ZoneLabel LabelingEngine::LabelZonePerTrip(const Todam& todam, uint32_t zone,
                                           const std::vector<synth::Poi>& pois,
                                           CostKind kind, gtfs::Day day) {
  ZoneLabel label;
  const geo::Point& origin = city_->zones[zone].centroid;
  double sum = 0.0, sum_sq = 0.0;
  uint32_t feasible = 0;

  for (const TripEntry& trip : todam.TripsFor(zone)) {
    router::Journey journey = router_->Route(origin, pois[trip.poi].position,
                                             day, trip.depart);
    ++spq_count_;
    ++expansion_count_;
    ++label.num_trips;
    if (!journey.feasible) {
      ++label.num_infeasible;
      continue;
    }
    if (journey.IsWalkOnly()) ++label.num_walk_only;
    double cost = kind == CostKind::kJourneyTime
                      ? journey.JourneyTimeSeconds()
                      : router::GeneralizedAccessCost(journey, gac_weights_);
    sum += cost;
    sum_sq += cost * cost;
    ++feasible;
  }

  if (feasible > 0) {
    double n = static_cast<double>(feasible);
    label.mac = sum / n;
    double var = sum_sq / n - label.mac * label.mac;
    label.acsd = var > 0 ? std::sqrt(var) : 0.0;
  }
  return label;
}

ZoneLabel LabelingEngine::LabelZoneBatched(const Todam& todam, uint32_t zone,
                                           const std::vector<synth::Poi>& pois,
                                           CostKind kind, gtfs::Day day) {
  ZoneLabel label;
  const std::vector<TripEntry>& trips = todam.TripsFor(zone);
  label.num_trips = static_cast<uint32_t>(trips.size());
  spq_count_ += trips.size();
  if (trips.empty()) return label;

  const geo::Point& origin = city_->zones[zone].centroid;
  const std::vector<router::WalkHop>& origin_access = CachedAccessStops(zone);

  order_.resize(trips.size());
  for (uint32_t i = 0; i < trips.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(), [&](uint32_t a, uint32_t b) {
    return trips[a].depart < trips[b].depart;
  });

  if (poi_stamp_.size() < pois.size()) {
    poi_stamp_.resize(pois.size(), 0);
    poi_slot_.resize(pois.size(), 0);
  }
  trip_cost_.resize(trips.size());
  trip_flags_.resize(trips.size());

  // One RouteMany per departure group, with repeated POIs inside a group
  // collapsed to a single target.
  size_t g = 0;
  while (g < order_.size()) {
    gtfs::TimeOfDay depart = trips[order_[g]].depart;
    size_t g_end = g;
    ++group_stamp_;
    group_points_.clear();
    group_slots_.clear();
    while (g_end < order_.size() && trips[order_[g_end]].depart == depart) {
      uint32_t poi = trips[order_[g_end]].poi;
      if (poi_stamp_[poi] != group_stamp_) {
        poi_stamp_[poi] = group_stamp_;
        poi_slot_[poi] = static_cast<uint32_t>(group_points_.size());
        group_points_.push_back(pois[poi].position);
      }
      group_slots_.push_back(poi_slot_[poi]);
      ++g_end;
    }

    group_journeys_.resize(group_points_.size());
    router_->RouteMany(origin, group_points_.data(), group_points_.size(),
                       day, depart, group_journeys_.data(), &origin_access);
    ++expansion_count_;

    for (size_t k = g; k < g_end; ++k) {
      const router::Journey& journey = group_journeys_[group_slots_[k - g]];
      uint32_t idx = order_[k];
      uint8_t flags = 0;
      double cost = 0.0;
      if (journey.feasible) {
        flags |= 1;
        if (journey.IsWalkOnly()) flags |= 2;
        cost = kind == CostKind::kJourneyTime
                   ? journey.JourneyTimeSeconds()
                   : router::GeneralizedAccessCost(journey, gac_weights_);
      }
      trip_cost_[idx] = cost;
      trip_flags_[idx] = flags;
    }
    g = g_end;
  }

  // Accumulate in ORIGINAL trip order so the floating-point sums match the
  // per-trip path bit for bit.
  double sum = 0.0, sum_sq = 0.0;
  uint32_t feasible = 0;
  for (size_t i = 0; i < trips.size(); ++i) {
    if (!(trip_flags_[i] & 1)) {
      ++label.num_infeasible;
      continue;
    }
    if (trip_flags_[i] & 2) ++label.num_walk_only;
    double cost = trip_cost_[i];
    sum += cost;
    sum_sq += cost * cost;
    ++feasible;
  }

  if (feasible > 0) {
    double n = static_cast<double>(feasible);
    label.mac = sum / n;
    double var = sum_sq / n - label.mac * label.mac;
    label.acsd = var > 0 ? std::sqrt(var) : 0.0;
  }
  return label;
}

std::vector<ZoneLabel> LabelingEngine::LabelZones(
    const Todam& todam, const std::vector<uint32_t>& zones,
    const std::vector<synth::Poi>& pois, CostKind kind, gtfs::Day day) {
  std::vector<ZoneLabel> out;
  out.reserve(zones.size());
  for (uint32_t z : zones) {
    out.push_back(LabelZone(todam, z, pois, kind, day));
  }
  return out;
}

void LabelingEngine::RelabelZones(const Todam& todam,
                                  const std::vector<uint32_t>& zones,
                                  const std::vector<synth::Poi>& pois,
                                  CostKind kind, gtfs::Day day,
                                  std::vector<ZoneLabel>* labels) {
  for (uint32_t z : zones) {
    (*labels)[z] = LabelZone(todam, z, pois, kind, day);
  }
}

}  // namespace staq::core
