#include "core/labeling.h"

#include <cmath>

namespace staq::core {

const char* CostKindName(CostKind kind) {
  switch (kind) {
    case CostKind::kJourneyTime:
      return "JT";
    case CostKind::kGeneralizedCost:
      return "GAC";
  }
  return "unknown";
}

LabelingEngine::LabelingEngine(const synth::City* city,
                               router::Router* router,
                               router::GacWeights gac_weights)
    : city_(city), router_(router), gac_weights_(gac_weights) {}

ZoneLabel LabelingEngine::LabelZone(const Todam& todam, uint32_t zone,
                                    const std::vector<synth::Poi>& pois,
                                    CostKind kind, gtfs::Day day) {
  ZoneLabel label;
  const geo::Point& origin = city_->zones[zone].centroid;
  double sum = 0.0, sum_sq = 0.0;
  uint32_t feasible = 0;

  for (const TripEntry& trip : todam.TripsFor(zone)) {
    router::Journey journey = router_->Route(origin, pois[trip.poi].position,
                                             day, trip.depart);
    ++spq_count_;
    ++label.num_trips;
    if (!journey.feasible) {
      ++label.num_infeasible;
      continue;
    }
    if (journey.IsWalkOnly()) ++label.num_walk_only;
    double cost = kind == CostKind::kJourneyTime
                      ? journey.JourneyTimeSeconds()
                      : router::GeneralizedAccessCost(journey, gac_weights_);
    sum += cost;
    sum_sq += cost * cost;
    ++feasible;
  }

  if (feasible > 0) {
    double n = static_cast<double>(feasible);
    label.mac = sum / n;
    double var = sum_sq / n - label.mac * label.mac;
    label.acsd = var > 0 ? std::sqrt(var) : 0.0;
  }
  return label;
}

std::vector<ZoneLabel> LabelingEngine::LabelZones(
    const Todam& todam, const std::vector<uint32_t>& zones,
    const std::vector<synth::Poi>& pois, CostKind kind, gtfs::Day day) {
  std::vector<ZoneLabel> out;
  out.reserve(zones.size());
  for (uint32_t z : zones) {
    out.push_back(LabelZone(todam, z, pois, kind, day));
  }
  return out;
}

}  // namespace staq::core
