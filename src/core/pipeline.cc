#include "core/pipeline.h"

#include <algorithm>

#include "core/parallel_labeling.h"
#include "util/stopwatch.h"

namespace staq::core {

namespace {

/// Non-negative clamp: MAC and ACSD are costs / dispersions, so negative
/// model outputs are truncated.
void ClampNonNegative(std::vector<double>* values) {
  for (double& v : *values) {
    if (v < 0.0) v = 0.0;
  }
}

/// Fills `out` with ground-truth values at labeled positions and model
/// predictions elsewhere.
std::vector<double> Blend(const std::vector<double>& predictions,
                          const std::vector<uint32_t>& labeled,
                          const std::vector<double>& labels) {
  std::vector<double> out = predictions;
  for (size_t i = 0; i < labeled.size(); ++i) {
    out[labeled[i]] = labels[i];
  }
  return out;
}

}  // namespace

EvaluationMetrics Evaluate(const GroundTruth& truth,
                           const PipelineResult& result) {
  // Metrics are computed over the unlabeled zones: those are the ones the
  // model actually inferred.
  std::vector<uint8_t> is_labeled(truth.mac.size(), 0);
  for (uint32_t z : result.labeled) is_labeled[z] = 1;

  std::vector<double> t_mac, p_mac, t_acsd, p_acsd;
  for (size_t z = 0; z < truth.mac.size(); ++z) {
    if (is_labeled[z]) continue;
    t_mac.push_back(truth.mac[z]);
    p_mac.push_back(result.mac[z]);
    t_acsd.push_back(truth.acsd[z]);
    p_acsd.push_back(result.acsd[z]);
  }

  EvaluationMetrics m;
  if (!t_mac.empty()) {
    m.mac_mae = ml::MeanAbsoluteError(t_mac, p_mac);
    m.mac_corr = ml::PearsonCorrelation(t_mac, p_mac);
    m.acsd_mae = ml::MeanAbsoluteError(t_acsd, p_acsd);
    m.acsd_corr = ml::PearsonCorrelation(t_acsd, p_acsd);

    // Classification uses the full-population thresholds (class boundaries
    // are defined over all zones), then accuracy over the unlabeled set.
    std::vector<int> truth_classes =
        ClassifyAccessibility(truth.mac, truth.acsd);
    std::vector<int> pred_classes =
        ClassifyAccessibility(result.mac, result.acsd);
    std::vector<int> t_cls, p_cls;
    for (size_t z = 0; z < truth.mac.size(); ++z) {
      if (is_labeled[z]) continue;
      t_cls.push_back(truth_classes[z]);
      p_cls.push_back(pred_classes[z]);
    }
    m.class_accuracy = ml::ClassificationAccuracy(t_cls, p_cls);
  }
  m.fie = FairnessIndexError(truth.mac, result.mac);
  return m;
}

SsrPipeline::SsrPipeline(const synth::City* city, gtfs::TimeInterval interval,
                         IsochroneConfig iso_config,
                         router::RouterOptions router_options)
    : city_(city), interval_(interval) {
  util::Stopwatch watch;
  isochrones_ = std::make_unique<IsochroneSet>(*city_, iso_config);
  hop_trees_ = std::make_unique<HopTreeSet>(*city_, *isochrones_, interval_);
  router_ = std::make_unique<router::Router>(&city_->feed, router_options);
  features_ = std::make_unique<FeatureExtractor>(city_, isochrones_.get(),
                                                 hop_trees_.get());
  offline_s_ = watch.ElapsedSeconds();
}

Todam SsrPipeline::BuildGravityTodam(const std::vector<synth::Poi>& pois,
                                     const GravityConfig& gravity,
                                     uint64_t seed) const {
  TodamBuilder builder(city_->zones, pois, interval_, gravity);
  return builder.BuildGravity(seed);
}

util::Result<PipelineResult> RunSsr(
    const synth::City& city, const FeatureExtractor& features_extractor,
    router::Router* router, const std::vector<synth::Poi>& pois,
    const Todam& todam, gtfs::Day day, const PipelineConfig& config,
    const ml::Matrix* precomputed_features, double precomputed_features_s) {
  if (config.cost == CostKind::kGeneralizedCost && !config.gac.Valid()) {
    return util::Status::InvalidArgument(
        "invalid GAC weights (negative λ or non-positive value of time)");
  }

  PipelineResult result;
  util::Stopwatch watch;

  // --- online feature extraction, aggregated to origin level -------------
  watch.Reset();
  ml::Matrix features;
  if (precomputed_features != nullptr) {
    features = *precomputed_features;
    result.timings.features_s = precomputed_features_s;
  } else {
    features = features_extractor.ExtractZoneMatrix(pois, todam.alpha());
    result.timings.features_s = watch.ElapsedSeconds();
  }

  // --- sampling -----------------------------------------------------------
  std::vector<geo::Point> zone_positions;
  zone_positions.reserve(city.zones.size());
  for (const synth::Zone& z : city.zones) {
    zone_positions.push_back(z.centroid);
  }
  auto labeled =
      SelectLabeledZones(config.sampling, city.zones.size(), config.beta,
                         config.seed, &zone_positions, &features);
  if (!labeled.ok()) return labeled.status();
  result.labeled = std::move(labeled).value();

  // --- labeling (SPQs) -----------------------------------------------------
  watch.Reset();
  std::vector<ZoneLabel> labels;
  if (config.labeling_threads > 1) {
    labels = LabelZonesParallel(city, todam, result.labeled, pois,
                                config.cost, day, config.labeling_threads,
                                /*router_options=*/{}, config.gac,
                                &result.spqs);
  } else {
    LabelingEngine labeler(&city, router, config.gac);
    labels = labeler.LabelZones(todam, result.labeled, pois, config.cost, day);
    result.spqs = labeler.spq_count();
  }
  result.timings.labeling_s = watch.ElapsedSeconds();

  std::vector<double> mac_labels(labels.size()), acsd_labels(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    mac_labels[i] = labels[i].mac;
    acsd_labels[i] = labels[i].acsd;
  }

  // --- SSR training + transductive inference, one model per target --------
  watch.Reset();
  ml::Dataset dataset;
  dataset.x = std::move(features);
  dataset.labeled = result.labeled;
  dataset.positions = std::move(zone_positions);

  dataset.y.assign(city.zones.size(), 0.0);
  for (size_t i = 0; i < result.labeled.size(); ++i) {
    dataset.y[result.labeled[i]] = mac_labels[i];
  }
  auto mac_model =
      ml::CreateModel(config.model, config.seed, config.ml_threads);
  STAQ_RETURN_NOT_OK(mac_model->Fit(dataset));
  std::vector<double> mac_pred = mac_model->Predict();

  for (size_t i = 0; i < result.labeled.size(); ++i) {
    dataset.y[result.labeled[i]] = acsd_labels[i];
  }
  auto acsd_model =
      ml::CreateModel(config.model, config.seed + 1, config.ml_threads);
  STAQ_RETURN_NOT_OK(acsd_model->Fit(dataset));
  std::vector<double> acsd_pred = acsd_model->Predict();
  result.timings.training_s = watch.ElapsedSeconds();

  ClampNonNegative(&mac_pred);
  ClampNonNegative(&acsd_pred);
  result.mac = Blend(mac_pred, result.labeled, mac_labels);
  result.acsd = Blend(acsd_pred, result.labeled, acsd_labels);
  return result;
}

util::Result<PipelineResult> SsrPipeline::Run(
    const std::vector<synth::Poi>& pois, const Todam& todam,
    const PipelineConfig& config, const ml::Matrix* precomputed_features,
    double precomputed_features_s) {
  return RunSsr(*city_, *features_, router_.get(), pois, todam,
                interval_.day, config, precomputed_features,
                precomputed_features_s);
}

GroundTruth SsrPipeline::ComputeGroundTruth(
    const std::vector<synth::Poi>& pois, const Todam& todam, CostKind cost,
    router::GacWeights gac, int num_threads) {
  GroundTruth truth;
  util::Stopwatch watch;
  std::vector<uint32_t> all(city_->zones.size());
  for (uint32_t z = 0; z < all.size(); ++z) all[z] = z;
  std::vector<ZoneLabel> labels;
  if (num_threads > 1) {
    labels = LabelZonesParallel(*city_, todam, all, pois, cost, interval_.day,
                                num_threads, /*router_options=*/{}, gac,
                                &truth.spqs);
  } else {
    LabelingEngine labeler(city_, router_.get(), gac);
    labels = labeler.LabelZones(todam, all, pois, cost, interval_.day);
    truth.spqs = labeler.spq_count();
  }
  truth.labeling_s = watch.ElapsedSeconds();

  truth.mac.resize(labels.size());
  truth.acsd.resize(labels.size());
  uint64_t walk_only = 0, trips = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    truth.mac[i] = labels[i].mac;
    truth.acsd[i] = labels[i].acsd;
    walk_only += labels[i].num_walk_only;
    trips += labels[i].num_trips;
  }
  truth.walk_only_fraction =
      trips > 0 ? static_cast<double>(walk_only) / static_cast<double>(trips)
                : 0.0;
  return truth;
}

CapturedCosts SsrPipeline::CaptureGroundTruthColumns(
    const std::vector<synth::Poi>& pois, const Todam& todam) {
  CapturedCosts captured;
  util::Stopwatch watch;
  LabelingEngine labeler(city_, router_.get());
  for (uint32_t z = 0; z < city_->zones.size(); ++z) {
    labeler.CaptureZoneCosts(todam, z, pois, interval_.day,
                             &captured.columns);
  }
  captured.spqs = labeler.spq_count();
  captured.labeling_s = watch.ElapsedSeconds();
  return captured;
}

}  // namespace staq::core
