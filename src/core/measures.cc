#include "core/measures.h"

#include <cassert>
#include <cmath>

#include "ml/kernels.h"

namespace staq::core {

const char* AccessClassName(AccessClass c) {
  switch (c) {
    case AccessClass::kBest:
      return "best";
    case AccessClass::kWorst:
      return "worst";
    case AccessClass::kMostlyGood:
      return "mostly_good";
    case AccessClass::kMostlyBad:
      return "mostly_bad";
  }
  return "unknown";
}

std::vector<int> ClassifyAccessibility(const std::vector<double>& mac,
                                       const std::vector<double>& acsd) {
  assert(mac.size() == acsd.size() && !mac.empty());
  double mac_mean = 0.0, acsd_mean = 0.0;
  for (size_t i = 0; i < mac.size(); ++i) {
    mac_mean += mac[i];
    acsd_mean += acsd[i];
  }
  mac_mean /= static_cast<double>(mac.size());
  acsd_mean /= static_cast<double>(acsd.size());

  std::vector<int> classes(mac.size());
  for (size_t i = 0; i < mac.size(); ++i) {
    bool high_mac = mac[i] > mac_mean;
    bool high_acsd = acsd[i] > acsd_mean;
    AccessClass c;
    if (!high_mac && !high_acsd) {
      c = AccessClass::kBest;
    } else if (high_mac && !high_acsd) {
      c = AccessClass::kWorst;
    } else if (!high_mac && high_acsd) {
      c = AccessClass::kMostlyGood;
    } else {
      c = AccessClass::kMostlyBad;
    }
    classes[i] = static_cast<int>(c);
  }
  return classes;
}

double JainIndex(const std::vector<double>& values) {
  assert(!values.empty());
  double sum = 0.0, sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) return 1.0;
  double n = static_cast<double>(values.size());
  return (sum * sum) / (n * sum_sq);
}

double WeightedJainIndex(const std::vector<double>& values,
                         const std::vector<double>& weights) {
  assert(values.size() == weights.size() && !values.empty());
  // Weighted form: J = (Σ w x)^2 / (Σw · Σ w x^2); reduces to JainIndex
  // when all weights are equal.
  double wsum = 0.0, wx = 0.0, wx2 = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    wsum += weights[i];
    wx += weights[i] * values[i];
    wx2 += weights[i] * values[i] * values[i];
  }
  if (wx2 <= 0.0 || wsum <= 0.0) return 1.0;
  return (wx * wx) / (wsum * wx2);
}

double FairnessIndexError(const std::vector<double>& truth_mac,
                          const std::vector<double>& predicted_mac) {
  return std::abs(JainIndex(truth_mac) - JainIndex(predicted_mac));
}

std::vector<int> ClassifyAccessibilityColumnar(
    const std::vector<double>& mac, const std::vector<double>& acsd) {
  assert(mac.size() == acsd.size() && !mac.empty());
  double mac_mean = ml::kernels::ReduceSum(mac.size(), mac.data()) /
                    static_cast<double>(mac.size());
  double acsd_mean = ml::kernels::ReduceSum(acsd.size(), acsd.data()) /
                     static_cast<double>(acsd.size());

  std::vector<int> classes(mac.size());
  for (size_t i = 0; i < mac.size(); ++i) {
    bool high_mac = mac[i] > mac_mean;
    bool high_acsd = acsd[i] > acsd_mean;
    AccessClass c;
    if (!high_mac && !high_acsd) {
      c = AccessClass::kBest;
    } else if (high_mac && !high_acsd) {
      c = AccessClass::kWorst;
    } else if (!high_mac && high_acsd) {
      c = AccessClass::kMostlyGood;
    } else {
      c = AccessClass::kMostlyBad;
    }
    classes[i] = static_cast<int>(c);
  }
  return classes;
}

double JainIndexColumnar(const std::vector<double>& values) {
  assert(!values.empty());
  double sum = ml::kernels::ReduceSum(values.size(), values.data());
  double sum_sq =
      ml::kernels::Dot(values.size(), values.data(), values.data());
  if (sum_sq <= 0.0) return 1.0;
  double n = static_cast<double>(values.size());
  return (sum * sum) / (n * sum_sq);
}

double WeightedJainIndexColumnar(const std::vector<double>& values,
                                 const std::vector<double>& weights) {
  assert(values.size() == weights.size() && !values.empty());
  size_t n = values.size();
  double wsum = ml::kernels::ReduceSum(n, weights.data());
  double wx = ml::kernels::Dot(n, weights.data(), values.data());
  std::vector<double> wv(n);
  for (size_t i = 0; i < n; ++i) wv[i] = weights[i] * values[i];
  double wx2 = ml::kernels::Dot(n, wv.data(), values.data());
  if (wx2 <= 0.0 || wsum <= 0.0) return 1.0;
  return (wx * wx) / (wsum * wx2);
}

}  // namespace staq::core
