#include "core/active_learning.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/sampling.h"
#include "ml/scaler.h"
#include "util/rng.h"

namespace staq::core {

namespace {

size_t BudgetCount(size_t num_zones, double beta) {
  size_t want =
      static_cast<size_t>(std::ceil(beta * static_cast<double>(num_zones)));
  return std::clamp<size_t>(want, 2, num_zones);
}

/// Greedy k-centre: start from a random zone, repeatedly pick the zone
/// farthest from the chosen set.
std::vector<uint32_t> FarthestPoint(const std::vector<geo::Point>& positions,
                                    size_t count, uint64_t seed) {
  util::Rng rng(seed);
  size_t n = positions.size();
  std::vector<uint32_t> chosen;
  chosen.reserve(count);
  std::vector<double> dist_to_set(n, std::numeric_limits<double>::infinity());

  uint32_t current = static_cast<uint32_t>(rng.UniformU64(n));
  chosen.push_back(current);
  while (chosen.size() < count) {
    uint32_t farthest = 0;
    double best = -1.0;
    for (uint32_t z = 0; z < n; ++z) {
      double d = geo::Distance(positions[z], positions[current]);
      if (d < dist_to_set[z]) dist_to_set[z] = d;
      if (dist_to_set[z] > best) {
        best = dist_to_set[z];
        farthest = z;
      }
    }
    current = farthest;
    chosen.push_back(current);
  }
  return chosen;
}

/// k-means++ seeding (D² sampling) over standardised feature rows.
std::vector<uint32_t> DSquaredSampling(const ml::Matrix& features,
                                       size_t count, uint64_t seed) {
  util::Rng rng(seed);
  size_t n = features.rows();
  size_t d = features.cols();

  ml::StandardScaler scaler;
  ml::Matrix scaled = scaler.FitTransform(features);

  auto dist_sq = [&](uint32_t a, uint32_t b) {
    const double* ra = scaled.row(a);
    const double* rb = scaled.row(b);
    double acc = 0;
    for (size_t c = 0; c < d; ++c) {
      double delta = ra[c] - rb[c];
      acc += delta * delta;
    }
    return acc;
  };

  std::vector<uint32_t> chosen;
  chosen.reserve(count);
  std::vector<double> best_sq(n, std::numeric_limits<double>::infinity());
  uint32_t current = static_cast<uint32_t>(rng.UniformU64(n));
  chosen.push_back(current);

  while (chosen.size() < count) {
    double total = 0.0;
    for (uint32_t z = 0; z < n; ++z) {
      best_sq[z] = std::min(best_sq[z], dist_sq(z, current));
      total += best_sq[z];
    }
    if (total <= 0.0) {
      // All remaining rows identical to chosen ones: fall back to uniform
      // over the unchosen.
      std::vector<uint32_t> remaining;
      std::vector<uint8_t> mask(n, 0);
      for (uint32_t z : chosen) mask[z] = 1;
      for (uint32_t z = 0; z < n; ++z) {
        if (!mask[z]) remaining.push_back(z);
      }
      while (chosen.size() < count && !remaining.empty()) {
        size_t pick = static_cast<size_t>(rng.UniformU64(remaining.size()));
        chosen.push_back(remaining[pick]);
        remaining.erase(remaining.begin() + static_cast<long>(pick));
      }
      break;
    }
    double draw = rng.UniformDouble() * total;
    double acc = 0.0;
    current = static_cast<uint32_t>(n - 1);
    for (uint32_t z = 0; z < n; ++z) {
      acc += best_sq[z];
      if (acc >= draw) {
        current = z;
        break;
      }
    }
    chosen.push_back(current);
  }
  return chosen;
}

}  // namespace

const char* SamplingStrategyName(SamplingStrategy strategy) {
  switch (strategy) {
    case SamplingStrategy::kRandom:
      return "random";
    case SamplingStrategy::kSpatialSpread:
      return "spatial_spread";
    case SamplingStrategy::kFeatureDiverse:
      return "feature_diverse";
  }
  return "unknown";
}

util::Result<std::vector<uint32_t>> SelectLabeledZones(
    SamplingStrategy strategy, size_t num_zones, double beta, uint64_t seed,
    const std::vector<geo::Point>* positions, const ml::Matrix* features) {
  if (num_zones < 2) {
    return util::Status::InvalidArgument("need at least 2 zones");
  }
  if (beta <= 0.0 || beta > 1.0) {
    return util::Status::InvalidArgument("beta must be in (0, 1]");
  }
  size_t count = BudgetCount(num_zones, beta);

  std::vector<uint32_t> chosen;
  switch (strategy) {
    case SamplingStrategy::kRandom:
      return SampleLabeledZones(num_zones, beta, seed);
    case SamplingStrategy::kSpatialSpread:
      if (positions == nullptr || positions->size() != num_zones) {
        return util::Status::InvalidArgument(
            "spatial_spread requires positions for every zone");
      }
      chosen = FarthestPoint(*positions, count, seed);
      break;
    case SamplingStrategy::kFeatureDiverse:
      if (features == nullptr || features->rows() != num_zones) {
        return util::Status::InvalidArgument(
            "feature_diverse requires a feature row per zone");
      }
      chosen = DSquaredSampling(*features, count, seed);
      break;
  }
  std::sort(chosen.begin(), chosen.end());
  chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());

  // Degenerate geometry/features can produce duplicate picks; top the
  // budget back up uniformly so callers always get the requested size.
  if (chosen.size() < count) {
    util::Rng rng(seed ^ 0xa5a5a5a5ULL);
    std::vector<uint8_t> mask(num_zones, 0);
    for (uint32_t z : chosen) mask[z] = 1;
    std::vector<uint32_t> remaining;
    for (uint32_t z = 0; z < num_zones; ++z) {
      if (!mask[z]) remaining.push_back(z);
    }
    rng.Shuffle(&remaining);
    while (chosen.size() < count && !remaining.empty()) {
      chosen.push_back(remaining.back());
      remaining.pop_back();
    }
    std::sort(chosen.begin(), chosen.end());
  }
  return chosen;
}

}  // namespace staq::core
