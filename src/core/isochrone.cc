#include "core/isochrone.h"

#include "graph/dijkstra.h"

namespace staq::core {

geo::Polygon WalkingIsochrone(const graph::Graph& road, graph::NodeId source,
                              const IsochroneConfig& config) {
  double reach = config.ReachMeters();
  auto settled = graph::BoundedShortestPaths(road, source, reach);
  std::vector<geo::Point> points;
  points.reserve(settled.size());
  for (const graph::ReachedNode& r : settled) {
    points.push_back(road.position(r.node));
  }
  geo::Polygon hull = geo::ConvexHull(std::move(points));
  if (hull.size() >= 3) return hull;

  // Degenerate (isolated node or collinear street): a small box around the
  // source sized by the remaining budget keeps containment tests sane.
  geo::Point c = road.position(source);
  double r = std::max(50.0, reach * 0.1);
  return geo::Polygon({{c.x - r, c.y - r},
                       {c.x + r, c.y - r},
                       {c.x + r, c.y + r},
                       {c.x - r, c.y + r}});
}

IsochroneSet::IsochroneSet(const synth::City& city, IsochroneConfig config)
    : config_(config) {
  isochrones_.reserve(city.zones.size());
  for (uint32_t z = 0; z < city.zones.size(); ++z) {
    isochrones_.push_back(
        WalkingIsochrone(city.road, city.zone_node[z], config_));
  }
}

}  // namespace staq::core
