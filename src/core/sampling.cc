#include "core/sampling.h"

#include <algorithm>
#include <cmath>

namespace staq::core {

util::Result<std::vector<uint32_t>> SampleLabeledZones(size_t num_zones,
                                                       double beta,
                                                       uint64_t seed) {
  if (num_zones < 2) {
    return util::Status::InvalidArgument("need at least 2 zones");
  }
  if (beta <= 0.0 || beta > 1.0) {
    return util::Status::InvalidArgument("beta must be in (0, 1]");
  }
  size_t want = static_cast<size_t>(std::ceil(beta * static_cast<double>(num_zones)));
  want = std::clamp<size_t>(want, 2, num_zones);

  util::Rng rng(seed);
  auto sample = rng.SampleWithoutReplacement(num_zones, want);
  std::vector<uint32_t> out(sample.begin(), sample.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace staq::core
