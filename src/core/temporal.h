// Temporal accessibility analysis (paper §I questions 1 and 3, §II
// "temporal accessibility studies").
//
// Runs the same access query across several time intervals and derives the
// temporal measures the motivating questions ask for: how access varies
// over the day/week, which zones' access collapses at particular times
// ("does the varying transit schedule restrict or prevent access at
// particular times of the day?"), and how fairness shifts between
// intervals.
#pragma once

#include <vector>

#include "core/access_query.h"

namespace staq::core {

/// One interval's answer.
struct IntervalResult {
  gtfs::TimeInterval interval;
  AccessQueryResult result;
};

/// Runs `category` access queries over each interval with the same
/// options. The engine's offline phase is re-run per interval (hop trees
/// are interval-specific); the engine is left on the last interval.
util::Result<std::vector<IntervalResult>> CompareIntervals(
    AccessQueryEngine* engine, synth::PoiCategory category,
    const AccessQueryOptions& options,
    const std::vector<gtfs::TimeInterval>& intervals);

/// Per-zone temporal spread: max - min MAC across the intervals. Requires
/// at least one interval; all results must cover the same zones.
std::vector<double> TemporalSpread(const std::vector<IntervalResult>& results);

/// Zones whose MAC in some interval exceeds `factor` x their MAC in the
/// reference interval (results[0]) — the "temporal access desert" set.
/// Zones with zero reference MAC are skipped.
std::vector<uint32_t> TemporalAccessDeserts(
    const std::vector<IntervalResult>& results, double factor);

}  // namespace staq::core
