#include "core/columnar.h"

#include <algorithm>
#include <cmath>

#include "ml/kernels.h"

namespace staq::core {

size_t TripCostColumns::AppendZone(size_t trips) {
  size_t base = flags.size();
  zone_offsets.push_back(base + trips);
  flags.resize(base + trips, 0);
  jt.resize(base + trips, 0.0);
  gac_parts.resize((base + trips) * kNumGacParts, 0.0);
  fare.resize(base + trips, 0.0);
  return base;
}

void TripCostColumns::Record(size_t index, const router::Journey& journey) {
  if (!journey.feasible) return;  // slot stays zeroed, flags stay 0
  uint8_t f = 1;
  if (journey.IsWalkOnly()) f |= 2;
  flags[index] = f;
  jt[index] = journey.JourneyTimeSeconds();
  double* parts = gac_parts.data() + index * kNumGacParts;
  // Component order matches the scalar GAC expression (router/cost.cc):
  // TAN (access + transfer walk), WT, IVT, ET, transfers.
  parts[0] = journey.access_walk_s + journey.transfer_walk_s;
  parts[1] = journey.wait_s;
  parts[2] = journey.in_vehicle_s;
  parts[3] = journey.egress_walk_s;
  parts[4] = journey.num_boardings > 1 ? journey.num_boardings - 1 : 0;
  fare[index] = journey.total_fare;
}

void TripCostColumns::Clear() {
  zone_offsets.assign(1, 0);
  flags.clear();
  jt.clear();
  gac_parts.clear();
  fare.clear();
}

void MemberCostColumn(const TripCostColumns& columns, const CostMember& member,
                      std::vector<double>* out) {
  size_t n = columns.num_trips();
  out->assign(n, 0.0);
  if (n == 0) return;
  if (member.cost == CostKind::kJourneyTime) {
    std::copy(columns.jt.begin(), columns.jt.end(), out->begin());
    return;
  }
  const router::GacWeights& w = member.gac;
  const double weights[kNumGacParts] = {w.lambda_tan, w.lambda_wt,
                                        w.lambda_ivt, w.lambda_et,
                                        w.transfer_penalty_s};
  ml::kernels::Gemm(n, kNumGacParts, 1, columns.gac_parts.data(), kNumGacParts,
                    weights, 1, out->data(), 1);
  // FARE/VOT epilogue: the scalar expression divides by the value of time,
  // and x / v != x * (1 / v) in general, so the division stays.
  double* o = out->data();
  const double* fare = columns.fare.data();
  for (size_t i = 0; i < n; ++i) o[i] += fare[i] / w.value_of_time;
}

std::vector<ZoneLabel> AggregateZoneLabels(const TripCostColumns& columns,
                                           const std::vector<double>& costs) {
  std::vector<ZoneLabel> labels(columns.num_zones());
  std::vector<double> feasible_costs;  // reused across zones
  for (size_t z = 0; z < labels.size(); ++z) {
    ZoneLabel& label = labels[z];
    size_t begin = columns.zone_offsets[z];
    size_t end = columns.zone_offsets[z + 1];
    label.num_trips = static_cast<uint32_t>(end - begin);
    feasible_costs.clear();
    for (size_t i = begin; i < end; ++i) {
      if (!(columns.flags[i] & 1)) {
        ++label.num_infeasible;
        continue;
      }
      if (columns.flags[i] & 2) ++label.num_walk_only;
      feasible_costs.push_back(costs[i]);
    }
    if (feasible_costs.empty()) continue;
    double n = static_cast<double>(feasible_costs.size());
    double sum =
        ml::kernels::ReduceSum(feasible_costs.size(), feasible_costs.data());
    double sum_sq = ml::kernels::Dot(feasible_costs.size(),
                                     feasible_costs.data(),
                                     feasible_costs.data());
    label.mac = sum / n;
    double var = sum_sq / n - label.mac * label.mac;
    label.acsd = var > 0 ? std::sqrt(var) : 0.0;
  }
  return labels;
}

}  // namespace staq::core
