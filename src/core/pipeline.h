// End-to-end SSR solution (paper Fig. 1): offline pre-computation, online
// feature extraction, β-budget sampling, labeling via SPQs, SSR training
// and transductive inference — with per-stage wall-clock accounting so the
// Table-II cost comparison can be reproduced.
#pragma once

#include <memory>
#include <vector>

#include "core/active_learning.h"
#include "core/columnar.h"
#include "core/features.h"
#include "core/hoptree.h"
#include "core/isochrone.h"
#include "core/labeling.h"
#include "core/measures.h"
#include "core/sampling.h"
#include "core/todam.h"
#include "ml/metrics.h"
#include "ml/model_factory.h"
#include "router/router.h"
#include "synth/city_builder.h"

namespace staq::core {

/// Per-run configuration (one cell of the paper's sweeps).
struct PipelineConfig {
  double beta = 0.05;
  ml::ModelKind model = ml::ModelKind::kMlp;
  CostKind cost = CostKind::kJourneyTime;
  router::GacWeights gac;
  uint64_t seed = 1;
  /// How the labeled set L is chosen (paper default: random; the other
  /// strategies implement the §VI active-learning future-work item).
  SamplingStrategy sampling = SamplingStrategy::kRandom;
  /// Worker threads for the labeling stage (1 = serial, as the paper).
  int labeling_threads = 1;
  /// Worker threads for SSR model training (COREG pool screening, MLP
  /// gradient chunks). Training results are bit-identical for every value.
  int ml_threads = 1;
};

/// Wall-clock attribution across the solution's stages (seconds).
struct StageTimings {
  double features_s = 0.0;
  double labeling_s = 0.0;
  double training_s = 0.0;

  /// The end-to-end online cost Table II reports for the SSR solution.
  double TotalSeconds() const { return features_s + labeling_s + training_s; }
};

/// Output of one SSR run: predicted measures for every zone. Labeled zones
/// carry their exactly computed values; unlabeled zones carry model
/// predictions (clamped to be non-negative).
struct PipelineResult {
  std::vector<double> mac;
  std::vector<double> acsd;
  std::vector<uint32_t> labeled;
  StageTimings timings;
  uint64_t spqs = 0;
};

/// The naive baseline: every zone labeled exactly.
struct GroundTruth {
  std::vector<double> mac;
  std::vector<double> acsd;
  double labeling_s = 0.0;
  uint64_t spqs = 0;
  double walk_only_fraction = 0.0;
};

/// One shared exact labeling pass captured as per-trip cost components
/// (core/columnar.h): the basis a batch of cost definitions derives its
/// ground-truth labels from without routing again.
struct CapturedCosts {
  TripCostColumns columns;
  uint64_t spqs = 0;       // == the trip count, as ComputeGroundTruth reports
  double labeling_s = 0.0;
};

/// The Fig. 3 / Fig. 4 quality metrics of one run against ground truth,
/// computed over the unlabeled zones (the inference targets).
struct EvaluationMetrics {
  double mac_mae = 0.0;
  double mac_corr = 0.0;
  double acsd_mae = 0.0;
  double acsd_corr = 0.0;
  double class_accuracy = 0.0;
  double fie = 0.0;  // fairness index error, over all zones
};

EvaluationMetrics Evaluate(const GroundTruth& truth,
                           const PipelineResult& result);

/// One SSR run against explicit collaborators: feature extraction, β-budget
/// sampling, labeling through `router`, SSR training, and transductive
/// inference. This is the body of SsrPipeline::Run, exposed so callers that
/// share one set of offline structures across many threads (the serve
/// subsystem) can pass a per-thread router — Router scratch is not
/// shareable. `pois` may differ from `city.pois` (scenario edits).
util::Result<PipelineResult> RunSsr(
    const synth::City& city, const FeatureExtractor& features,
    router::Router* router, const std::vector<synth::Poi>& pois,
    const Todam& todam, gtfs::Day day, const PipelineConfig& config,
    const ml::Matrix* precomputed_features = nullptr,
    double precomputed_features_s = 0.0);

/// Orchestrates the full solution over one city and time interval. The
/// constructor performs the offline phase (isochrones + hop trees + router
/// tables) and records its cost separately.
class SsrPipeline {
 public:
  SsrPipeline(const synth::City* city, gtfs::TimeInterval interval,
              IsochroneConfig iso_config = {},
              router::RouterOptions router_options = {});

  const synth::City& city() const { return *city_; }
  const gtfs::TimeInterval& interval() const { return interval_; }
  double offline_seconds() const { return offline_s_; }
  const IsochroneSet& isochrones() const { return *isochrones_; }
  const HopTreeSet& hop_trees() const { return *hop_trees_; }
  const FeatureExtractor& feature_extractor() const { return *features_; }

  /// Builds the gravity TODAM M_g over a POI set.
  Todam BuildGravityTodam(const std::vector<synth::Poi>& pois,
                          const GravityConfig& gravity, uint64_t seed) const;

  /// One SSR run. `todam` must have been built over `pois`.
  ///
  /// When sweeping β / model / cost over a fixed POI set (Figs. 3 and 4),
  /// the zone feature matrix is identical across runs; pass it via
  /// `precomputed_features` (with the wall-clock it cost via
  /// `precomputed_features_s`) to avoid re-extracting, and the timing is
  /// carried into the result unchanged.
  util::Result<PipelineResult> Run(
      const std::vector<synth::Poi>& pois, const Todam& todam,
      const PipelineConfig& config,
      const ml::Matrix* precomputed_features = nullptr,
      double precomputed_features_s = 0.0);

  /// The naive baseline: labels every zone with SPQs (paper Table II
  /// "Label Cost"). `num_threads` > 1 parallelises the SPQ sweep.
  GroundTruth ComputeGroundTruth(const std::vector<synth::Poi>& pois,
                                 const Todam& todam, CostKind cost,
                                 router::GacWeights gac = {},
                                 int num_threads = 1);

  /// Runs the naive baseline's SPQ sweep ONCE and captures every trip's
  /// cost basis. A batch of cost definitions then derives each member's
  /// exact labels from the columns (MemberCostColumn + AggregateZoneLabels)
  /// bit-identically to a per-member ComputeGroundTruth, paying the
  /// routing — the dominant cost — a single time.
  CapturedCosts CaptureGroundTruthColumns(const std::vector<synth::Poi>& pois,
                                          const Todam& todam);

 private:
  const synth::City* city_;
  gtfs::TimeInterval interval_;
  double offline_s_ = 0.0;
  std::unique_ptr<IsochroneSet> isochrones_;
  std::unique_ptr<HopTreeSet> hop_trees_;
  std::unique_ptr<router::Router> router_;
  std::unique_ptr<FeatureExtractor> features_;
};

}  // namespace staq::core
