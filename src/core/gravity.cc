#include "core/gravity.h"

#include <cmath>

namespace staq::core {

double DistanceDecay(double distance_m, double decay_scale_m) {
  return std::exp(-distance_m / decay_scale_m);
}

void DistanceDecayColumn(const std::vector<synth::Zone>& zones,
                         const geo::Point& poi_position, double decay_scale_m,
                         double* out) {
  for (size_t i = 0; i < zones.size(); ++i) {
    out[i] = DistanceDecay(geo::Distance(zones[i].centroid, poi_position),
                           decay_scale_m);
  }
}

std::vector<double> AttractivenessRow(const geo::Point& zone_centroid,
                                      const std::vector<synth::Poi>& pois,
                                      double decay_scale_m) {
  std::vector<double> row(pois.size(), 0.0);
  double total = 0.0;
  for (size_t j = 0; j < pois.size(); ++j) {
    double d = geo::Distance(zone_centroid, pois[j].position);
    row[j] = DistanceDecay(d, decay_scale_m);
    total += row[j];
  }
  if (total > 0.0) {
    for (double& v : row) v /= total;
  }
  return row;
}

GravityConfig CalibratedGravityConfig(const synth::CitySpec& spec) {
  GravityConfig config;
  config.decay_scale_m = 3000;
  config.keep_scale = 25.0 * spec.scale;
  config.sample_rate_per_hour = 30;
  return config;
}

std::vector<std::vector<double>> AttractivenessMatrix(
    const std::vector<synth::Zone>& zones, const std::vector<synth::Poi>& pois,
    double decay_scale_m) {
  std::vector<std::vector<double>> alpha;
  alpha.reserve(zones.size());
  for (const synth::Zone& z : zones) {
    alpha.push_back(AttractivenessRow(z.centroid, pois, decay_scale_m));
  }
  return alpha;
}

}  // namespace staq::core
