// Transit-hop trees (paper §IV-A, Fig. 2A/2B).
//
// A transit hop from a zone is a short foot journey to a stop followed by
// a transit ride (outbound), or a ride followed by a foot journey to the
// zone (inbound). The hop tree of a zone z for an interval v has z at the
// root and a leaf per zone reachable in one hop, carrying connectivity
// data: how many scheduled services reach that leaf in v and the mean
// in-vehicle journey time.
//
// Trees are pre-computed offline for every zone x direction and retrieved
// in O(1); the online feature extractor (core/features.h) maps a
// (z_i, z_j) query over OB(z_i) and IB(z_j).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/isochrone.h"
#include "geo/kdtree.h"
#include "gtfs/time.h"
#include "synth/city_builder.h"

namespace staq::core {

/// One leaf of a hop tree: a zone reachable in a single transit hop.
struct HopLeaf {
  uint32_t zone = 0;
  /// Number of scheduled departures reaching the leaf in the interval
  /// (the per-leaf counter of §IV-A).
  uint32_t service_count = 0;
  /// Number of distinct routes contributing to the leaf.
  uint32_t route_count = 0;
  /// Mean in-vehicle journey time over the recorded journeys (seconds).
  double mean_journey_s = 0.0;
  /// Leaf zone centroid (copied here so k-NN structures need no lookups).
  geo::Point position;
};

/// Direction of the foot/ride composition.
enum class HopDirection { kOutbound, kInbound };

/// One zone's hop tree in one direction. Leaves are sorted by zone id.
class HopTree {
 public:
  HopTree() = default;
  HopTree(uint32_t root, std::vector<HopLeaf> leaves);

  uint32_t root() const { return root_; }
  const std::vector<HopLeaf>& leaves() const { return leaves_; }
  size_t size() const { return leaves_.size(); }

  /// Leaf for `zone`, or nullptr when it is not reachable in one hop.
  const HopLeaf* Find(uint32_t zone) const;

  /// k-d tree over leaf centroids, built lazily on first use (used by the
  /// interchange finder); nullptr when the tree has no leaves. Thread-safe:
  /// concurrent callers on a shared tree build the index exactly once.
  const geo::KdTree* LeafIndex() const;

 private:
  // The once_flag lives behind a pointer so HopTree stays movable (trees are
  // held in per-direction vectors); a moved-from tree has empty leaves_, so
  // LeafIndex() never dereferences its nulled slot.
  struct LeafIndexSlot {
    std::once_flag once;
    std::unique_ptr<geo::KdTree> tree;
  };

  uint32_t root_ = 0;
  std::vector<HopLeaf> leaves_;
  mutable std::unique_ptr<LeafIndexSlot> leaf_index_ =
      std::make_unique<LeafIndexSlot>();
};

/// Build options.
struct HopTreeOptions {
  /// Cap on journey time recorded along a single trip sweep; keeps leaves
  /// local to the hop rather than the entire line end-to-end.
  double max_ride_s = 3600;
};

/// All hop trees of a city for one time interval, both directions.
class HopTreeSet {
 public:
  /// Pre-computes OB and IB trees for every zone (paper: offline phase).
  HopTreeSet(const synth::City& city, const IsochroneSet& isochrones,
             const gtfs::TimeInterval& interval, HopTreeOptions options = {});

  /// Reassembles a set from persisted trees (snapshot restore). Leaf data
  /// is stored verbatim; the lazy per-tree k-d leaf indexes rebuild on
  /// demand exactly as after an offline build.
  HopTreeSet(const gtfs::TimeInterval& interval, std::vector<HopTree> outbound,
             std::vector<HopTree> inbound, std::vector<uint32_t> stop_zone)
      : interval_(interval),
        outbound_(std::move(outbound)),
        inbound_(std::move(inbound)),
        stop_zone_(std::move(stop_zone)) {}

  const gtfs::TimeInterval& interval() const { return interval_; }
  size_t num_zones() const { return outbound_.size(); }

  const HopTree& Outbound(uint32_t zone) const { return outbound_[zone]; }
  const HopTree& Inbound(uint32_t zone) const { return inbound_[zone]; }

  /// Zone ids reachable from `zone` within `hops` chained outbound hops
  /// (excluding the zone itself), ascending. hops >= 1.
  std::vector<uint32_t> ReachableZones(uint32_t zone, int hops) const;

  /// The zone each stop belongs to (nearest centroid).
  const std::vector<uint32_t>& stop_zone() const { return stop_zone_; }

 private:
  gtfs::TimeInterval interval_;
  std::vector<HopTree> outbound_;
  std::vector<HopTree> inbound_;
  std::vector<uint32_t> stop_zone_;
};

}  // namespace staq::core
