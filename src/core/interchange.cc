#include "core/interchange.h"

#include <algorithm>

namespace staq::core {

std::vector<Interchange> FindInterchanges(const HopTree& ob, const HopTree& ib,
                                          const IsochroneSet& isochrones) {
  std::vector<Interchange> out;
  const geo::KdTree* ib_index = ib.LeafIndex();
  if (ib_index == nullptr || ob.leaves().empty()) return out;

  for (const HopLeaf& ob_leaf : ob.leaves()) {
    geo::Neighbor nearest = ib_index->Nearest(ob_leaf.position);
    const HopLeaf& ib_leaf = ib.leaves()[nearest.id];

    bool connects = ob_leaf.zone == ib_leaf.zone ||
                    isochrones.Overlap(ob_leaf.zone, ib_leaf.zone);
    if (!connects) continue;

    Interchange ic;
    ic.ob_zone = ob_leaf.zone;
    ic.ib_zone = ib_leaf.zone;
    ic.gap_m = nearest.distance;
    ic.strength = std::min(ob_leaf.service_count, ib_leaf.service_count);
    ic.position = geo::Point{(ob_leaf.position.x + ib_leaf.position.x) / 2,
                             (ob_leaf.position.y + ib_leaf.position.y) / 2};
    out.push_back(ic);
  }
  return out;
}

}  // namespace staq::core
