// GTFS CSV interchange.
//
// Serialises a Feed to the standard GTFS text files and loads one back, so
// the library can run on real published feeds (the paper uses the TfWM
// feed) as well as synthetic ones. The subset implemented is the subset
// the pipeline consumes:
//
//   stops.txt        stop_id, stop_name, stop_lat, stop_lon
//   routes.txt       route_id, route_short_name, route_type
//   calendar.txt     service_id, monday..sunday, start_date, end_date
//   trips.txt        route_id, service_id, trip_id
//   stop_times.txt   trip_id, arrival_time, departure_time, stop_id,
//                    stop_sequence
//   fare_attributes.txt / fare_rules.txt   flat per-route fares
//
// Feeds store projected coordinates; a geo::LocalProjection converts to
// and from the WGS-84 lat/lon GTFS requires. Extra columns in input files
// are ignored; missing required columns fail with InvalidArgument.
#pragma once

#include <string>

#include "geo/latlon.h"
#include "gtfs/feed.h"

namespace staq::gtfs {

/// Writes the feed as GTFS CSV files into `directory` (created if absent).
util::Status WriteFeedCsv(const Feed& feed,
                          const geo::LocalProjection& projection,
                          const std::string& directory);

/// Loads a feed from GTFS CSV files in `directory`. String ids are
/// re-mapped to dense indices; the result passes Feed::Validate().
/// fare files are optional (fares default to 0).
util::Result<Feed> ReadFeedCsv(const std::string& directory,
                               const geo::LocalProjection& projection);

}  // namespace staq::gtfs
