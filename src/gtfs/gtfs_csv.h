// GTFS CSV interchange.
//
// Serialises a Feed to the standard GTFS text files and loads one back, so
// the library can run on real published feeds (the paper uses the TfWM
// feed) as well as synthetic ones. The subset implemented is the subset
// the pipeline consumes:
//
//   stops.txt           stop_id, stop_name, stop_lat, stop_lon
//   routes.txt          route_id, route_short_name, route_type
//   calendar.txt        service_id, monday..sunday, start_date, end_date
//   calendar_dates.txt  service_id, date, exception_type (optional)
//   trips.txt           route_id, service_id, trip_id
//   stop_times.txt      trip_id, arrival_time, departure_time, stop_id,
//                       stop_sequence
//   fare_attributes.txt / fare_rules.txt   flat per-route fares
//
// Feeds store projected coordinates; a geo::LocalProjection converts to
// and from the WGS-84 lat/lon GTFS requires. Extra columns in input files
// are ignored; missing required columns fail with InvalidArgument.
//
// The Feed models service as a weekly DayMask, not a date range, so
// calendar_dates exceptions fold into the mask by weekday: an added date
// (exception_type 1) sets the date's weekday bit, a removed date (type 2)
// clears it. That keeps one-off GTFS publications (bank-holiday patterns,
// special-event service) loadable while preserving the weekly model the
// pipeline analyses.
#pragma once

#include <string>
#include <vector>

#include "geo/latlon.h"
#include "gtfs/feed.h"

namespace staq::gtfs {

/// One calendar_dates.txt row: service `service_id` gains (added=true) or
/// loses (added=false) service on `date` (YYYYMMDD).
struct CalendarDateException {
  std::string service_id;
  uint32_t date = 0;
  bool added = true;
};

/// Weekday of a YYYYMMDD date. kInvalidArgument on a date that does not
/// exist (bad month, day out of range for the month/leap year).
util::Result<Day> WeekdayOf(uint32_t date);

/// Writes the feed as GTFS CSV files into `directory` (created if absent).
util::Status WriteFeedCsv(const Feed& feed,
                          const geo::LocalProjection& projection,
                          const std::string& directory);

/// As above, plus a calendar_dates.txt carrying `exceptions` (omitted when
/// empty). Service ids must match the exporter's naming ("C0", "C1", ... in
/// day-mask order — see calendar.txt emission).
util::Status WriteFeedCsv(const Feed& feed,
                          const geo::LocalProjection& projection,
                          const std::string& directory,
                          const std::vector<CalendarDateException>& exceptions);

/// Loads a feed from GTFS CSV files in `directory`. String ids are
/// re-mapped to dense indices; the result passes Feed::Validate().
/// fare files and calendar_dates.txt are optional (fares default to 0).
util::Result<Feed> ReadFeedCsv(const std::string& directory,
                               const geo::LocalProjection& projection);

}  // namespace staq::gtfs
