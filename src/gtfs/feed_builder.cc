#include "gtfs/feed_builder.h"

#include <algorithm>

namespace staq::gtfs {

StopId FeedBuilder::AddStop(std::string name, const geo::Point& position) {
  StopId id = static_cast<StopId>(feed_.stops_.size());
  feed_.stops_.push_back(Stop{id, std::move(name), position});
  return id;
}

RouteId FeedBuilder::AddRoute(std::string name, double flat_fare) {
  RouteId id = static_cast<RouteId>(feed_.routes_.size());
  feed_.routes_.push_back(Route{id, std::move(name), flat_fare});
  return id;
}

TripId FeedBuilder::BeginTrip(RouteId route, DayMask days) {
  TripId id = static_cast<TripId>(feed_.trips_.size());
  Trip trip;
  trip.id = id;
  trip.route = route;
  trip.days = days;
  trip.first_stop_time = static_cast<uint32_t>(feed_.stop_times_.size());
  trip.num_stop_times = 0;
  feed_.trips_.push_back(trip);
  return id;
}

util::Status FeedBuilder::AddCall(StopId stop, TimeOfDay arrival,
                                  TimeOfDay departure) {
  if (feed_.trips_.empty()) {
    return util::Status::FailedPrecondition("AddCall before BeginTrip");
  }
  if (stop >= feed_.stops_.size()) {
    return util::Status::InvalidArgument("unknown stop");
  }
  if (departure < arrival) {
    return util::Status::InvalidArgument("departure before arrival");
  }
  Trip& trip = feed_.trips_.back();
  feed_.stop_times_.push_back(StopTime{trip.id, stop, arrival, departure});
  ++trip.num_stop_times;
  return util::Status::OK();
}

util::Result<Feed> FeedBuilder::Build() {
  if (built_) {
    return util::Status::FailedPrecondition("Build() called twice");
  }
  built_ = true;

  util::Status st = feed_.Validate();
  if (!st.ok()) return st;

  // Per-stop departure index, sorted by time. The final call of each trip
  // is included (hop-tree construction wants arrivals too via stop_times);
  // the router skips final calls via NextDeparture.
  feed_.BuildDepartureIndex();
  return std::move(feed_);
}

}  // namespace staq::gtfs
