#include "gtfs/gtfs_csv.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <unordered_map>

#include "gtfs/feed_builder.h"
#include "util/csv.h"
#include "util/strings.h"

namespace staq::gtfs {

namespace {

namespace fs = std::filesystem;

using Rows = std::vector<std::vector<std::string>>;

/// Column lookup over a parsed header row.
class Header {
 public:
  explicit Header(const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      index_[util::Trim(row[i])] = i;
    }
  }

  /// Index of a required column.
  util::Result<size_t> Require(const std::string& name) const {
    auto it = index_.find(name);
    if (it == index_.end()) {
      return util::Status::InvalidArgument("missing column: " + name);
    }
    return it->second;
  }

  /// Index of an optional column, or SIZE_MAX.
  size_t Optional(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? SIZE_MAX : it->second;
  }

 private:
  std::unordered_map<std::string, size_t> index_;
};

util::Result<Rows> LoadTable(const std::string& directory,
                             const std::string& filename) {
  auto rows = util::ReadCsvFile(directory + "/" + filename);
  if (!rows.ok()) return rows.status();
  if (rows.value().empty()) {
    return util::Status::InvalidArgument(filename + " is empty");
  }
  return rows;
}

util::Result<double> ParseDouble(const std::string& text,
                                 const std::string& context) {
  char* end = nullptr;
  const std::string trimmed = util::Trim(text);
  double value = std::strtod(trimmed.c_str(), &end);
  if (trimmed.empty() || end != trimmed.c_str() + trimmed.size()) {
    return util::Status::InvalidArgument("bad number '" + text + "' in " +
                                         context);
  }
  return value;
}

std::string DayFlag(DayMask mask, Day day) {
  return RunsOn(mask, day) ? "1" : "0";
}

}  // namespace

util::Result<Day> WeekdayOf(uint32_t date) {
  const uint32_t y = date / 10000;
  const uint32_t m = (date / 100) % 100;
  const uint32_t d = date % 100;
  static constexpr uint32_t kDaysInMonth[12] = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  const bool leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
  if (y < 1000 || y > 9999 || m < 1 || m > 12 || d < 1 ||
      d > kDaysInMonth[m - 1] + (m == 2 && leap ? 1u : 0u)) {
    return util::Status::InvalidArgument(
        util::Format("bad YYYYMMDD date %u", date));
  }
  // days_from_civil (Gregorian), then anchor on 1970-01-01 = Thursday and
  // rotate to Monday = 0 to match the Day enum.
  const int32_t yy = static_cast<int32_t>(y) - (m <= 2);
  const int32_t era = (yy >= 0 ? yy : yy - 399) / 400;
  const uint32_t yoe = static_cast<uint32_t>(yy - era * 400);
  const uint32_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const uint32_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  const int64_t days =
      static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) - 719468;
  return static_cast<Day>(((days % 7) + 7 + 3) % 7);
}

util::Status WriteFeedCsv(const Feed& feed,
                          const geo::LocalProjection& projection,
                          const std::string& directory) {
  return WriteFeedCsv(feed, projection, directory, {});
}

util::Status WriteFeedCsv(const Feed& feed,
                          const geo::LocalProjection& projection,
                          const std::string& directory,
                          const std::vector<CalendarDateException>& exceptions) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return util::Status::IoError("cannot create " + directory + ": " +
                                 ec.message());
  }

  // stops.txt
  {
    util::CsvTable table({"stop_id", "stop_name", "stop_lat", "stop_lon"});
    for (const Stop& stop : feed.stops()) {
      geo::LatLon ll = projection.Unproject(stop.position);
      STAQ_RETURN_NOT_OK(table.AddRow(
          {util::Format("S%u", stop.id), stop.name,
           util::CsvTable::Num(ll.lat, 7), util::CsvTable::Num(ll.lon, 7)}));
    }
    STAQ_RETURN_NOT_OK(table.WriteFile(directory + "/stops.txt"));
  }

  // routes.txt (+ flat fares via fare_attributes / fare_rules).
  {
    util::CsvTable routes({"route_id", "route_short_name", "route_type"});
    util::CsvTable fares({"fare_id", "price", "currency_type",
                          "payment_method", "transfers"});
    util::CsvTable rules({"fare_id", "route_id"});
    for (const Route& route : feed.routes()) {
      std::string route_id = util::Format("R%u", route.id);
      STAQ_RETURN_NOT_OK(routes.AddRow({route_id, route.name, "3"}));
      std::string fare_id = util::Format("F%u", route.id);
      STAQ_RETURN_NOT_OK(fares.AddRow(
          {fare_id, util::CsvTable::Num(route.flat_fare, 2), "GBP", "0", ""}));
      STAQ_RETURN_NOT_OK(rules.AddRow({fare_id, route_id}));
    }
    STAQ_RETURN_NOT_OK(routes.WriteFile(directory + "/routes.txt"));
    STAQ_RETURN_NOT_OK(fares.WriteFile(directory + "/fare_attributes.txt"));
    STAQ_RETURN_NOT_OK(rules.WriteFile(directory + "/fare_rules.txt"));
  }

  // calendar.txt: one service per distinct day mask actually used.
  std::map<DayMask, std::string> services;
  for (const Trip& trip : feed.trips()) {
    if (!services.count(trip.days)) {
      services[trip.days] = util::Format("C%zu", services.size());
    }
  }
  {
    util::CsvTable table({"service_id", "monday", "tuesday", "wednesday",
                          "thursday", "friday", "saturday", "sunday",
                          "start_date", "end_date"});
    for (const auto& [mask, service_id] : services) {
      STAQ_RETURN_NOT_OK(table.AddRow(
          {service_id, DayFlag(mask, Day::kMonday),
           DayFlag(mask, Day::kTuesday), DayFlag(mask, Day::kWednesday),
           DayFlag(mask, Day::kThursday), DayFlag(mask, Day::kFriday),
           DayFlag(mask, Day::kSaturday), DayFlag(mask, Day::kSunday),
           "20240101", "20991231"}));
    }
    STAQ_RETURN_NOT_OK(table.WriteFile(directory + "/calendar.txt"));
  }

  // calendar_dates.txt: explicit service exceptions, validated before any
  // byte is written so a bad date never leaves a half-useful file behind.
  if (!exceptions.empty()) {
    util::CsvTable table({"service_id", "date", "exception_type"});
    for (const CalendarDateException& e : exceptions) {
      auto weekday = WeekdayOf(e.date);
      if (!weekday.ok()) {
        return util::Status::InvalidArgument("calendar_dates exception: " +
                                             weekday.status().message());
      }
      STAQ_RETURN_NOT_OK(table.AddRow({e.service_id,
                                       util::Format("%08u", e.date),
                                       e.added ? "1" : "2"}));
    }
    STAQ_RETURN_NOT_OK(table.WriteFile(directory + "/calendar_dates.txt"));
  }

  // trips.txt
  {
    util::CsvTable table({"route_id", "service_id", "trip_id"});
    for (const Trip& trip : feed.trips()) {
      STAQ_RETURN_NOT_OK(table.AddRow({util::Format("R%u", trip.route),
                                       services[trip.days],
                                       util::Format("T%u", trip.id)}));
    }
    STAQ_RETURN_NOT_OK(table.WriteFile(directory + "/trips.txt"));
  }

  // stop_times.txt
  {
    util::CsvTable table({"trip_id", "arrival_time", "departure_time",
                          "stop_id", "stop_sequence"});
    for (TripId t = 0; t < feed.num_trips(); ++t) {
      uint32_t seq = 0;
      for (const StopTime* call = feed.trip_begin(t); call != feed.trip_end(t);
           ++call) {
        STAQ_RETURN_NOT_OK(table.AddRow(
            {util::Format("T%u", t), FormatTime(call->arrival),
             FormatTime(call->departure), util::Format("S%u", call->stop),
             util::CsvTable::Num(static_cast<int64_t>(seq++))}));
      }
    }
    STAQ_RETURN_NOT_OK(table.WriteFile(directory + "/stop_times.txt"));
  }
  return util::Status::OK();
}

util::Result<Feed> ReadFeedCsv(const std::string& directory,
                               const geo::LocalProjection& projection) {
  FeedBuilder builder;

  // --- stops ---------------------------------------------------------------
  std::unordered_map<std::string, StopId> stop_ids;
  {
    auto rows = LoadTable(directory, "stops.txt");
    if (!rows.ok()) return rows.status();
    Header header(rows.value()[0]);
    auto id_col = header.Require("stop_id");
    auto lat_col = header.Require("stop_lat");
    auto lon_col = header.Require("stop_lon");
    STAQ_RETURN_NOT_OK(id_col.status());
    STAQ_RETURN_NOT_OK(lat_col.status());
    STAQ_RETURN_NOT_OK(lon_col.status());
    size_t name_col = header.Optional("stop_name");

    for (size_t r = 1; r < rows.value().size(); ++r) {
      const auto& row = rows.value()[r];
      if (row.size() <= std::max(lat_col.value(), lon_col.value())) {
        return util::Status::InvalidArgument(
            util::Format("stops.txt row %zu too short", r));
      }
      auto lat = ParseDouble(row[lat_col.value()], "stops.txt stop_lat");
      auto lon = ParseDouble(row[lon_col.value()], "stops.txt stop_lon");
      if (!lat.ok()) return lat.status();
      if (!lon.ok()) return lon.status();
      std::string external = util::Trim(row[id_col.value()]);
      if (stop_ids.count(external)) {
        return util::Status::InvalidArgument("duplicate stop_id " + external);
      }
      std::string name = name_col != SIZE_MAX && name_col < row.size()
                             ? row[name_col]
                             : external;
      stop_ids[external] = builder.AddStop(
          name, projection.Project(geo::LatLon{lat.value(), lon.value()}));
    }
  }

  // --- fares (optional) ------------------------------------------------------
  std::unordered_map<std::string, double> fare_price;     // fare_id -> price
  std::unordered_map<std::string, double> route_fare;     // route_id -> price
  if (fs::exists(directory + "/fare_attributes.txt") &&
      fs::exists(directory + "/fare_rules.txt")) {
    auto fares = LoadTable(directory, "fare_attributes.txt");
    if (!fares.ok()) return fares.status();
    Header fare_header(fares.value()[0]);
    auto fare_id_col = fare_header.Require("fare_id");
    auto price_col = fare_header.Require("price");
    STAQ_RETURN_NOT_OK(fare_id_col.status());
    STAQ_RETURN_NOT_OK(price_col.status());
    for (size_t r = 1; r < fares.value().size(); ++r) {
      const auto& row = fares.value()[r];
      auto price = ParseDouble(row[price_col.value()], "fare price");
      if (!price.ok()) return price.status();
      fare_price[util::Trim(row[fare_id_col.value()])] = price.value();
    }

    auto rules = LoadTable(directory, "fare_rules.txt");
    if (!rules.ok()) return rules.status();
    Header rule_header(rules.value()[0]);
    auto rule_fare_col = rule_header.Require("fare_id");
    auto rule_route_col = rule_header.Require("route_id");
    STAQ_RETURN_NOT_OK(rule_fare_col.status());
    STAQ_RETURN_NOT_OK(rule_route_col.status());
    for (size_t r = 1; r < rules.value().size(); ++r) {
      const auto& row = rules.value()[r];
      auto it = fare_price.find(util::Trim(row[rule_fare_col.value()]));
      if (it != fare_price.end()) {
        route_fare[util::Trim(row[rule_route_col.value()])] = it->second;
      }
    }
  }

  // --- routes ----------------------------------------------------------------
  std::unordered_map<std::string, RouteId> route_ids;
  {
    auto rows = LoadTable(directory, "routes.txt");
    if (!rows.ok()) return rows.status();
    Header header(rows.value()[0]);
    auto id_col = header.Require("route_id");
    STAQ_RETURN_NOT_OK(id_col.status());
    size_t name_col = header.Optional("route_short_name");

    for (size_t r = 1; r < rows.value().size(); ++r) {
      const auto& row = rows.value()[r];
      std::string external = util::Trim(row[id_col.value()]);
      if (route_ids.count(external)) {
        return util::Status::InvalidArgument("duplicate route_id " + external);
      }
      std::string name = name_col != SIZE_MAX && name_col < row.size()
                             ? row[name_col]
                             : external;
      double fare = route_fare.count(external) ? route_fare[external] : 0.0;
      route_ids[external] = builder.AddRoute(name, fare);
    }
  }

  // --- calendar ---------------------------------------------------------------
  std::unordered_map<std::string, DayMask> service_days;
  {
    auto rows = LoadTable(directory, "calendar.txt");
    if (!rows.ok()) return rows.status();
    Header header(rows.value()[0]);
    auto id_col = header.Require("service_id");
    STAQ_RETURN_NOT_OK(id_col.status());
    const char* day_names[7] = {"monday",   "tuesday", "wednesday", "thursday",
                                "friday",   "saturday", "sunday"};
    size_t day_cols[7];
    for (int d = 0; d < 7; ++d) {
      auto col = header.Require(day_names[d]);
      STAQ_RETURN_NOT_OK(col.status());
      day_cols[d] = col.value();
    }
    for (size_t r = 1; r < rows.value().size(); ++r) {
      const auto& row = rows.value()[r];
      DayMask mask = 0;
      for (int d = 0; d < 7; ++d) {
        if (day_cols[d] < row.size() && util::Trim(row[day_cols[d]]) == "1") {
          mask |= MaskOf(static_cast<Day>(d));
        }
      }
      service_days[util::Trim(row[id_col.value()])] = mask;
    }
  }

  // --- calendar_dates (optional) ---------------------------------------------
  // Exceptions fold into the weekly mask by weekday: type 1 (added) sets
  // the date's weekday bit, type 2 (removed) clears it. A service that
  // exists only through added dates is created here, mask 0 upward —
  // GTFS permits calendar_dates-only services.
  if (fs::exists(directory + "/calendar_dates.txt")) {
    auto rows = LoadTable(directory, "calendar_dates.txt");
    if (!rows.ok()) return rows.status();
    Header header(rows.value()[0]);
    auto id_col = header.Require("service_id");
    auto date_col = header.Require("date");
    auto type_col = header.Require("exception_type");
    STAQ_RETURN_NOT_OK(id_col.status());
    STAQ_RETURN_NOT_OK(date_col.status());
    STAQ_RETURN_NOT_OK(type_col.status());
    for (size_t r = 1; r < rows.value().size(); ++r) {
      const auto& row = rows.value()[r];
      if (row.size() <= std::max({id_col.value(), date_col.value(),
                                  type_col.value()})) {
        return util::Status::InvalidArgument(
            util::Format("calendar_dates.txt row %zu too short", r));
      }
      const std::string date_text = util::Trim(row[date_col.value()]);
      uint32_t date = 0;
      bool digits = date_text.size() == 8;
      for (char c : date_text) {
        if (c < '0' || c > '9') digits = false;
        if (digits) date = date * 10 + static_cast<uint32_t>(c - '0');
      }
      if (!digits) {
        return util::Status::InvalidArgument(
            util::Format("calendar_dates.txt row %zu: date must be "
                         "YYYYMMDD, got '%s'",
                         r, date_text.c_str()));
      }
      auto weekday = WeekdayOf(date);
      if (!weekday.ok()) {
        return util::Status::InvalidArgument(
            util::Format("calendar_dates.txt row %zu: %s", r,
                         weekday.status().message().c_str()));
      }
      const std::string type = util::Trim(row[type_col.value()]);
      if (type != "1" && type != "2") {
        return util::Status::InvalidArgument(
            util::Format("calendar_dates.txt row %zu: exception_type must "
                         "be 1 or 2, got '%s'",
                         r, type.c_str()));
      }
      DayMask& mask = service_days[util::Trim(row[id_col.value()])];
      if (type == "1") {
        mask |= MaskOf(weekday.value());
      } else {
        mask &= static_cast<DayMask>(~MaskOf(weekday.value()));
      }
    }
  }

  // --- trips + stop_times -------------------------------------------------------
  // stop_times rows are grouped per trip and ordered by stop_sequence; the
  // builder needs calls appended per trip in order, so collect first.
  struct PendingCall {
    int sequence;
    StopId stop;
    TimeOfDay arrival;
    TimeOfDay departure;
  };
  std::unordered_map<std::string, std::pair<RouteId, DayMask>> trip_meta;
  std::vector<std::string> trip_order;  // preserve file order
  {
    auto rows = LoadTable(directory, "trips.txt");
    if (!rows.ok()) return rows.status();
    Header header(rows.value()[0]);
    auto route_col = header.Require("route_id");
    auto service_col = header.Require("service_id");
    auto trip_col = header.Require("trip_id");
    STAQ_RETURN_NOT_OK(route_col.status());
    STAQ_RETURN_NOT_OK(service_col.status());
    STAQ_RETURN_NOT_OK(trip_col.status());

    for (size_t r = 1; r < rows.value().size(); ++r) {
      const auto& row = rows.value()[r];
      std::string trip_id = util::Trim(row[trip_col.value()]);
      auto route_it = route_ids.find(util::Trim(row[route_col.value()]));
      if (route_it == route_ids.end()) {
        return util::Status::InvalidArgument("trip references unknown route");
      }
      auto service_it = service_days.find(util::Trim(row[service_col.value()]));
      if (service_it == service_days.end()) {
        return util::Status::InvalidArgument(
            "trip references unknown service");
      }
      if (trip_meta.count(trip_id)) {
        return util::Status::InvalidArgument("duplicate trip_id " + trip_id);
      }
      trip_meta[trip_id] = {route_it->second, service_it->second};
      trip_order.push_back(trip_id);
    }
  }

  std::unordered_map<std::string, std::vector<PendingCall>> calls;
  {
    auto rows = LoadTable(directory, "stop_times.txt");
    if (!rows.ok()) return rows.status();
    Header header(rows.value()[0]);
    auto trip_col = header.Require("trip_id");
    auto arr_col = header.Require("arrival_time");
    auto dep_col = header.Require("departure_time");
    auto stop_col = header.Require("stop_id");
    auto seq_col = header.Require("stop_sequence");
    STAQ_RETURN_NOT_OK(trip_col.status());
    STAQ_RETURN_NOT_OK(arr_col.status());
    STAQ_RETURN_NOT_OK(dep_col.status());
    STAQ_RETURN_NOT_OK(stop_col.status());
    STAQ_RETURN_NOT_OK(seq_col.status());

    for (size_t r = 1; r < rows.value().size(); ++r) {
      const auto& row = rows.value()[r];
      std::string trip_id = util::Trim(row[trip_col.value()]);
      if (!trip_meta.count(trip_id)) {
        return util::Status::InvalidArgument(
            "stop_time references unknown trip " + trip_id);
      }
      auto stop_it = stop_ids.find(util::Trim(row[stop_col.value()]));
      if (stop_it == stop_ids.end()) {
        return util::Status::InvalidArgument(
            "stop_time references unknown stop");
      }
      auto arrival = ParseTime(row[arr_col.value()]);
      auto departure = ParseTime(row[dep_col.value()]);
      if (!arrival.ok()) return arrival.status();
      if (!departure.ok()) return departure.status();
      auto sequence = ParseDouble(row[seq_col.value()], "stop_sequence");
      if (!sequence.ok()) return sequence.status();
      calls[trip_id].push_back(PendingCall{
          static_cast<int>(sequence.value()), stop_it->second,
          arrival.value(), departure.value()});
    }
  }

  // --- frequencies (optional): headway-based trip expansion ------------------
  // GTFS frequencies.txt turns a trip into a template repeated every
  // headway_secs across [start_time, end_time); its own stop_times provide
  // only the inter-call offsets.
  struct FrequencyWindow {
    TimeOfDay start, end;
    int headway_s;
  };
  std::unordered_map<std::string, std::vector<FrequencyWindow>> frequencies;
  if (fs::exists(directory + "/frequencies.txt")) {
    auto rows = LoadTable(directory, "frequencies.txt");
    if (!rows.ok()) return rows.status();
    Header header(rows.value()[0]);
    auto trip_col = header.Require("trip_id");
    auto start_col = header.Require("start_time");
    auto end_col = header.Require("end_time");
    auto headway_col = header.Require("headway_secs");
    STAQ_RETURN_NOT_OK(trip_col.status());
    STAQ_RETURN_NOT_OK(start_col.status());
    STAQ_RETURN_NOT_OK(end_col.status());
    STAQ_RETURN_NOT_OK(headway_col.status());
    for (size_t r = 1; r < rows.value().size(); ++r) {
      const auto& row = rows.value()[r];
      auto start = ParseTime(row[start_col.value()]);
      auto end = ParseTime(row[end_col.value()]);
      auto headway = ParseDouble(row[headway_col.value()], "headway_secs");
      if (!start.ok()) return start.status();
      if (!end.ok()) return end.status();
      if (!headway.ok()) return headway.status();
      if (headway.value() <= 0) {
        return util::Status::InvalidArgument("non-positive headway_secs");
      }
      frequencies[util::Trim(row[trip_col.value()])].push_back(
          FrequencyWindow{start.value(), end.value(),
                          static_cast<int>(headway.value())});
    }
  }

  for (const std::string& trip_id : trip_order) {
    auto it = calls.find(trip_id);
    if (it == calls.end()) {
      return util::Status::InvalidArgument("trip has no stop_times: " +
                                           trip_id);
    }
    std::sort(it->second.begin(), it->second.end(),
              [](const PendingCall& a, const PendingCall& b) {
                return a.sequence < b.sequence;
              });
    const auto& [route, days] = trip_meta[trip_id];

    auto freq_it = frequencies.find(trip_id);
    if (freq_it == frequencies.end()) {
      builder.BeginTrip(route, days);
      for (const PendingCall& call : it->second) {
        STAQ_RETURN_NOT_OK(builder.AddCall(call.stop, call.arrival,
                                           call.departure));
      }
      continue;
    }

    // Frequency expansion: shift the template's offsets to each start.
    if (it->second.empty()) {
      return util::Status::InvalidArgument("frequency trip has no calls: " +
                                           trip_id);
    }
    TimeOfDay base = it->second.front().arrival;
    for (const FrequencyWindow& window : freq_it->second) {
      for (TimeOfDay start = window.start; start < window.end;
           start += window.headway_s) {
        builder.BeginTrip(route, days);
        for (const PendingCall& call : it->second) {
          STAQ_RETURN_NOT_OK(builder.AddCall(call.stop,
                                             start + (call.arrival - base),
                                             start + (call.departure - base)));
        }
      }
    }
  }

  return builder.Build();
}

}  // namespace staq::gtfs
