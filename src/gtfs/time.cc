#include "gtfs/time.h"

#include <cassert>
#include <cstdio>

#include "util/strings.h"

namespace staq::gtfs {

TimeOfDay MakeTime(int hours, int minutes, int seconds) {
  assert(hours >= 0 && minutes >= 0 && minutes < 60 && seconds >= 0 &&
         seconds < 60);
  return hours * 3600 + minutes * 60 + seconds;
}

util::Result<TimeOfDay> ParseTime(const std::string& text) {
  auto parts = util::Split(util::Trim(text), ':');
  if (parts.size() != 2 && parts.size() != 3) {
    return util::Status::InvalidArgument("bad time: " + text);
  }
  int values[3] = {0, 0, 0};
  for (size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].empty() || parts[i].size() > 2) {
      return util::Status::InvalidArgument("bad time field: " + text);
    }
    for (char c : parts[i]) {
      if (c < '0' || c > '9') {
        return util::Status::InvalidArgument("bad time digit: " + text);
      }
    }
    values[i] = std::stoi(parts[i]);
  }
  if (values[0] > 47 || values[1] > 59 || values[2] > 59) {
    return util::Status::OutOfRange("time out of range: " + text);
  }
  return MakeTime(values[0], values[1], values[2]);
}

std::string FormatTime(TimeOfDay t) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", t / 3600, (t / 60) % 60,
                t % 60);
  return buf;
}

TimeInterval WeekdayAmPeak() {
  return TimeInterval{MakeTime(7, 0), MakeTime(9, 0), Day::kTuesday,
                      "weekday-am-peak"};
}

TimeInterval WeekdayPmPeak() {
  return TimeInterval{MakeTime(16, 30), MakeTime(18, 30), Day::kTuesday,
                      "weekday-pm-peak"};
}

TimeInterval WeekdayOffPeak() {
  return TimeInterval{MakeTime(11, 0), MakeTime(13, 0), Day::kTuesday,
                      "weekday-off-peak"};
}

TimeInterval SundayMorning() {
  return TimeInterval{MakeTime(9, 0), MakeTime(11, 0), Day::kSunday,
                      "sunday-morning"};
}

}  // namespace staq::gtfs
