// Time-of-day and time-interval types for timetable data (paper §III-A).
//
// All timetable times are integer seconds since local midnight of a service
// day. A TimeInterval v = [t_s, t_e, t_d] names a popular analysis window,
// e.g. {7:00, 9:00, Tuesday} is "weekday AM peak".
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace staq::gtfs {

/// Seconds since local midnight (0 .. 86399 for same-day times).
using TimeOfDay = int32_t;

inline constexpr TimeOfDay kSecondsPerDay = 86400;

enum class Day : uint8_t {
  kMonday = 0,
  kTuesday,
  kWednesday,
  kThursday,
  kFriday,
  kSaturday,
  kSunday,
};

/// Bitmask over days of the week; bit d set means the service runs on day d.
using DayMask = uint8_t;

inline constexpr DayMask kWeekdays = 0b0011111;
inline constexpr DayMask kWeekend = 0b1100000;
inline constexpr DayMask kEveryDay = 0b1111111;

inline DayMask MaskOf(Day d) {
  return static_cast<DayMask>(1u << static_cast<uint8_t>(d));
}

inline bool RunsOn(DayMask mask, Day d) { return (mask & MaskOf(d)) != 0; }

/// Builds a TimeOfDay from components. No range checks beyond debug asserts.
TimeOfDay MakeTime(int hours, int minutes, int seconds = 0);

/// Parses "HH:MM:SS" or "HH:MM". Hours up to 47 are accepted (GTFS allows
/// times past midnight for late-night services).
util::Result<TimeOfDay> ParseTime(const std::string& text);

/// Formats as "HH:MM:SS".
std::string FormatTime(TimeOfDay t);

/// The time interval v = [t_s, t_e, t_d] of the paper: a window on a day.
struct TimeInterval {
  TimeOfDay start = 0;
  TimeOfDay end = 0;
  Day day = Day::kTuesday;
  std::string label;  // e.g. "weekday-am-peak"

  bool Contains(TimeOfDay t) const { return t >= start && t < end; }
  double DurationHours() const { return (end - start) / 3600.0; }
};

/// The weekday AM peak interval used throughout the paper's experiments.
TimeInterval WeekdayAmPeak();
/// Complementary intervals for temporal-variation studies.
TimeInterval WeekdayPmPeak();
TimeInterval WeekdayOffPeak();
TimeInterval SundayMorning();

}  // namespace staq::gtfs
