#include "gtfs/feed.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace staq::gtfs {

std::vector<Departure> Feed::DeparturesInWindow(StopId s, Day day,
                                                TimeOfDay from,
                                                TimeOfDay to) const {
  const auto& deps = stop_departures_[s];
  std::vector<Departure> out;
  auto it = std::lower_bound(deps.begin(), deps.end(), from,
                             [](const Departure& d, TimeOfDay t) {
                               return d.time < t;
                             });
  for (; it != deps.end() && it->time < to; ++it) {
    if (RunsOn(trips_[it->trip].days, day)) out.push_back(*it);
  }
  return out;
}

bool Feed::NextDeparture(StopId s, Day day, TimeOfDay earliest,
                         Departure* out) const {
  const auto& deps = stop_departures_[s];
  auto it = std::lower_bound(deps.begin(), deps.end(), earliest,
                             [](const Departure& d, TimeOfDay t) {
                               return d.time < t;
                             });
  for (; it != deps.end(); ++it) {
    const Trip& trip = trips_[it->trip];
    if (!RunsOn(trip.days, day)) continue;
    // Skip departures at the trip's final call: no onward travel.
    if (it->stop_time_index + 1 >= trip.first_stop_time + trip.num_stop_times) {
      continue;
    }
    *out = *it;
    return true;
  }
  return false;
}

std::vector<RouteId> Feed::RoutesThrough(StopId s, Day day, TimeOfDay from,
                                         TimeOfDay to) const {
  std::set<RouteId> seen;
  for (const Departure& d : DeparturesInWindow(s, day, from, to)) {
    seen.insert(trips_[d.trip].route);
  }
  return std::vector<RouteId>(seen.begin(), seen.end());
}

StopServiceStats Feed::ServiceStats(StopId s, const TimeInterval& v) const {
  StopServiceStats stats;
  auto deps = DeparturesInWindow(s, v.day, v.start, v.end);
  stats.num_departures = static_cast<uint32_t>(deps.size());
  std::set<RouteId> routes;
  for (const Departure& d : deps) routes.insert(trips_[d.trip].route);
  stats.num_routes = static_cast<uint32_t>(routes.size());
  if (deps.size() >= 2) {
    // deps are time-sorted; mean gap between consecutive departures.
    double total_gap = static_cast<double>(deps.back().time - deps.front().time);
    stats.mean_headway_s = total_gap / static_cast<double>(deps.size() - 1);
  }
  return stats;
}

void Feed::BuildDepartureIndex() {
  stop_departures_.assign(stops_.size(), {});
  for (uint32_t i = 0; i < stop_times_.size(); ++i) {
    const StopTime& st_row = stop_times_[i];
    stop_departures_[st_row.stop].push_back(
        Departure{st_row.departure, st_row.trip, i});
  }
  for (auto& deps : stop_departures_) {
    std::sort(deps.begin(), deps.end(),
              [](const Departure& a, const Departure& b) {
                return a.time < b.time || (a.time == b.time && a.trip < b.trip);
              });
  }
}

util::Result<Feed> Feed::FromParts(std::vector<Stop> stops,
                                   std::vector<Route> routes,
                                   std::vector<Trip> trips,
                                   std::vector<StopTime> stop_times) {
  Feed feed;
  feed.stops_ = std::move(stops);
  feed.routes_ = std::move(routes);
  feed.trips_ = std::move(trips);
  feed.stop_times_ = std::move(stop_times);
  // Validate() range-checks trip/stop references but assumes dense ids
  // elsewhere in the pipeline; check those too before accepting the parts.
  for (size_t i = 0; i < feed.stops_.size(); ++i) {
    if (feed.stops_[i].id != i) {
      return util::Status::InvalidArgument("feed stop ids not dense");
    }
  }
  for (size_t i = 0; i < feed.routes_.size(); ++i) {
    if (feed.routes_[i].id != i) {
      return util::Status::InvalidArgument("feed route ids not dense");
    }
  }
  for (size_t i = 0; i < feed.trips_.size(); ++i) {
    if (feed.trips_[i].id != i) {
      return util::Status::InvalidArgument("feed trip ids not dense");
    }
  }
  for (size_t i = 0; i < feed.stop_times_.size(); ++i) {
    if (feed.stop_times_[i].trip >= feed.trips_.size()) {
      return util::Status::InvalidArgument("stop_time trip out of range");
    }
  }
  util::Status st = feed.Validate();
  if (!st.ok()) return st;
  feed.BuildDepartureIndex();
  return feed;
}

util::Status Feed::Validate() const {
  for (const Trip& t : trips_) {
    if (t.route >= routes_.size()) {
      return util::Status::InvalidArgument(
          util::Format("trip %u references unknown route %u", t.id, t.route));
    }
    if (t.num_stop_times < 2) {
      return util::Status::InvalidArgument(
          util::Format("trip %u has fewer than 2 calls", t.id));
    }
    if (static_cast<size_t>(t.first_stop_time) + t.num_stop_times >
        stop_times_.size()) {
      return util::Status::Internal(
          util::Format("trip %u stop_time range out of bounds", t.id));
    }
    TimeOfDay prev = -1;
    for (const StopTime* st = trip_begin(t.id); st != trip_end(t.id); ++st) {
      if (st->stop >= stops_.size()) {
        return util::Status::InvalidArgument(
            util::Format("trip %u calls unknown stop %u", t.id, st->stop));
      }
      if (st->departure < st->arrival) {
        return util::Status::InvalidArgument(
            util::Format("trip %u departs before arriving at stop %u", t.id,
                         st->stop));
      }
      if (st->arrival < prev) {
        return util::Status::InvalidArgument(
            util::Format("trip %u time travels at stop %u", t.id, st->stop));
      }
      prev = st->departure;
    }
  }
  return util::Status::OK();
}

}  // namespace staq::gtfs
