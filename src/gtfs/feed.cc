#include "gtfs/feed.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace staq::gtfs {

std::vector<Departure> Feed::DeparturesInWindow(StopId s, Day day,
                                                TimeOfDay from,
                                                TimeOfDay to) const {
  const auto& deps = stop_departures_[s];
  std::vector<Departure> out;
  auto it = std::lower_bound(deps.begin(), deps.end(), from,
                             [](const Departure& d, TimeOfDay t) {
                               return d.time < t;
                             });
  for (; it != deps.end() && it->time < to; ++it) {
    if (RunsOn(trips_[it->trip].days, day)) out.push_back(*it);
  }
  return out;
}

bool Feed::NextDeparture(StopId s, Day day, TimeOfDay earliest,
                         Departure* out) const {
  const auto& deps = stop_departures_[s];
  auto it = std::lower_bound(deps.begin(), deps.end(), earliest,
                             [](const Departure& d, TimeOfDay t) {
                               return d.time < t;
                             });
  for (; it != deps.end(); ++it) {
    const Trip& trip = trips_[it->trip];
    if (!RunsOn(trip.days, day)) continue;
    // Skip departures at the trip's final call: no onward travel.
    if (it->stop_time_index + 1 >= trip.first_stop_time + trip.num_stop_times) {
      continue;
    }
    *out = *it;
    return true;
  }
  return false;
}

std::vector<RouteId> Feed::RoutesThrough(StopId s, Day day, TimeOfDay from,
                                         TimeOfDay to) const {
  std::set<RouteId> seen;
  for (const Departure& d : DeparturesInWindow(s, day, from, to)) {
    seen.insert(trips_[d.trip].route);
  }
  return std::vector<RouteId>(seen.begin(), seen.end());
}

StopServiceStats Feed::ServiceStats(StopId s, const TimeInterval& v) const {
  StopServiceStats stats;
  auto deps = DeparturesInWindow(s, v.day, v.start, v.end);
  stats.num_departures = static_cast<uint32_t>(deps.size());
  std::set<RouteId> routes;
  for (const Departure& d : deps) routes.insert(trips_[d.trip].route);
  stats.num_routes = static_cast<uint32_t>(routes.size());
  if (deps.size() >= 2) {
    // deps are time-sorted; mean gap between consecutive departures.
    double total_gap = static_cast<double>(deps.back().time - deps.front().time);
    stats.mean_headway_s = total_gap / static_cast<double>(deps.size() - 1);
  }
  return stats;
}

util::Status Feed::Validate() const {
  for (const Trip& t : trips_) {
    if (t.route >= routes_.size()) {
      return util::Status::InvalidArgument(
          util::Format("trip %u references unknown route %u", t.id, t.route));
    }
    if (t.num_stop_times < 2) {
      return util::Status::InvalidArgument(
          util::Format("trip %u has fewer than 2 calls", t.id));
    }
    if (static_cast<size_t>(t.first_stop_time) + t.num_stop_times >
        stop_times_.size()) {
      return util::Status::Internal(
          util::Format("trip %u stop_time range out of bounds", t.id));
    }
    TimeOfDay prev = -1;
    for (const StopTime* st = trip_begin(t.id); st != trip_end(t.id); ++st) {
      if (st->stop >= stops_.size()) {
        return util::Status::InvalidArgument(
            util::Format("trip %u calls unknown stop %u", t.id, st->stop));
      }
      if (st->departure < st->arrival) {
        return util::Status::InvalidArgument(
            util::Format("trip %u departs before arriving at stop %u", t.id,
                         st->stop));
      }
      if (st->arrival < prev) {
        return util::Status::InvalidArgument(
            util::Format("trip %u time travels at stop %u", t.id, st->stop));
      }
      prev = st->departure;
    }
  }
  return util::Status::OK();
}

}  // namespace staq::gtfs
