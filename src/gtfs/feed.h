// In-memory GTFS-shaped timetable store F (paper §III-A).
//
// Mirrors the GTFS entities the pipeline consumes — stops, routes, trips,
// stop_times, service days — with the query indexes the router and the
// transit-hop-tree builder need:
//   * per-stop departures sorted by time (router boarding scans),
//   * per-(route, stop) departures (earliest-trip-of-route lookups),
//   * per-trip stop sequence (riding a trip forward / backward),
//   * trips passing through a stop within a TimeInterval (hop trees).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/latlon.h"
#include "gtfs/time.h"
#include "util/status.h"

namespace staq::gtfs {

using StopId = uint32_t;
using RouteId = uint32_t;
using TripId = uint32_t;

inline constexpr uint32_t kInvalidId = static_cast<uint32_t>(-1);

/// A transit stop, embedded in the city's local projection.
struct Stop {
  StopId id = 0;
  std::string name;
  geo::Point position;
};

/// A transit route (a named line; its trips share the stop pattern).
struct Route {
  RouteId id = 0;
  std::string name;
  double flat_fare = 0.0;  // monetary units per boarding, used by GAC
};

/// One scheduled vehicle run along a route.
struct Trip {
  TripId id = 0;
  RouteId route = 0;
  DayMask days = kEveryDay;
  uint32_t first_stop_time = 0;  // index range into Feed::stop_times()
  uint32_t num_stop_times = 0;
};

/// A timetable event: the trip calls at the stop.
struct StopTime {
  TripId trip = 0;
  StopId stop = 0;
  TimeOfDay arrival = 0;
  TimeOfDay departure = 0;
};

/// A departure event at a stop, used by the router's boarding scans.
struct Departure {
  TimeOfDay time = 0;
  TripId trip = 0;
  uint32_t stop_time_index = 0;  // index into Feed::stop_times()
};

/// Summary of service through a stop over an interval.
struct StopServiceStats {
  uint32_t num_departures = 0;
  uint32_t num_routes = 0;
  double mean_headway_s = 0.0;  // 0 when fewer than 2 departures
};

/// Immutable timetable with query indexes. Construct via FeedBuilder.
class Feed {
 public:
  size_t num_stops() const { return stops_.size(); }
  size_t num_routes() const { return routes_.size(); }
  size_t num_trips() const { return trips_.size(); }
  size_t num_stop_times() const { return stop_times_.size(); }

  const Stop& stop(StopId s) const { return stops_[s]; }
  const Route& route(RouteId r) const { return routes_[r]; }
  const Trip& trip(TripId t) const { return trips_[t]; }
  const std::vector<Stop>& stops() const { return stops_; }
  const std::vector<Route>& routes() const { return routes_; }
  const std::vector<Trip>& trips() const { return trips_; }
  const std::vector<StopTime>& stop_times() const { return stop_times_; }

  /// Stop-time range of a trip, ordered by stop sequence.
  const StopTime* trip_begin(TripId t) const {
    return stop_times_.data() + trips_[t].first_stop_time;
  }
  const StopTime* trip_end(TripId t) const {
    return trip_begin(t) + trips_[t].num_stop_times;
  }

  /// All departures from `s` sorted by time (all service days mixed; filter
  /// with Trip::days).
  const std::vector<Departure>& departures(StopId s) const {
    return stop_departures_[s];
  }

  /// Departures from `s` on `day` within [from, to), in time order.
  std::vector<Departure> DeparturesInWindow(StopId s, Day day, TimeOfDay from,
                                            TimeOfDay to) const;

  /// The earliest departure from `s` on `day` at or after `earliest`,
  /// skipping trips whose final call is `s` (nothing to ride). Returns
  /// false when none exists.
  bool NextDeparture(StopId s, Day day, TimeOfDay earliest,
                     Departure* out) const;

  /// Routes with at least one departure from `s` on `day` in [from, to).
  std::vector<RouteId> RoutesThrough(StopId s, Day day, TimeOfDay from,
                                     TimeOfDay to) const;

  /// Departure count / distinct routes / mean headway at `s` over `v`.
  StopServiceStats ServiceStats(StopId s, const TimeInterval& v) const;

  /// Structural validation: ids in range, per-trip times non-decreasing,
  /// departures >= arrivals, at least two calls per trip.
  util::Status Validate() const;

  /// Reassembles a feed from its persisted entity tables (snapshot
  /// restore). Validates exactly like FeedBuilder::Build and rebuilds the
  /// per-stop departure index with the identical deterministic ordering,
  /// so a restored feed is bit-identical to the built one.
  static util::Result<Feed> FromParts(std::vector<Stop> stops,
                                      std::vector<Route> routes,
                                      std::vector<Trip> trips,
                                      std::vector<StopTime> stop_times);

 private:
  friend class FeedBuilder;

  /// (Re)builds stop_departures_ from stop_times_: per stop, sorted by
  /// (time, trip). Shared by FeedBuilder::Build and FromParts.
  void BuildDepartureIndex();

  std::vector<Stop> stops_;
  std::vector<Route> routes_;
  std::vector<Trip> trips_;
  std::vector<StopTime> stop_times_;              // grouped by trip, in sequence
  std::vector<std::vector<Departure>> stop_departures_;  // per stop, by time
};

}  // namespace staq::gtfs
