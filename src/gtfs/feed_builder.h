// Incremental construction of a Feed.
//
// Callers (the synthetic city generator, tests) add stops/routes/trips in
// any order; Build() assembles the immutable Feed with its indexes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gtfs/feed.h"

namespace staq::gtfs {

/// Builder for Feed. Not thread-safe. Build() may be called once.
class FeedBuilder {
 public:
  /// Adds a stop at `position`; returns its dense id.
  StopId AddStop(std::string name, const geo::Point& position);

  /// Adds a route; returns its dense id.
  RouteId AddRoute(std::string name, double flat_fare = 0.0);

  /// Starts a new trip on `route` running on `days`; subsequent AddCall()
  /// invocations append calls to this trip. Returns the trip id.
  TripId BeginTrip(RouteId route, DayMask days);

  /// Appends a call to the most recent trip. `arrival` <= `departure`.
  util::Status AddCall(StopId stop, TimeOfDay arrival, TimeOfDay departure);

  /// Convenience: call with zero dwell.
  util::Status AddCall(StopId stop, TimeOfDay time) {
    return AddCall(stop, time, time);
  }

  /// Validates and assembles the Feed. The builder is consumed.
  util::Result<Feed> Build();

 private:
  Feed feed_;
  bool built_ = false;
};

}  // namespace staq::gtfs
