#include "wal/record.h"

#include <cmath>

#include "util/strings.h"

namespace staq::wal {

const char* MutationTypeName(MutationType type) {
  switch (type) {
    case MutationType::kAddPoi:
      return "add_poi";
    case MutationType::kRemovePoi:
      return "remove_poi";
    case MutationType::kSetInterval:
      return "set_interval";
    case MutationType::kSuspendRoute:
      return "suspend_route";
    case MutationType::kCloseStop:
      return "close_stop";
    case MutationType::kScaleHeadway:
      return "scale_headway";
    case MutationType::kSetFare:
      return "set_fare";
    case MutationType::kScaleWalkSpeed:
      return "scale_walk_speed";
  }
  return "unknown";
}

namespace {

std::string TargetName(uint32_t target) {
  return target == kAllTargets ? std::string("all")
                               : util::Format("%u", target);
}

}  // namespace

MutationRecord MutationRecord::AddPoi(uint64_t sequence,
                                      synth::PoiCategory category,
                                      const geo::Point& position,
                                      uint32_t poi_id) {
  MutationRecord record;
  record.type = MutationType::kAddPoi;
  record.sequence = sequence;
  record.category = category;
  record.position = position;
  record.poi_id = poi_id;
  return record;
}

MutationRecord MutationRecord::RemovePoi(uint64_t sequence, uint32_t poi_id) {
  MutationRecord record;
  record.type = MutationType::kRemovePoi;
  record.sequence = sequence;
  record.poi_id = poi_id;
  return record;
}

MutationRecord MutationRecord::SetInterval(uint64_t sequence,
                                           const gtfs::TimeInterval& interval) {
  MutationRecord record;
  record.type = MutationType::kSetInterval;
  record.sequence = sequence;
  record.interval = interval;
  return record;
}

MutationRecord MutationRecord::SuspendRoute(uint64_t sequence,
                                            uint32_t route) {
  MutationRecord record;
  record.type = MutationType::kSuspendRoute;
  record.sequence = sequence;
  record.target = route;
  return record;
}

MutationRecord MutationRecord::CloseStop(uint64_t sequence, uint32_t stop) {
  MutationRecord record;
  record.type = MutationType::kCloseStop;
  record.sequence = sequence;
  record.target = stop;
  return record;
}

MutationRecord MutationRecord::ScaleHeadway(uint64_t sequence, uint32_t route,
                                            uint32_t factor) {
  MutationRecord record;
  record.type = MutationType::kScaleHeadway;
  record.sequence = sequence;
  record.target = route;
  record.factor = factor;
  return record;
}

MutationRecord MutationRecord::SetFare(uint64_t sequence, uint32_t route,
                                       double fare) {
  MutationRecord record;
  record.type = MutationType::kSetFare;
  record.sequence = sequence;
  record.target = route;
  record.value = fare;
  return record;
}

MutationRecord MutationRecord::ScaleWalkSpeed(uint64_t sequence,
                                              double factor) {
  MutationRecord record;
  record.type = MutationType::kScaleWalkSpeed;
  record.sequence = sequence;
  record.value = factor;
  return record;
}

std::string MutationRecord::ToString() const {
  switch (type) {
    case MutationType::kAddPoi:
      return util::Format("#%llu add_poi %s id=%u at (%.1f, %.1f)",
                          static_cast<unsigned long long>(sequence),
                          synth::PoiCategoryName(category), poi_id, position.x,
                          position.y);
    case MutationType::kRemovePoi:
      return util::Format("#%llu remove_poi id=%u",
                          static_cast<unsigned long long>(sequence), poi_id);
    case MutationType::kSetInterval:
      return util::Format("#%llu set_interval %s [%s, %s) day=%d",
                          static_cast<unsigned long long>(sequence),
                          interval.label.c_str(),
                          gtfs::FormatTime(interval.start).c_str(),
                          gtfs::FormatTime(interval.end).c_str(),
                          static_cast<int>(interval.day));
    case MutationType::kSuspendRoute:
      return util::Format("#%llu suspend_route route=%u",
                          static_cast<unsigned long long>(sequence), target);
    case MutationType::kCloseStop:
      return util::Format("#%llu close_stop stop=%u",
                          static_cast<unsigned long long>(sequence), target);
    case MutationType::kScaleHeadway:
      return util::Format("#%llu scale_headway route=%s factor=%u",
                          static_cast<unsigned long long>(sequence),
                          TargetName(target).c_str(), factor);
    case MutationType::kSetFare:
      return util::Format("#%llu set_fare route=%s fare=%.2f",
                          static_cast<unsigned long long>(sequence),
                          TargetName(target).c_str(), value);
    case MutationType::kScaleWalkSpeed:
      return util::Format("#%llu scale_walk_speed factor=%.3f",
                          static_cast<unsigned long long>(sequence), value);
  }
  return util::Format("#%llu unknown",
                      static_cast<unsigned long long>(sequence));
}

bool MutationRecord::operator==(const MutationRecord& other) const {
  if (type != other.type || sequence != other.sequence) return false;
  switch (type) {
    case MutationType::kAddPoi:
      return category == other.category && position == other.position &&
             poi_id == other.poi_id;
    case MutationType::kRemovePoi:
      return poi_id == other.poi_id;
    case MutationType::kSetInterval:
      return interval.start == other.interval.start &&
             interval.end == other.interval.end &&
             interval.day == other.interval.day &&
             interval.label == other.interval.label;
    case MutationType::kSuspendRoute:
    case MutationType::kCloseStop:
      return target == other.target;
    case MutationType::kScaleHeadway:
      return target == other.target && factor == other.factor;
    case MutationType::kSetFare:
      return target == other.target && value == other.value;
    case MutationType::kScaleWalkSpeed:
      return value == other.value;
  }
  return false;
}

void EncodeMutationRecord(const MutationRecord& record,
                          std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(record.type));
  store::PutVarint64(out, record.sequence);
  switch (record.type) {
    case MutationType::kAddPoi:
      out->push_back(static_cast<uint8_t>(record.category));
      // Raw IEEE bits: the replayed POI must land on the identical
      // coordinates or the edit-stable RNG streams diverge.
      store::PutFixed(out, record.position.x);
      store::PutFixed(out, record.position.y);
      store::PutVarint64(out, record.poi_id);
      break;
    case MutationType::kRemovePoi:
      store::PutVarint64(out, record.poi_id);
      break;
    case MutationType::kSetInterval:
      store::PutZigZag64(out, record.interval.start);
      store::PutZigZag64(out, record.interval.end);
      out->push_back(static_cast<uint8_t>(record.interval.day));
      store::PutLengthPrefixed(out, record.interval.label);
      break;
    case MutationType::kSuspendRoute:
    case MutationType::kCloseStop:
      store::PutVarint64(out, record.target);
      break;
    case MutationType::kScaleHeadway:
      store::PutVarint64(out, record.target);
      store::PutVarint64(out, record.factor);
      break;
    case MutationType::kSetFare:
      store::PutVarint64(out, record.target);
      // Raw IEEE bits: the replica's fare (and hence every GAC label) must
      // land on the identical double.
      store::PutFixed(out, record.value);
      break;
    case MutationType::kScaleWalkSpeed:
      store::PutFixed(out, record.value);
      break;
  }
}

bool DecodeMutationRecord(store::ByteReader* in, MutationRecord* out) {
  uint8_t type = 0;
  if (!in->ReadFixed(&type)) return false;
  if (type < static_cast<uint8_t>(MutationType::kAddPoi) ||
      type > static_cast<uint8_t>(MutationType::kScaleWalkSpeed)) {
    return false;
  }
  *out = MutationRecord();
  out->type = static_cast<MutationType>(type);
  if (!in->ReadVarint64(&out->sequence)) return false;
  switch (out->type) {
    case MutationType::kAddPoi: {
      uint8_t category = 0;
      if (!in->ReadFixed(&category)) return false;
      if (category >= synth::kNumPoiCategories) return false;
      out->category = static_cast<synth::PoiCategory>(category);
      uint64_t poi_id = 0;
      if (!in->ReadFixed(&out->position.x) ||
          !in->ReadFixed(&out->position.y) || !in->ReadVarint64(&poi_id) ||
          poi_id > std::numeric_limits<uint32_t>::max()) {
        return false;
      }
      out->poi_id = static_cast<uint32_t>(poi_id);
      return true;
    }
    case MutationType::kRemovePoi: {
      uint64_t poi_id = 0;
      if (!in->ReadVarint64(&poi_id) ||
          poi_id > std::numeric_limits<uint32_t>::max()) {
        return false;
      }
      out->poi_id = static_cast<uint32_t>(poi_id);
      return true;
    }
    case MutationType::kSetInterval: {
      int64_t start = 0, end = 0;
      uint8_t day = 0;
      if (!in->ReadZigZag64(&start) || !in->ReadZigZag64(&end) ||
          !in->ReadFixed(&day) || day > 6 ||
          start < std::numeric_limits<gtfs::TimeOfDay>::min() ||
          start > std::numeric_limits<gtfs::TimeOfDay>::max() ||
          end < std::numeric_limits<gtfs::TimeOfDay>::min() ||
          end > std::numeric_limits<gtfs::TimeOfDay>::max() ||
          !in->ReadLengthPrefixed(&out->interval.label)) {
        return false;
      }
      out->interval.start = static_cast<gtfs::TimeOfDay>(start);
      out->interval.end = static_cast<gtfs::TimeOfDay>(end);
      out->interval.day = static_cast<gtfs::Day>(day);
      return true;
    }
    case MutationType::kSuspendRoute:
    case MutationType::kCloseStop: {
      uint64_t target = 0;
      if (!in->ReadVarint64(&target) ||
          target > std::numeric_limits<uint32_t>::max()) {
        return false;
      }
      out->target = static_cast<uint32_t>(target);
      // kAllTargets would suspend/close everything at once — not a
      // supported mutation; a record carrying it is corrupt.
      return out->target != kAllTargets;
    }
    case MutationType::kScaleHeadway: {
      uint64_t target = 0, factor = 0;
      if (!in->ReadVarint64(&target) ||
          target > std::numeric_limits<uint32_t>::max() ||
          !in->ReadVarint64(&factor) || factor < 2 ||
          factor > std::numeric_limits<uint32_t>::max()) {
        return false;
      }
      out->target = static_cast<uint32_t>(target);
      out->factor = static_cast<uint32_t>(factor);
      return true;
    }
    case MutationType::kSetFare: {
      uint64_t target = 0;
      if (!in->ReadVarint64(&target) ||
          target > std::numeric_limits<uint32_t>::max() ||
          !in->ReadFixed(&out->value) || !(out->value >= 0.0) ||
          !std::isfinite(out->value)) {
        return false;
      }
      out->target = static_cast<uint32_t>(target);
      return true;
    }
    case MutationType::kScaleWalkSpeed: {
      // A non-positive or non-finite factor would zero out every walk leg;
      // reject it as corruption rather than replay it.
      return in->ReadFixed(&out->value) && out->value > 0.0 &&
             std::isfinite(out->value);
    }
  }
  return false;
}

}  // namespace staq::wal
