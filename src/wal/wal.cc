#include "wal/wal.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "store/coding.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/strings.h"

// fileno/fsync are POSIX, not ISO C; staq targets POSIX hosts (the store
// writer already relies on them).
#include <unistd.h>

namespace staq::wal {

namespace fs = std::filesystem;

namespace {

std::string SegmentName(uint64_t start_sequence) {
  return util::Format("wal-%020llu.log",
                      static_cast<unsigned long long>(start_sequence));
}

/// Guarded failpoint: evaluates `site` and degrades a FailPointError into
/// the kIoError a real syscall failure at that spot would produce.
util::Status HitFailPoint(const char* site) {
  try {
    STAQ_FAILPOINT(site);
  } catch (const std::exception& e) {
    return util::Status::IoError(std::string(site) + ": " + e.what());
  }
  return util::Status::OK();
}

/// Lists wal-*.log files in `dir`, sorted by name (== by start sequence,
/// thanks to the zero-padded naming).
util::Result<std::vector<std::string>> ListSegments(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return paths;  // absent dir = empty log
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && name.size() > 8 &&
        name.compare(name.size() - 4, 4, ".log") == 0) {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    return util::Status::IoError("cannot list WAL directory '" + dir +
                                 "': " + ec.message());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

/// Reads one segment's records into `contents`. `expect_sequence` is the
/// next record sequence the log-wide chain requires (0 = adopt the
/// segment's own start). `last_segment` selects torn-tail tolerance.
util::Status ReadSegment(const std::string& path, bool last_segment,
                         uint64_t* expect_sequence, WalContents* contents) {
  STAQ_RETURN_NOT_OK(HitFailPoint("wal.recover.read"));

  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return util::Status::IoError("cannot open WAL segment '" + path +
                                 "': " + std::strerror(errno));
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{file};

  WalSegmentInfo info;
  info.path = path;
  std::error_code ec;
  info.bytes = fs::file_size(path, ec);
  if (ec) {
    return util::Status::IoError("cannot stat WAL segment '" + path +
                                 "': " + ec.message());
  }

  auto torn = [&](uint64_t offset) {
    // A frame the crash cut short. Only tolerable at the very end of the
    // log: a durable successor (more bytes in this segment handled below,
    // or a later segment handled by the caller) proves acked history
    // preceded the damage.
    if (!last_segment) {
      return util::Status::DataLoss(
          "WAL segment '" + path +
          "' is corrupt mid-log (a later segment exists)");
    }
    contents->torn_tail = true;
    contents->torn_path = path;
    contents->torn_offset = offset;
    contents->segments.push_back(info);
    return util::Status::OK();
  };

  uint8_t header[kWalHeaderSize];
  size_t got = std::fread(header, 1, sizeof(header), file);
  if (got < sizeof(header)) {
    // Creation itself was cut short; there is nothing to keep.
    return torn(0);
  }
  store::ByteReader cursor(header, sizeof(header));
  uint64_t magic = 0, start_sequence = 0;
  uint32_t version = 0, flags = 0;
  (void)cursor.ReadFixed(&magic);
  (void)cursor.ReadFixed(&version);
  (void)cursor.ReadFixed(&flags);
  (void)cursor.ReadFixed(&start_sequence);
  if (magic != kWalMagic) {
    return util::Status::InvalidArgument("'" + path + "' is not a WAL segment");
  }
  if (version != kWalFormatVersion) {
    return util::Status::InvalidArgument(
        util::Format("WAL segment '%s' has unsupported version %u",
                     path.c_str(), version));
  }
  if (flags != 0) {
    return util::Status::InvalidArgument(
        "WAL segment '" + path + "' sets reserved flags");
  }
  if (start_sequence == 0) {
    return util::Status::InvalidArgument(
        "WAL segment '" + path + "' declares sequence 0 (sequences start at 1)");
  }
  if (*expect_sequence != 0 && start_sequence != *expect_sequence) {
    return util::Status::DataLoss(util::Format(
        "WAL sequence gap: segment '%s' starts at %llu, expected %llu",
        path.c_str(), static_cast<unsigned long long>(start_sequence),
        static_cast<unsigned long long>(*expect_sequence)));
  }
  info.start_sequence = start_sequence;
  uint64_t expected = *expect_sequence != 0 ? *expect_sequence : start_sequence;

  uint64_t offset = kWalHeaderSize;
  std::vector<uint8_t> payload;
  for (;;) {
    uint8_t frame[kWalFrameSize];
    got = std::fread(frame, 1, sizeof(frame), file);
    if (got == 0) break;  // clean end of segment
    if (got < sizeof(frame)) return torn(offset);
    store::ByteReader frame_cursor(frame, sizeof(frame));
    uint32_t payload_size = 0;
    uint64_t digest = 0;
    (void)frame_cursor.ReadFixed(&payload_size);
    (void)frame_cursor.ReadFixed(&digest);
    if (payload_size == 0 || payload_size > kMaxRecordPayload) {
      // Garbage length: indistinguishable from a torn frame header.
      return torn(offset);
    }
    payload.resize(payload_size);
    got = std::fread(payload.data(), 1, payload_size, file);
    if (got < payload_size) return torn(offset);
    if (util::XxHash64(payload.data(), payload.size()) != digest) {
      return torn(offset);
    }
    // The checksum passed, so these are the bytes the writer framed; a
    // record that still fails to decode (or chains out of sequence) is not
    // crash debris but a format violation or lost history.
    MutationRecord record;
    store::ByteReader payload_cursor(payload.data(), payload.size());
    if (!DecodeMutationRecord(&payload_cursor, &record) ||
        !payload_cursor.exhausted()) {
      return util::Status::InvalidArgument(util::Format(
          "WAL segment '%s' holds an undecodable record at offset %llu",
          path.c_str(), static_cast<unsigned long long>(offset)));
    }
    if (record.sequence != expected) {
      return util::Status::DataLoss(util::Format(
          "WAL sequence gap in '%s': record #%llu where #%llu was expected",
          path.c_str(), static_cast<unsigned long long>(record.sequence),
          static_cast<unsigned long long>(expected)));
    }
    contents->records.push_back(std::move(record));
    ++expected;
    ++info.records;
    offset += kWalFrameSize + payload_size;
  }
  *expect_sequence = expected;
  contents->segments.push_back(info);
  return util::Status::OK();
}

}  // namespace

util::Result<WalContents> ReadLog(const std::string& dir) {
  auto segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();
  WalContents contents;
  uint64_t expect_sequence = 0;
  for (size_t i = 0; i < segments.value().size(); ++i) {
    const bool last = i + 1 == segments.value().size();
    STAQ_RETURN_NOT_OK(
        ReadSegment(segments.value()[i], last, &expect_sequence, &contents));
    if (contents.torn_tail) break;  // valid prefix ends here by definition
  }
  return contents;
}

util::Status VerifyLog(const std::string& dir) {
  auto contents = ReadLog(dir);
  if (!contents.ok()) return contents.status();
  if (contents.value().torn_tail) {
    return util::Status::DataLoss(util::Format(
        "torn tail in '%s' at offset %llu (Open() would truncate it)",
        contents.value().torn_path.c_str(),
        static_cast<unsigned long long>(contents.value().torn_offset)));
  }
  return util::Status::OK();
}

MutationWal::MutationWal(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {}

MutationWal::~MutationWal() { CloseSegment(); }

util::Result<std::unique_ptr<MutationWal>> MutationWal::Open(
    const std::string& dir, WalOptions options) {
  STAQ_RETURN_NOT_OK(HitFailPoint("wal.open"));
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create WAL directory '" + dir +
                                 "': " + ec.message());
  }
  auto contents = ReadLog(dir);
  if (!contents.ok()) return contents.status();
  const WalContents& log = contents.value();

  std::unique_ptr<MutationWal> wal(new MutationWal(dir, options));
  // A tail torn inside the 24-byte header means the segment never parsed a
  // base sequence; its file is removed below rather than truncated.
  const bool headerless_tail = log.torn_tail && log.torn_offset < kWalHeaderSize;
  if (!log.records.empty()) {
    wal->last_sequence_ = log.records.back().sequence;
  } else if (!log.segments.empty() && !headerless_tail) {
    // Headered but still record-free segment: adopt its declared base.
    wal->last_sequence_ = log.segments.back().start_sequence - 1;
  }

  if (log.torn_tail) {
    // Truncate the crash debris so appends extend a clean prefix. A tail
    // torn inside the header leaves nothing worth keeping; drop the file
    // and let the next append recreate it.
    if (headerless_tail) {
      fs::remove(log.torn_path, ec);
    } else {
      fs::resize_file(log.torn_path, log.torn_offset, ec);
    }
    if (ec) {
      return util::Status::IoError("cannot repair torn WAL tail in '" +
                                   log.torn_path + "': " + ec.message());
    }
  }

  // Resume the last segment when it has room; otherwise the next append
  // starts a fresh one lazily (so an empty log never creates a segment
  // whose base sequence it would have to guess).
  if (!log.segments.empty() && !headerless_tail) {
    const std::string& path = log.segments.back().path;
    uint64_t size = fs::file_size(path, ec);
    if (ec) {
      return util::Status::IoError("cannot stat WAL segment '" + path +
                                   "': " + ec.message());
    }
    if (size < options.segment_bytes) {
      std::FILE* file = std::fopen(path.c_str(), "ab");
      if (file == nullptr) {
        return util::Status::IoError("cannot reopen WAL segment '" + path +
                                     "': " + std::strerror(errno));
      }
      wal->file_ = file;
      wal->segment_path_ = path;
      wal->segment_size_ = size;
    }
  }
  return wal;
}

util::Status MutationWal::OpenSegment(uint64_t start_sequence) {
  STAQ_RETURN_NOT_OK(HitFailPoint("wal.open"));
  CloseSegment();
  std::string path = dir_ + "/" + SegmentName(start_sequence);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return util::Status::IoError("cannot create WAL segment '" + path +
                                 "': " + std::strerror(errno));
  }
  file_ = file;
  segment_path_ = std::move(path);
  segment_size_ = 0;
  ++stats_.segments_created;

  std::vector<uint8_t> header;
  header.reserve(kWalHeaderSize);
  store::PutFixed(&header, kWalMagic);
  store::PutFixed(&header, kWalFormatVersion);
  store::PutFixed(&header, uint32_t{0});
  store::PutFixed(&header, start_sequence);
  return WriteAll(header.data(), header.size());
}

util::Status MutationWal::WriteAll(const void* data, size_t size) {
  util::Status injected = HitFailPoint("wal.append");
  if (!injected.ok()) {
    // Model a syscall that died mid-write: bytes of unknown extent may be
    // on disk, so this WAL may no longer append safely.
    broken_ = true;
    return injected;
  }
  if (std::fwrite(data, 1, size, file_) != size) {
    broken_ = true;
    return util::Status::IoError("WAL write to '" + segment_path_ +
                                 "' failed: " + std::strerror(errno));
  }
  segment_size_ += size;
  return util::Status::OK();
}

void MutationWal::CloseSegment() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

util::Status MutationWal::Append(const MutationRecord& record) {
  if (broken_) {
    return util::Status::FailedPrecondition(
        "WAL is read-only after a failed write; reopen to recover");
  }
  if (last_sequence_ != 0 || file_ != nullptr) {
    if (record.sequence != last_sequence_ + 1) {
      return util::Status::Aborted(util::Format(
          "out-of-order WAL append: record #%llu after #%llu",
          static_cast<unsigned long long>(record.sequence),
          static_cast<unsigned long long>(last_sequence_)));
    }
  } else if (record.sequence == 0) {
    return util::Status::FailedPrecondition(
        "WAL sequences start at 1 (0 is the empty-log sentinel)");
  }

  std::vector<uint8_t> payload;
  EncodeMutationRecord(record, &payload);
  STAQ_CHECK(payload.size() <= kMaxRecordPayload,
             "mutation record exceeds the WAL frame bound");

  if (file_ == nullptr || segment_size_ >= options_.segment_bytes) {
    STAQ_RETURN_NOT_OK(OpenSegment(record.sequence));
  }

  std::vector<uint8_t> frame;
  frame.reserve(kWalFrameSize + payload.size());
  store::PutFixed(&frame, static_cast<uint32_t>(payload.size()));
  store::PutFixed(&frame, util::XxHash64(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  STAQ_RETURN_NOT_OK(WriteAll(frame.data(), frame.size()));

  if (options_.fsync == WalOptions::Fsync::kEveryAppend) {
    STAQ_RETURN_NOT_OK(Sync());
  } else if (std::fflush(file_) != 0) {
    // Even unsynced appends must reach the OS so followers can tail them.
    broken_ = true;
    return util::Status::IoError("WAL flush failed: " +
                                 std::string(std::strerror(errno)));
  }

  last_sequence_ = record.sequence;
  ++stats_.appends;
  stats_.bytes_appended += frame.size();
  return util::Status::OK();
}

util::Status MutationWal::Sync() {
  if (file_ == nullptr) return util::Status::OK();
  util::Status injected = HitFailPoint("wal.fsync");
  if (!injected.ok()) {
    broken_ = true;  // fsync failure leaves durability unknown (fsyncgate)
    return injected;
  }
  if (std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    broken_ = true;
    return util::Status::IoError("WAL fsync of '" + segment_path_ +
                                 "' failed: " + std::strerror(errno));
  }
  ++stats_.syncs;
  return util::Status::OK();
}

util::Status WalFollower::Poll(std::vector<MutationRecord>* out) {
  auto contents = ReadLog(dir_);
  if (!contents.ok()) return contents.status();
  for (const MutationRecord& record : contents.value().records) {
    if (record.sequence >= next_sequence_) {
      out->push_back(record);
      next_sequence_ = record.sequence + 1;
    }
  }
  return util::Status::OK();
}

}  // namespace staq::wal
