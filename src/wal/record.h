// Mutation records — the replication unit of staq.
//
// Every scenario mutation an AqServer accepts (POI add/remove, interval
// switch) is describable as one small, self-contained record. Because the
// mutation semantics are bit-identical under replay (edit-stable TODAM,
// PRs 2-4), a replica that applies the same records in the same order *is*
// the primary: same epochs, same label states, same query answers. The
// record therefore carries everything replay needs and everything replay
// must *verify*:
//
//   * sequence — the primary's scenario sequence after applying (monotonic,
//     gap-free). Replay checks contiguity; a gap means log loss.
//   * poi_id (kAddPoi) — the stable id the primary assigned. Ids drive the
//     per-(zone, POI) RNG streams, so a replica that assigns a different
//     id has diverged; replay cross-checks and aborts rather than serve
//     silently different answers.
//
// Encoding reuses the snapshot store's codec conventions (store/coding.h):
// varints for ids/sequences, raw IEEE bits for coordinates (bit-exact),
// length-prefixed strings. Decoders are bounds-checked and validate enum
// ranges, so a corrupt payload degrades into a clean failure upstream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/latlon.h"
#include "gtfs/time.h"
#include "store/coding.h"
#include "synth/city_spec.h"

namespace staq::wal {

enum class MutationType : uint8_t {
  kAddPoi = 1,
  kRemovePoi = 2,
  kSetInterval = 3,
  // Disruption mutations (scenario subsystem). Values 4-8 extend the codec
  // in place: records of types 1-3 keep their exact byte layout, so WAL
  // segments written before the extension decode unchanged.
  kSuspendRoute = 4,
  kCloseStop = 5,
  kScaleHeadway = 6,
  kSetFare = 7,
  kScaleWalkSpeed = 8,
};

/// "Every route" sentinel for kScaleHeadway / kSetFare targets.
inline constexpr uint32_t kAllTargets = static_cast<uint32_t>(-1);

const char* MutationTypeName(MutationType type);

/// One logged scenario mutation. Only the fields of the record's type are
/// meaningful; the rest stay at their defaults (and are not encoded).
struct MutationRecord {
  MutationType type = MutationType::kAddPoi;
  /// Scenario sequence after applying this mutation: the primary's
  /// base sequence (snapshot source epoch at warm start, else 0) plus the
  /// local epoch the mutation installed.
  uint64_t sequence = 0;

  // kAddPoi
  synth::PoiCategory category = synth::PoiCategory::kSchool;
  geo::Point position;
  /// kAddPoi: id the primary assigned (replay must reproduce it).
  /// kRemovePoi: id to remove.
  uint32_t poi_id = 0;

  // kSetInterval
  gtfs::TimeInterval interval;

  // Disruption mutations. `target` is the route id (kSuspendRoute,
  // kScaleHeadway, kSetFare) or stop id (kCloseStop); kAllTargets means
  // "every route" where the mutation supports it. `value` carries the flat
  // fare (kSetFare) or the walk-speed factor (kScaleWalkSpeed) as raw IEEE
  // bits — replay must reproduce the identical doubles. `factor` is the
  // kScaleHeadway thinning divisor (keep every factor-th trip).
  uint32_t target = kAllTargets;
  double value = 0.0;
  uint32_t factor = 0;

  /// Factories mirroring the AqServer mutation API.
  static MutationRecord AddPoi(uint64_t sequence, synth::PoiCategory category,
                               const geo::Point& position, uint32_t poi_id);
  static MutationRecord RemovePoi(uint64_t sequence, uint32_t poi_id);
  static MutationRecord SetInterval(uint64_t sequence,
                                    const gtfs::TimeInterval& interval);
  static MutationRecord SuspendRoute(uint64_t sequence, uint32_t route);
  static MutationRecord CloseStop(uint64_t sequence, uint32_t stop);
  static MutationRecord ScaleHeadway(uint64_t sequence, uint32_t route,
                                     uint32_t factor);
  static MutationRecord SetFare(uint64_t sequence, uint32_t route, double fare);
  static MutationRecord ScaleWalkSpeed(uint64_t sequence, double factor);

  /// Human-readable one-liner for `staq_cli wal inspect`.
  std::string ToString() const;

  bool operator==(const MutationRecord& other) const;
};

/// Appends the record's canonical byte encoding to `out`.
void EncodeMutationRecord(const MutationRecord& record,
                          std::vector<uint8_t>* out);

/// Decodes one record. Returns false on truncation, an unknown type, or an
/// out-of-range enum value — never reads past the cursor's end.
bool DecodeMutationRecord(store::ByteReader* in, MutationRecord* out);

}  // namespace staq::wal
