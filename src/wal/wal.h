// Durable mutation WAL — append-only, checksummed, replayable.
//
// A MutationWal is a directory of numbered segment files:
//
//   <dir>/wal-<start_sequence, 20 digits>.log
//
//   segment  = header | record*
//   header   = magic "STAQWAL1" u64 | version u32 | flags u32 |
//              start_sequence u64                       (24 bytes)
//   record   = payload_size u32 | xxh64(payload) u64 | payload
//   payload  = one encoded MutationRecord (wal/record.h)
//
// Records are framed individually (the NuRaft file-log-store shape) rather
// than blocked like the snapshot store, because the unit of durability is
// one mutation: Append() writes a complete frame and — under the default
// fsync policy — syncs before returning, so an acknowledged mutation
// survives a crash.
//
// Recovery (Open / ReadLog) replays every segment in order, verifying
// per-record checksums and gap-free sequence numbers. A torn tail — a
// record the crash cut short at the end of the *last* segment — is normal
// and is truncated away on Open; corruption anywhere earlier (a bad record
// with durable successors, a sequence gap between segments) is kDataLoss:
// acknowledged history is missing and no automatic repair is safe.
//
// A MutationWal instance is not thread-safe; the serve layer serialises
// appends (mutations already serialise on the store's writer mutex).
// Concurrent *readers* (WalFollower, ReadLog) are safe against a live
// writer: they stop cleanly at the first incomplete frame and pick it up
// once it is durable, which is exactly how replicas tail the log.
//
// Failure sites (util/failpoint.h): "wal.open", "wal.append", "wal.fsync",
// "wal.recover.read".
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "wal/record.h"

namespace staq::wal {

/// Leading segment magic ("STAQWAL1" as little-endian u64).
inline constexpr uint64_t kWalMagic = 0x314C415751415453ull;
inline constexpr uint32_t kWalFormatVersion = 1;
/// magic + version + flags + start_sequence.
inline constexpr size_t kWalHeaderSize = 24;
/// payload_size + checksum.
inline constexpr size_t kWalFrameSize = 12;
/// Upper bound on one record's payload; anything larger in a frame header
/// is treated as corruption, not an allocation request.
inline constexpr uint32_t kMaxRecordPayload = 1 << 20;

struct WalOptions {
  /// Rotate to a new segment once the current one reaches this size
  /// (header + frames). Every segment holds at least one record.
  uint64_t segment_bytes = 4ull << 20;

  /// When to fsync. kEveryAppend is the durability contract replication
  /// advertises (an acked mutation survives a crash); kManual leaves
  /// syncing to explicit Sync() calls (bench foil, throwaway tests).
  enum class Fsync : uint8_t { kEveryAppend, kManual };
  Fsync fsync = Fsync::kEveryAppend;
};

struct WalStats {
  uint64_t appends = 0;
  uint64_t bytes_appended = 0;  // frames incl. headers, excl. segment headers
  uint64_t syncs = 0;
  uint64_t segments_created = 0;
};

/// One segment as recovery saw it (for `staq_cli wal inspect`).
struct WalSegmentInfo {
  std::string path;
  uint64_t start_sequence = 0;
  uint64_t records = 0;
  uint64_t bytes = 0;  // file size
};

/// Everything a full log read returns. `torn_tail` marks a final segment
/// whose last frame was cut short — `records` then holds the valid prefix
/// and `torn_offset` the byte offset recovery would truncate to.
struct WalContents {
  std::vector<MutationRecord> records;
  std::vector<WalSegmentInfo> segments;
  bool torn_tail = false;
  std::string torn_path;
  uint64_t torn_offset = 0;
};

/// Reads every record in `dir` in sequence order. Tolerates a torn tail
/// (reported, not repaired); returns kDataLoss for mid-log corruption or
/// sequence gaps, kInvalidArgument for files that are not WAL segments.
/// An absent or empty directory is an empty log, not an error.
util::Result<WalContents> ReadLog(const std::string& dir);

/// `staq_cli wal verify`: OK only for a fully clean log — every checksum
/// valid, sequences gap-free, no torn tail. A torn tail (recoverable by
/// Open) is reported as kDataLoss naming the segment and offset, so an
/// operator can tell "crash debris, Open will repair" from silent loss.
util::Status VerifyLog(const std::string& dir);

/// The append side. Open() recovers the directory (truncating a torn
/// tail), then appends continue from the recovered sequence.
class MutationWal {
 public:
  /// Creates `dir` if missing, recovers existing segments, truncates a
  /// torn tail, and positions for appending. Fails with the ReadLog
  /// taxonomy when recovery finds unrepairable corruption.
  static util::Result<std::unique_ptr<MutationWal>> Open(
      const std::string& dir, WalOptions options = WalOptions());

  ~MutationWal();

  MutationWal(const MutationWal&) = delete;
  MutationWal& operator=(const MutationWal&) = delete;

  /// Appends one record. `record.sequence` must be exactly
  /// last_sequence() + 1 (kAborted otherwise — the append is refused to
  /// keep the log gap-free) — except for the very first record of an empty
  /// log, whose sequence seeds the chain (a warm-started primary starts at
  /// its snapshot's sequence + 1).
  ///
  /// A write error leaves bytes of unknown extent on disk, so the WAL
  /// turns read-only (`broken()`): further appends fail with
  /// kFailedPrecondition and the caller must reopen — recovery truncates
  /// the debris. The failed record was never acknowledged, so dropping it
  /// is correct.
  util::Status Append(const MutationRecord& record);

  /// Flushes and fsyncs the current segment (no-op on an empty log).
  util::Status Sync();

  /// Sequence of the last durable append; 0 for an empty log (or the
  /// seeded base - 1 after recovering a log whose first segment starts
  /// above 1).
  uint64_t last_sequence() const { return last_sequence_; }

  bool broken() const { return broken_; }
  const std::string& dir() const { return dir_; }
  WalStats stats() const { return stats_; }

 private:
  MutationWal(std::string dir, WalOptions options);

  util::Status OpenSegment(uint64_t start_sequence);
  util::Status WriteAll(const void* data, size_t size);
  void CloseSegment();

  std::string dir_;
  WalOptions options_;
  std::FILE* file_ = nullptr;  // current segment, opened for appending
  std::string segment_path_;
  uint64_t segment_size_ = 0;  // bytes in the current segment (incl. header)
  uint64_t last_sequence_ = 0;
  bool broken_ = false;
  WalStats stats_;
};

/// Tailing reader: a replica polls the log for records past the ones it
/// has applied. Each Poll() re-reads the directory and returns the records
/// with sequence > the follower's cursor, in order — a live writer's
/// half-written frame is simply not there yet. Mutation logs are small
/// (mutations are rare next to queries), so the re-read is cheap and
/// rotation needs no special handling.
class WalFollower {
 public:
  WalFollower(std::string dir, uint64_t start_after_sequence)
      : dir_(std::move(dir)), next_sequence_(start_after_sequence + 1) {}

  /// Appends newly durable records to `out` and advances the cursor.
  /// Propagates ReadLog errors (kDataLoss never self-heals; the replica
  /// surfaces it instead of serving a gap).
  util::Status Poll(std::vector<MutationRecord>* out);

  /// The sequence the next returned record will carry.
  uint64_t next_sequence() const { return next_sequence_; }

 private:
  std::string dir_;
  uint64_t next_sequence_;
};

}  // namespace staq::wal
