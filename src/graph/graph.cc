#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace staq::graph {

NodeId Graph::AddNode(const geo::Point& position) {
  assert(!finalized_);
  positions_.push_back(position);
  return static_cast<NodeId>(positions_.size() - 1);
}

util::Status Graph::AddEdge(NodeId a, NodeId b, double length_m,
                            bool bidirectional) {
  if (finalized_) {
    return util::Status::FailedPrecondition("graph already finalized");
  }
  if (a >= positions_.size() || b >= positions_.size()) {
    return util::Status::InvalidArgument("edge references unknown node");
  }
  if (length_m < 0) {
    return util::Status::InvalidArgument("negative edge length");
  }
  pending_.push_back(PendingEdge{a, b, length_m});
  if (bidirectional) pending_.push_back(PendingEdge{b, a, length_m});
  return util::Status::OK();
}

void Graph::Finalize() {
  if (finalized_) return;
  offsets_.assign(positions_.size() + 1, 0);
  for (const auto& e : pending_) ++offsets_[e.tail + 1];
  for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  arcs_.resize(pending_.size());
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& e : pending_) {
    arcs_[cursor[e.tail]++] = Arc{e.head, e.length_m};
  }
  pending_.clear();
  pending_.shrink_to_fit();
  finalized_ = true;
}

util::Result<Graph> Graph::FromParts(std::vector<geo::Point> positions,
                                     std::vector<uint32_t> offsets,
                                     std::vector<Arc> arcs) {
  if (offsets.size() != positions.size() + 1 || offsets.front() != 0 ||
      offsets.back() != arcs.size()) {
    return util::Status::InvalidArgument("graph CSR offsets inconsistent");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return util::Status::InvalidArgument("graph CSR offsets not monotone");
    }
  }
  for (const Arc& arc : arcs) {
    if (arc.head >= positions.size()) {
      return util::Status::InvalidArgument("graph arc head out of range");
    }
  }
  Graph graph;
  graph.positions_ = std::move(positions);
  graph.offsets_ = std::move(offsets);
  graph.arcs_ = std::move(arcs);
  graph.finalized_ = true;
  return graph;
}

size_t Graph::ConnectedComponents(std::vector<uint32_t>* labels) const {
  assert(finalized_);
  constexpr uint32_t kUnlabeled = static_cast<uint32_t>(-1);
  labels->assign(num_nodes(), kUnlabeled);
  uint32_t next_label = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < num_nodes(); ++start) {
    if ((*labels)[start] != kUnlabeled) continue;
    uint32_t label = next_label++;
    stack.push_back(start);
    (*labels)[start] = label;
    while (!stack.empty()) {
      NodeId n = stack.back();
      stack.pop_back();
      for (const Arc* a = arcs_begin(n); a != arcs_end(n); ++a) {
        if ((*labels)[a->head] == kUnlabeled) {
          (*labels)[a->head] = label;
          stack.push_back(a->head);
        }
      }
    }
  }
  return next_label;
}

}  // namespace staq::graph
