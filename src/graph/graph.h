// Road-network graph G(N, E) (paper §III-A).
//
// Nodes are embedded in the local projected plane; edges carry a length in
// metres. Walking times are derived by dividing by a walking speed, which
// keeps the graph reusable across walk-speed settings.
//
// The graph is built incrementally (AddNode / AddEdge) and then finalised
// into a CSR adjacency layout for cache-friendly traversal.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/latlon.h"
#include "util/status.h"

namespace staq::graph {

using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An outgoing arc in the finalised adjacency.
struct Arc {
  NodeId head = 0;          // target node
  double length_m = 0.0;    // edge length in metres
};

/// Mutable-then-finalised CSR graph.
class Graph {
 public:
  /// Adds a node at `position`; returns its id (dense, starting at 0).
  NodeId AddNode(const geo::Point& position);

  /// Adds an edge of `length_m` metres. Undirected edges insert both arcs.
  /// Must be called before Finalize(). Node ids must be valid.
  util::Status AddEdge(NodeId a, NodeId b, double length_m,
                       bool bidirectional = true);

  /// Freezes the edge set and builds the CSR layout. Idempotent.
  void Finalize();
  bool finalized() const { return finalized_; }

  size_t num_nodes() const { return positions_.size(); }
  size_t num_arcs() const { return arcs_.size(); }

  const geo::Point& position(NodeId n) const { return positions_[n]; }
  const std::vector<geo::Point>& positions() const { return positions_; }

  /// Outgoing arcs of `n` as a contiguous span. Requires finalized().
  const Arc* arcs_begin(NodeId n) const { return arcs_.data() + offsets_[n]; }
  const Arc* arcs_end(NodeId n) const { return arcs_.data() + offsets_[n + 1]; }

  /// Out-degree of `n`. Requires finalized().
  size_t degree(NodeId n) const { return offsets_[n + 1] - offsets_[n]; }

  /// Labels each node with its connected-component id (treating arcs as
  /// undirected); returns the number of components. Requires finalized().
  size_t ConnectedComponents(std::vector<uint32_t>* labels) const;

  /// The CSR row offsets (size num_nodes()+1). Requires finalized().
  /// Exposed for the snapshot store, which persists the finalised layout
  /// verbatim so a restored graph is bit-identical to the built one.
  const std::vector<uint32_t>& offsets() const { return offsets_; }
  const std::vector<Arc>& arcs() const { return arcs_; }

  /// Reassembles a finalised graph from its persisted CSR parts
  /// (snapshot restore). Validates structural consistency — offsets
  /// monotone and spanning `arcs`, arc heads in range — and returns
  /// InvalidArgument rather than constructing an unusable graph.
  static util::Result<Graph> FromParts(std::vector<geo::Point> positions,
                                       std::vector<uint32_t> offsets,
                                       std::vector<Arc> arcs);

 private:
  struct PendingEdge {
    NodeId tail, head;
    double length_m;
  };

  std::vector<geo::Point> positions_;
  std::vector<PendingEdge> pending_;
  std::vector<uint32_t> offsets_;  // size num_nodes()+1 after Finalize
  std::vector<Arc> arcs_;
  bool finalized_ = false;
};

}  // namespace staq::graph
