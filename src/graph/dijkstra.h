// Dijkstra shortest paths over the road graph.
//
// Three variants cover the library's needs:
//  * full single-source (walk-time tables, SPQ labeling),
//  * cost-bounded single-source (walking isochrones, paper §IV-A),
//  * single-target with early exit (point-to-point SPQs).
//
// Costs are metres here; callers convert to seconds via a walking speed.
#pragma once

#include <limits>
#include <vector>

#include "graph/graph.h"

namespace staq::graph {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// A node reached by a bounded search, with its distance from the source.
struct ReachedNode {
  NodeId node = 0;
  double distance = 0.0;
};

/// Full single-source shortest paths. Returns a distance per node
/// (kUnreachable where no path exists). Requires g.finalized().
std::vector<double> ShortestPaths(const Graph& g, NodeId source);

/// Single-source shortest paths limited to `max_distance`; returns only the
/// nodes whose distance is <= max_distance, in non-decreasing distance
/// order (the source itself is included at distance 0).
std::vector<ReachedNode> BoundedShortestPaths(const Graph& g, NodeId source,
                                              double max_distance);

/// Point-to-point distance with early termination when `target` is settled.
/// Returns kUnreachable when no path exists.
double ShortestPathDistance(const Graph& g, NodeId source, NodeId target);

/// Multi-source variant: each source starts with the given initial distance
/// (non-negative). Used for stop-to-stop walk tables where several graph
/// nodes approximate one stop. Returns a distance per node.
std::vector<double> MultiSourceShortestPaths(
    const Graph& g, const std::vector<ReachedNode>& sources);

}  // namespace staq::graph
