#include "graph/dijkstra.h"

#include <cassert>
#include <queue>

namespace staq::graph {

namespace {

struct QueueEntry {
  double distance;
  NodeId node;
  bool operator>(const QueueEntry& o) const { return distance > o.distance; }
};

using MinQueue =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

}  // namespace

std::vector<double> ShortestPaths(const Graph& g, NodeId source) {
  assert(g.finalized() && source < g.num_nodes());
  std::vector<double> dist(g.num_nodes(), kUnreachable);
  MinQueue queue;
  dist[source] = 0.0;
  queue.push({0.0, source});
  while (!queue.empty()) {
    auto [d, n] = queue.top();
    queue.pop();
    if (d > dist[n]) continue;  // stale entry
    for (const Arc* a = g.arcs_begin(n); a != g.arcs_end(n); ++a) {
      double nd = d + a->length_m;
      if (nd < dist[a->head]) {
        dist[a->head] = nd;
        queue.push({nd, a->head});
      }
    }
  }
  return dist;
}

std::vector<ReachedNode> BoundedShortestPaths(const Graph& g, NodeId source,
                                              double max_distance) {
  assert(g.finalized() && source < g.num_nodes());
  std::vector<double> dist(g.num_nodes(), kUnreachable);
  std::vector<ReachedNode> settled;
  MinQueue queue;
  dist[source] = 0.0;
  queue.push({0.0, source});
  while (!queue.empty()) {
    auto [d, n] = queue.top();
    queue.pop();
    if (d > dist[n]) continue;
    settled.push_back(ReachedNode{n, d});
    for (const Arc* a = g.arcs_begin(n); a != g.arcs_end(n); ++a) {
      double nd = d + a->length_m;
      if (nd <= max_distance && nd < dist[a->head]) {
        dist[a->head] = nd;
        queue.push({nd, a->head});
      }
    }
  }
  return settled;
}

double ShortestPathDistance(const Graph& g, NodeId source, NodeId target) {
  assert(g.finalized() && source < g.num_nodes() && target < g.num_nodes());
  if (source == target) return 0.0;
  std::vector<double> dist(g.num_nodes(), kUnreachable);
  MinQueue queue;
  dist[source] = 0.0;
  queue.push({0.0, source});
  while (!queue.empty()) {
    auto [d, n] = queue.top();
    queue.pop();
    if (d > dist[n]) continue;
    if (n == target) return d;
    for (const Arc* a = g.arcs_begin(n); a != g.arcs_end(n); ++a) {
      double nd = d + a->length_m;
      if (nd < dist[a->head]) {
        dist[a->head] = nd;
        queue.push({nd, a->head});
      }
    }
  }
  return kUnreachable;
}

std::vector<double> MultiSourceShortestPaths(
    const Graph& g, const std::vector<ReachedNode>& sources) {
  assert(g.finalized());
  std::vector<double> dist(g.num_nodes(), kUnreachable);
  MinQueue queue;
  for (const auto& s : sources) {
    assert(s.node < g.num_nodes() && s.distance >= 0);
    if (s.distance < dist[s.node]) {
      dist[s.node] = s.distance;
      queue.push({s.distance, s.node});
    }
  }
  while (!queue.empty()) {
    auto [d, n] = queue.top();
    queue.pop();
    if (d > dist[n]) continue;
    for (const Arc* a = g.arcs_begin(n); a != g.arcs_end(n); ++a) {
      double nd = d + a->length_m;
      if (nd < dist[a->head]) {
        dist[a->head] = nd;
        queue.push({nd, a->head});
      }
    }
  }
  return dist;
}

}  // namespace staq::graph
