#include "synth/city_builder.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/kdtree.h"
#include "gtfs/feed_builder.h"
#include "util/rng.h"
#include "util/strings.h"

namespace staq::synth {

namespace {

using geo::Point;
using util::Rng;

constexpr double kPi = 3.14159265358979323846;

/// Builds zone lattice with jitter and demographics.
std::vector<Zone> BuildZones(const CitySpec& spec, Rng* rng,
                             const Point& centre) {
  std::vector<Zone> zones;
  zones.reserve(static_cast<size_t>(spec.num_zones()));

  // Vulnerability field: inverse-distance mix of a few deprived anchors.
  std::vector<Point> anchors;
  double w = spec.zones_x * spec.zone_spacing_m;
  double h = spec.zones_y * spec.zone_spacing_m;
  for (int a = 0; a < 3; ++a) {
    anchors.push_back(Point{rng->Uniform(0.15 * w, 0.85 * w),
                            rng->Uniform(0.15 * h, 0.85 * h)});
  }

  for (int y = 0; y < spec.zones_y; ++y) {
    for (int x = 0; x < spec.zones_x; ++x) {
      Zone z;
      z.id = static_cast<uint32_t>(zones.size());
      double jitter = 0.25 * spec.zone_spacing_m;
      z.centroid = Point{(x + 0.5) * spec.zone_spacing_m +
                             rng->Uniform(-jitter, jitter),
                         (y + 0.5) * spec.zone_spacing_m +
                             rng->Uniform(-jitter, jitter)};
      double r = geo::Distance(z.centroid, centre);
      double density = std::exp(-r / spec.centre_density_scale_m);
      double noise = std::exp(rng->Normal(0.0, 0.35));
      z.population = spec.base_zone_population * (0.35 + density) * noise;

      double vuln = 0.0;
      for (const Point& a : anchors) {
        double d = geo::Distance(z.centroid, a);
        vuln += std::exp(-d / (0.18 * std::min(w, h)));
      }
      vuln = vuln / static_cast<double>(anchors.size()) +
             rng->Uniform(-0.08, 0.08);
      z.vulnerability = std::clamp(vuln, 0.0, 1.0);
      zones.push_back(z);
    }
  }
  return zones;
}

/// Builds the road lattice: jittered grid at a finer pitch than zones, with
/// 4-neighbour edges plus probabilistic diagonals.
graph::Graph BuildRoad(const CitySpec& spec, Rng* rng) {
  graph::Graph g;
  int nx = spec.zones_x * spec.road_nodes_per_zone_axis;
  int ny = spec.zones_y * spec.road_nodes_per_zone_axis;
  double pitch = spec.zone_spacing_m /
                 static_cast<double>(spec.road_nodes_per_zone_axis);
  double jitter = 0.2 * pitch;

  std::vector<graph::NodeId> ids(static_cast<size_t>(nx) * ny);
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      Point p{(x + 0.5) * pitch + rng->Uniform(-jitter, jitter),
              (y + 0.5) * pitch + rng->Uniform(-jitter, jitter)};
      ids[static_cast<size_t>(y) * nx + x] = g.AddNode(p);
    }
  }
  auto node_at = [&](int x, int y) {
    return ids[static_cast<size_t>(y) * nx + x];
  };
  auto connect = [&](graph::NodeId a, graph::NodeId b) {
    double len = geo::Distance(g.position(a), g.position(b)) *
                 spec.road_detour_factor;
    (void)g.AddEdge(a, b, len);
  };
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      if (x + 1 < nx) connect(node_at(x, y), node_at(x + 1, y));
      if (y + 1 < ny) connect(node_at(x, y), node_at(x, y + 1));
      if (x + 1 < nx && y + 1 < ny &&
          rng->Bernoulli(spec.diagonal_edge_prob)) {
        connect(node_at(x, y), node_at(x + 1, y + 1));
      }
    }
  }
  g.Finalize();
  return g;
}

/// Accumulates stop positions with deduplication: stops of different routes
/// that fall within `merge_radius` share an id, creating interchanges.
class StopPool {
 public:
  explicit StopPool(double merge_radius) : merge_radius_(merge_radius) {}

  uint32_t Intern(const Point& p) {
    for (size_t i = 0; i < points_.size(); ++i) {
      if (geo::Distance(points_[i], p) <= merge_radius_) {
        return static_cast<uint32_t>(i);
      }
    }
    points_.push_back(p);
    return static_cast<uint32_t>(points_.size() - 1);
  }

  const std::vector<Point>& points() const { return points_; }

 private:
  double merge_radius_;
  std::vector<Point> points_;
};

/// Stop positions along a polyline at a fixed spacing.
std::vector<Point> StopsAlong(const std::vector<Point>& polyline,
                              double spacing, Rng* rng) {
  std::vector<Point> stops;
  if (polyline.size() < 2) return stops;
  double carried = 0.0;
  stops.push_back(polyline.front());
  for (size_t i = 0; i + 1 < polyline.size(); ++i) {
    Point a = polyline[i];
    Point b = polyline[i + 1];
    double seg = geo::Distance(a, b);
    if (seg <= 1e-9) continue;
    double along = spacing - carried;
    while (along < seg) {
      double f = along / seg;
      Point p{a.x + f * (b.x - a.x) + rng->Uniform(-20, 20),
              a.y + f * (b.y - a.y) + rng->Uniform(-20, 20)};
      stops.push_back(p);
      along += spacing;
    }
    carried = seg - (along - spacing);
  }
  return stops;
}

struct RouteGeometry {
  std::string name;
  std::vector<Point> stops;  // ordered along the route
};

std::vector<RouteGeometry> BuildRouteGeometries(const CitySpec& spec,
                                                const Point& centre, Rng* rng) {
  std::vector<RouteGeometry> routes;
  double w = spec.zones_x * spec.zone_spacing_m;
  double h = spec.zones_y * spec.zone_spacing_m;
  double radius = 0.48 * std::min(w, h);

  // Radial routes: straight through the centre at evenly-rotated angles.
  for (int k = 0; k < spec.num_radial_routes; ++k) {
    double theta = kPi * k / std::max(1, spec.num_radial_routes) +
                   rng->Uniform(-0.06, 0.06);
    Point a{centre.x - radius * std::cos(theta),
            centre.y - radius * std::sin(theta)};
    Point b{centre.x + radius * std::cos(theta),
            centre.y + radius * std::sin(theta)};
    RouteGeometry geom;
    geom.name = util::Format("radial-%d", k);
    geom.stops = StopsAlong({a, centre, b}, spec.stop_spacing_m, rng);
    routes.push_back(std::move(geom));
  }

  // Orbital routes: rings at increasing radii.
  for (int k = 0; k < spec.num_orbital_routes; ++k) {
    double r = radius * (k + 1) / (spec.num_orbital_routes + 1);
    std::vector<Point> ring;
    int segments = std::max(8, static_cast<int>(2 * kPi * r / 400.0));
    for (int s = 0; s <= segments; ++s) {
      double a = 2 * kPi * s / segments;
      ring.push_back(Point{centre.x + r * std::cos(a),
                           centre.y + r * std::sin(a)});
    }
    RouteGeometry geom;
    geom.name = util::Format("orbital-%d", k);
    geom.stops = StopsAlong(ring, spec.stop_spacing_m, rng);
    routes.push_back(std::move(geom));
  }

  // Crosstown routes: random chords that avoid the centre.
  for (int k = 0; k < spec.num_crosstown_routes; ++k) {
    Point a{rng->Uniform(0.05 * w, 0.95 * w), rng->Uniform(0.05 * h, 0.95 * h)};
    Point b{rng->Uniform(0.05 * w, 0.95 * w), rng->Uniform(0.05 * h, 0.95 * h)};
    if (geo::Distance(a, b) < 0.3 * std::min(w, h)) {
      b = Point{w - a.x, h - a.y};  // stretch short chords
    }
    RouteGeometry geom;
    geom.name = util::Format("crosstown-%d", k);
    geom.stops = StopsAlong({a, b}, spec.stop_spacing_m, rng);
    routes.push_back(std::move(geom));
  }

  // Drop degenerate geometries.
  routes.erase(std::remove_if(routes.begin(), routes.end(),
                              [](const RouteGeometry& r) {
                                return r.stops.size() < 2;
                              }),
               routes.end());
  return routes;
}

/// Whether a departure time falls in a commuter peak.
bool IsPeak(gtfs::TimeOfDay t) {
  return (t >= gtfs::MakeTime(7, 0) && t < gtfs::MakeTime(9, 30)) ||
         (t >= gtfs::MakeTime(16, 0) && t < gtfs::MakeTime(18, 30));
}

util::Result<gtfs::Feed> BuildFeed(const CitySpec& spec,
                                   const std::vector<RouteGeometry>& geoms,
                                   Rng* rng) {
  gtfs::FeedBuilder builder;
  StopPool pool(/*merge_radius=*/80.0);

  // Intern stops first so routes crossing each other share ids.
  std::vector<std::vector<uint32_t>> route_stop_ids(geoms.size());
  for (size_t r = 0; r < geoms.size(); ++r) {
    for (const Point& p : geoms[r].stops) {
      uint32_t id = pool.Intern(p);
      // Skip consecutive duplicates produced by merging.
      if (!route_stop_ids[r].empty() && route_stop_ids[r].back() == id) {
        continue;
      }
      route_stop_ids[r].push_back(id);
    }
  }
  for (size_t i = 0; i < pool.points().size(); ++i) {
    builder.AddStop(util::Format("stop-%zu", i), pool.points()[i]);
  }

  gtfs::TimeOfDay service_start = gtfs::MakeTime(spec.service_start_hour, 0);
  gtfs::TimeOfDay service_end = gtfs::MakeTime(spec.service_end_hour, 0);

  for (size_t r = 0; r < geoms.size(); ++r) {
    if (route_stop_ids[r].size() < 2) continue;
    double fare = spec.flat_fare * rng->Uniform(0.8, 1.2);
    gtfs::RouteId route = builder.AddRoute(geoms[r].name, fare);
    double headway_factor =
        rng->Uniform(1.0 - spec.route_headway_jitter,
                     1.0 + spec.route_headway_jitter);

    // Leg travel times along the stop sequence.
    std::vector<double> leg_s;
    const auto& ids = route_stop_ids[r];
    for (size_t i = 0; i + 1 < ids.size(); ++i) {
      double d = geo::Distance(pool.points()[ids[i]], pool.points()[ids[i + 1]]);
      leg_s.push_back(d / spec.bus_speed_mps + spec.dwell_s);
    }

    struct ServicePattern {
      gtfs::DayMask days;
      double headway_multiplier;
    };
    const ServicePattern patterns[] = {
        {gtfs::kWeekdays, 1.0},
        {gtfs::kWeekend, spec.weekend_headway_multiplier},
    };

    for (const ServicePattern& pattern : patterns) {
      for (int direction = 0; direction < 2; ++direction) {
        std::vector<uint32_t> order = ids;
        std::vector<double> legs = leg_s;
        if (direction == 1) {
          std::reverse(order.begin(), order.end());
          std::reverse(legs.begin(), legs.end());
        }
        double t = service_start +
                   rng->Uniform(0.0, spec.peak_headway_s * headway_factor);
        while (t < service_end) {
          gtfs::TimeOfDay dep = static_cast<gtfs::TimeOfDay>(std::lround(t));
          builder.BeginTrip(route, pattern.days);
          gtfs::TimeOfDay clock = dep;
          STAQ_RETURN_NOT_OK(builder.AddCall(order[0], clock));
          for (size_t i = 0; i + 1 < order.size(); ++i) {
            clock += static_cast<gtfs::TimeOfDay>(std::lround(legs[i]));
            STAQ_RETURN_NOT_OK(builder.AddCall(order[i + 1], clock));
          }
          double base = IsPeak(dep) ? spec.peak_headway_s
                                    : spec.offpeak_headway_s;
          t += base * headway_factor * pattern.headway_multiplier;
        }
      }
    }
  }
  return builder.Build();
}

/// Weighted zone sampling by population.
uint32_t SampleZoneByPopulation(const std::vector<Zone>& zones,
                                const std::vector<double>& cumulative,
                                Rng* rng) {
  double pick = rng->UniformDouble() * cumulative.back();
  auto it = std::upper_bound(cumulative.begin(), cumulative.end(), pick);
  size_t idx = static_cast<size_t>(it - cumulative.begin());
  return zones[std::min(idx, zones.size() - 1)].id;
}

std::vector<Poi> BuildPois(const CitySpec& spec, const std::vector<Zone>& zones,
                           const Point& centre, Rng* rng) {
  std::vector<Poi> pois;
  std::vector<double> cumulative;
  cumulative.reserve(zones.size());
  double acc = 0.0;
  for (const Zone& z : zones) {
    acc += z.population;
    cumulative.push_back(acc);
  }
  double w = spec.zones_x * spec.zone_spacing_m;
  double h = spec.zones_y * spec.zone_spacing_m;

  auto place_weighted = [&]() {
    uint32_t zid = SampleZoneByPopulation(zones, cumulative, rng);
    double jitter = 0.3 * spec.zone_spacing_m;
    return Point{zones[zid].centroid.x + rng->Uniform(-jitter, jitter),
                 zones[zid].centroid.y + rng->Uniform(-jitter, jitter)};
  };
  auto place_central = [&]() {
    return Point{centre.x + rng->Normal(0.0, 0.13 * w),
                 centre.y + rng->Normal(0.0, 0.13 * h)};
  };

  for (const PoiSpec& ps : spec.pois) {
    size_t start = pois.size();
    switch (ps.placement) {
      case PoiPlacement::kPopulationWeighted:
        for (int i = 0; i < ps.count; ++i) {
          pois.push_back(Poi{0, ps.category, place_weighted()});
        }
        break;
      case PoiPlacement::kCentral:
        for (int i = 0; i < ps.count; ++i) {
          pois.push_back(Poi{0, ps.category, place_central()});
        }
        break;
      case PoiPlacement::kMixed:
        for (int i = 0; i < ps.count; ++i) {
          pois.push_back(Poi{0, ps.category,
                             (i % 2 == 0) ? place_weighted() : place_central()});
        }
        break;
      case PoiPlacement::kDispersed: {
        // Greedy max-min over a random candidate pool.
        std::vector<Point> candidates;
        for (int c = 0; c < std::max(200, 10 * ps.count); ++c) {
          candidates.push_back(Point{rng->Uniform(0.1 * w, 0.9 * w),
                                     rng->Uniform(0.1 * h, 0.9 * h)});
        }
        std::vector<Point> chosen;
        chosen.push_back(place_weighted());  // first near people
        while (static_cast<int>(chosen.size()) < ps.count) {
          double best_score = -1.0;
          Point best = candidates[0];
          for (const Point& cand : candidates) {
            double nearest = std::numeric_limits<double>::infinity();
            for (const Point& c : chosen) {
              nearest = std::min(nearest, geo::Distance(cand, c));
            }
            if (nearest > best_score) {
              best_score = nearest;
              best = cand;
            }
          }
          chosen.push_back(best);
        }
        for (const Point& p : chosen) {
          pois.push_back(Poi{0, ps.category, p});
        }
        break;
      }
    }
    (void)start;
  }
  for (size_t i = 0; i < pois.size(); ++i) {
    pois[i].id = static_cast<uint32_t>(i);
  }
  return pois;
}

}  // namespace

std::vector<Poi> City::PoisOf(PoiCategory category) const {
  std::vector<Poi> out;
  for (const Poi& p : pois) {
    if (p.category == category) out.push_back(p);
  }
  return out;
}

double City::TotalPopulation() const {
  double total = 0.0;
  for (const Zone& z : zones) total += z.population;
  return total;
}

util::Result<City> BuildCity(const CitySpec& spec) {
  if (spec.zones_x < 2 || spec.zones_y < 2) {
    return util::Status::InvalidArgument("city needs at least a 2x2 lattice");
  }
  if (spec.zone_spacing_m <= 0 || spec.stop_spacing_m <= 0 ||
      spec.bus_speed_mps <= 0) {
    return util::Status::InvalidArgument("non-positive spacing or speed");
  }

  Rng rng(spec.seed);
  Rng zone_rng = rng.Fork(1);
  Rng road_rng = rng.Fork(2);
  Rng transit_rng = rng.Fork(3);
  Rng poi_rng = rng.Fork(4);

  City city;
  city.spec = spec;
  double w = spec.zones_x * spec.zone_spacing_m;
  double h = spec.zones_y * spec.zone_spacing_m;
  city.extent = geo::BBox{0, 0, w, h};
  Point centre = city.Centre();

  city.zones = BuildZones(spec, &zone_rng, centre);
  city.road = BuildRoad(spec, &road_rng);

  auto geoms = BuildRouteGeometries(spec, centre, &transit_rng);
  auto feed = BuildFeed(spec, geoms, &transit_rng);
  if (!feed.ok()) return feed.status();
  city.feed = std::move(feed).value();

  city.pois = BuildPois(spec, city.zones, centre, &poi_rng);

  // Nearest road node per zone.
  std::vector<geo::IndexedPoint> nodes;
  nodes.reserve(city.road.num_nodes());
  for (graph::NodeId n = 0; n < city.road.num_nodes(); ++n) {
    nodes.push_back(geo::IndexedPoint{city.road.position(n), n});
  }
  geo::KdTree tree(std::move(nodes));
  city.zone_node.reserve(city.zones.size());
  for (const Zone& z : city.zones) {
    city.zone_node.push_back(tree.Nearest(z.centroid).id);
  }
  return city;
}

}  // namespace staq::synth
