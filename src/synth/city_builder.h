// Synthetic city generation.
//
// Builds a complete, internally consistent city from a CitySpec:
//  * census zones on a jittered lattice with a radial population-density
//    profile plus a spatially correlated vulnerability score,
//  * a road/footpath graph on a finer jittered lattice,
//  * a bus network of radial / orbital / crosstown route families with
//    per-route headway factors, peak/off-peak/weekend service, shared stops
//    at crossings, and flat fares,
//  * POI sets sited per category (population-weighted, dispersed, mixed,
//    central).
//
// All randomness derives from CitySpec::seed, so a spec maps to exactly one
// city.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/latlon.h"
#include "graph/graph.h"
#include "gtfs/feed.h"
#include "synth/city_spec.h"
#include "util/status.h"

namespace staq::synth {

/// A census zone z_i: its centroid plus demographic attributes used by the
/// fairness analysis.
struct Zone {
  uint32_t id = 0;
  geo::Point centroid;
  double population = 0.0;
  double vulnerability = 0.0;  // [0,1]; 1 = most deprived
};

/// A point of interest p_j.
struct Poi {
  uint32_t id = 0;  // dense within the city across all categories
  PoiCategory category = PoiCategory::kSchool;
  geo::Point position;
};

/// A fully built synthetic city. Move-only (holds the road graph and feed).
struct City {
  CitySpec spec;
  std::vector<Zone> zones;
  graph::Graph road;
  std::vector<graph::NodeId> zone_node;  // nearest road node per zone
  gtfs::Feed feed;
  std::vector<Poi> pois;
  geo::BBox extent;

  geo::Point Centre() const {
    return geo::Point{(extent.min_x + extent.max_x) / 2,
                      (extent.min_y + extent.max_y) / 2};
  }

  /// POIs of one category, in id order.
  std::vector<Poi> PoisOf(PoiCategory category) const;

  /// Total resident population.
  double TotalPopulation() const;
};

/// Builds the city described by `spec`. Fails only on degenerate specs
/// (no zones, no POIs requested with zero counts, etc.).
util::Result<City> BuildCity(const CitySpec& spec);

}  // namespace staq::synth
