// Parameter specification for synthetic cities.
//
// Substitutes for the paper's real inputs (census-tract shapefiles, OSM
// road network, the TfWM GTFS feed, scraped POI locations). Two presets
// mirror the evaluation cities' structure:
//  * Brindale — Birmingham-shaped: ~3217 zones at full scale, dense and
//    extensive transit, large POI sets (874 schools, ...).
//  * Covely — Coventry-shaped: ~1014 zones, smaller POI sets, and a higher
//    share of walk-only trips (the property §V-B2 uses to explain the
//    ACSD-correlation gap).
//
// Both presets accept a linear `scale` on zone/POI counts so experiments
// can run at laptop scale while preserving relative structure. scale=1.0
// reproduces the paper's zone counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace staq::synth {

/// The four POI categories evaluated in the paper (§V-A).
enum class PoiCategory : uint8_t {
  kSchool = 0,
  kHospital,
  kVaxCenter,
  kJobCenter,
};

inline constexpr int kNumPoiCategories = 4;

/// Stable display name ("school", "hospital", ...).
const char* PoiCategoryName(PoiCategory c);

/// How POIs of a category are sited.
enum class PoiPlacement : uint8_t {
  kPopulationWeighted,  // near where people live (schools)
  kDispersed,           // spread out, max-min distance (hospitals)
  kMixed,               // half weighted, half dispersed (vax centres)
  kCentral,             // biased to the city centre (job centres)
};

/// Per-category POI configuration.
struct PoiSpec {
  PoiCategory category = PoiCategory::kSchool;
  int count = 0;
  PoiPlacement placement = PoiPlacement::kPopulationWeighted;
};

/// Full description of a synthetic city.
struct CitySpec {
  std::string name;
  uint64_t seed = 1;
  /// The linear count multiplier this spec was built with (1.0 = the
  /// paper's zone/POI counts). Gravity calibration uses it to keep the
  /// Table-I reduction shape invariant under scaling.
  double scale = 1.0;

  // --- zones -------------------------------------------------------------
  int zones_x = 20;            // zone lattice dimensions
  int zones_y = 20;
  double zone_spacing_m = 450; // lattice pitch; centroids are jittered
  double centre_density_scale_m = 4000;  // pop density e-folding radius

  // --- road / footpath graph ----------------------------------------------
  int road_nodes_per_zone_axis = 2;  // road lattice is this x finer
  double diagonal_edge_prob = 0.3;
  double road_detour_factor = 1.1;   // edge length over straight line

  // --- transit -------------------------------------------------------------
  int num_radial_routes = 10;
  int num_orbital_routes = 3;
  int num_crosstown_routes = 6;
  double stop_spacing_m = 420;
  double bus_speed_mps = 7.0;        // effective incl. acceleration
  double dwell_s = 15;
  double peak_headway_s = 600;       // base headway during peaks
  double offpeak_headway_s = 1200;
  double weekend_headway_multiplier = 2.0;
  double route_headway_jitter = 0.5; // per-route factor in [1-j, 1+j]
  double flat_fare = 2.0;            // currency units per boarding
  int service_start_hour = 5;
  int service_end_hour = 23;

  // --- POIs ------------------------------------------------------------------
  std::vector<PoiSpec> pois;

  // --- demographics ---------------------------------------------------------
  double base_zone_population = 320;

  /// Total zone count implied by the lattice.
  int num_zones() const { return zones_x * zones_y; }

  /// Birmingham-shaped preset; `scale` multiplies zone and POI counts.
  static CitySpec Brindale(double scale = 0.25, uint64_t seed = 42);
  /// Coventry-shaped preset.
  static CitySpec Covely(double scale = 0.25, uint64_t seed = 43);
};

}  // namespace staq::synth
