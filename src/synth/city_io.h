// City persistence.
//
// Saves and loads the non-timetable parts of a City as CSV files, so a
// study area can be assembled from real data (census-tract centroids and
// demographics, scraped POI locations, an exported road network) instead
// of the synthetic generator:
//
//   zones.csv   zone_id, x_m, y_m, population, vulnerability
//   pois.csv    poi_id, category, x_m, y_m
//   roads.csv   node records ("N", node_id, x_m, y_m) and edge records
//               ("E", tail, head, length_m)
//
// The timetable travels separately as GTFS (gtfs/gtfs_csv.h). LoadCity
// reassembles a routable City: the road graph is finalised and zone->road
// snapping recomputed.
#pragma once

#include <string>

#include "synth/city_builder.h"

namespace staq::synth {

/// Writes zones.csv, pois.csv and roads.csv into `directory` (created if
/// absent). The feed is NOT written — use gtfs::WriteFeedCsv.
util::Status SaveCityCsv(const City& city, const std::string& directory);

/// Loads a city saved by SaveCityCsv and attaches `feed` (moved in).
/// Zone/POI ids must be dense and ascending; validation failures return
/// InvalidArgument.
util::Result<City> LoadCityCsv(const std::string& directory,
                               gtfs::Feed feed);

}  // namespace staq::synth
