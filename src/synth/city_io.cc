#include "synth/city_io.h"

#include <filesystem>

#include "geo/kdtree.h"
#include "util/csv.h"
#include "util/strings.h"

namespace staq::synth {

namespace {

namespace fs = std::filesystem;

util::Result<double> ParseDouble(const std::string& text,
                                 const std::string& context) {
  char* end = nullptr;
  const std::string trimmed = util::Trim(text);
  double value = std::strtod(trimmed.c_str(), &end);
  if (trimmed.empty() || end != trimmed.c_str() + trimmed.size()) {
    return util::Status::InvalidArgument("bad number '" + text + "' in " +
                                         context);
  }
  return value;
}

util::Result<PoiCategory> ParseCategory(const std::string& name) {
  for (int c = 0; c < kNumPoiCategories; ++c) {
    PoiCategory category = static_cast<PoiCategory>(c);
    if (name == PoiCategoryName(category)) return category;
  }
  return util::Status::InvalidArgument("unknown POI category: " + name);
}

}  // namespace

util::Status SaveCityCsv(const City& city, const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return util::Status::IoError("cannot create " + directory + ": " +
                                 ec.message());
  }

  {
    util::CsvTable table({"zone_id", "x_m", "y_m", "population",
                          "vulnerability"});
    for (const Zone& z : city.zones) {
      STAQ_RETURN_NOT_OK(table.AddRow(
          {util::CsvTable::Num(static_cast<int64_t>(z.id)),
           util::CsvTable::Num(z.centroid.x, 3),
           util::CsvTable::Num(z.centroid.y, 3),
           util::CsvTable::Num(z.population, 3),
           util::CsvTable::Num(z.vulnerability, 6)}));
    }
    STAQ_RETURN_NOT_OK(table.WriteFile(directory + "/zones.csv"));
  }

  {
    util::CsvTable table({"poi_id", "category", "x_m", "y_m"});
    for (const Poi& p : city.pois) {
      STAQ_RETURN_NOT_OK(table.AddRow(
          {util::CsvTable::Num(static_cast<int64_t>(p.id)),
           PoiCategoryName(p.category), util::CsvTable::Num(p.position.x, 3),
           util::CsvTable::Num(p.position.y, 3)}));
    }
    STAQ_RETURN_NOT_OK(table.WriteFile(directory + "/pois.csv"));
  }

  {
    util::CsvTable table({"kind", "a", "b", "c"});
    for (graph::NodeId n = 0; n < city.road.num_nodes(); ++n) {
      STAQ_RETURN_NOT_OK(table.AddRow(
          {"N", util::CsvTable::Num(static_cast<int64_t>(n)),
           util::CsvTable::Num(city.road.position(n).x, 3),
           util::CsvTable::Num(city.road.position(n).y, 3)}));
    }
    // Each undirected edge appears as two arcs; write only tail < head
    // and re-add bidirectionally on load.
    for (graph::NodeId n = 0; n < city.road.num_nodes(); ++n) {
      for (const graph::Arc* arc = city.road.arcs_begin(n);
           arc != city.road.arcs_end(n); ++arc) {
        if (n < arc->head) {
          STAQ_RETURN_NOT_OK(table.AddRow(
              {"E", util::CsvTable::Num(static_cast<int64_t>(n)),
               util::CsvTable::Num(static_cast<int64_t>(arc->head)),
               util::CsvTable::Num(arc->length_m, 3)}));
        }
      }
    }
    STAQ_RETURN_NOT_OK(table.WriteFile(directory + "/roads.csv"));
  }
  return util::Status::OK();
}

util::Result<City> LoadCityCsv(const std::string& directory,
                               gtfs::Feed feed) {
  City city;
  city.feed = std::move(feed);

  // --- zones -----------------------------------------------------------
  {
    auto rows = util::ReadCsvFile(directory + "/zones.csv");
    if (!rows.ok()) return rows.status();
    if (rows.value().size() < 2) {
      return util::Status::InvalidArgument("zones.csv has no zones");
    }
    for (size_t r = 1; r < rows.value().size(); ++r) {
      const auto& row = rows.value()[r];
      if (row.size() < 5) {
        return util::Status::InvalidArgument("zones.csv row too short");
      }
      Zone z;
      auto id = ParseDouble(row[0], "zone_id");
      auto x = ParseDouble(row[1], "zone x");
      auto y = ParseDouble(row[2], "zone y");
      auto pop = ParseDouble(row[3], "population");
      auto vuln = ParseDouble(row[4], "vulnerability");
      for (const auto* v :
           {&id, &x, &y, &pop, &vuln}) {
        if (!v->ok()) return v->status();
      }
      z.id = static_cast<uint32_t>(id.value());
      if (z.id != city.zones.size()) {
        return util::Status::InvalidArgument(
            "zone ids must be dense and ascending");
      }
      z.centroid = {x.value(), y.value()};
      z.population = pop.value();
      z.vulnerability = vuln.value();
      city.zones.push_back(z);
    }
  }

  // --- POIs -------------------------------------------------------------
  {
    auto rows = util::ReadCsvFile(directory + "/pois.csv");
    if (!rows.ok()) return rows.status();
    for (size_t r = 1; r < rows.value().size(); ++r) {
      const auto& row = rows.value()[r];
      if (row.size() < 4) {
        return util::Status::InvalidArgument("pois.csv row too short");
      }
      Poi p;
      auto id = ParseDouble(row[0], "poi_id");
      auto category = ParseCategory(util::Trim(row[1]));
      auto x = ParseDouble(row[2], "poi x");
      auto y = ParseDouble(row[3], "poi y");
      if (!id.ok()) return id.status();
      if (!category.ok()) return category.status();
      if (!x.ok()) return x.status();
      if (!y.ok()) return y.status();
      p.id = static_cast<uint32_t>(id.value());
      if (p.id != city.pois.size()) {
        return util::Status::InvalidArgument(
            "poi ids must be dense and ascending");
      }
      p.category = category.value();
      p.position = {x.value(), y.value()};
      city.pois.push_back(p);
    }
  }

  // --- road graph ---------------------------------------------------------
  {
    auto rows = util::ReadCsvFile(directory + "/roads.csv");
    if (!rows.ok()) return rows.status();
    for (size_t r = 1; r < rows.value().size(); ++r) {
      const auto& row = rows.value()[r];
      if (row.size() < 4) {
        return util::Status::InvalidArgument("roads.csv row too short");
      }
      std::string kind = util::Trim(row[0]);
      auto a = ParseDouble(row[1], "roads a");
      auto b = ParseDouble(row[2], "roads b");
      auto c = ParseDouble(row[3], "roads c");
      if (!a.ok()) return a.status();
      if (!b.ok()) return b.status();
      if (!c.ok()) return c.status();
      if (kind == "N") {
        graph::NodeId id = city.road.AddNode({b.value(), c.value()});
        if (id != static_cast<graph::NodeId>(a.value())) {
          return util::Status::InvalidArgument(
              "road node ids must be dense and ascending");
        }
      } else if (kind == "E") {
        STAQ_RETURN_NOT_OK(city.road.AddEdge(
            static_cast<graph::NodeId>(a.value()),
            static_cast<graph::NodeId>(b.value()), c.value()));
      } else {
        return util::Status::InvalidArgument("unknown roads.csv kind " + kind);
      }
    }
    city.road.Finalize();
    if (city.road.num_nodes() == 0) {
      return util::Status::InvalidArgument("roads.csv has no nodes");
    }
  }

  // --- derived fields ---------------------------------------------------
  geo::BBox extent{city.zones[0].centroid.x, city.zones[0].centroid.y,
                   city.zones[0].centroid.x, city.zones[0].centroid.y};
  for (const Zone& z : city.zones) {
    extent.min_x = std::min(extent.min_x, z.centroid.x);
    extent.min_y = std::min(extent.min_y, z.centroid.y);
    extent.max_x = std::max(extent.max_x, z.centroid.x);
    extent.max_y = std::max(extent.max_y, z.centroid.y);
  }
  city.extent = extent;

  std::vector<geo::IndexedPoint> nodes;
  nodes.reserve(city.road.num_nodes());
  for (graph::NodeId n = 0; n < city.road.num_nodes(); ++n) {
    nodes.push_back(geo::IndexedPoint{city.road.position(n), n});
  }
  geo::KdTree tree(std::move(nodes));
  city.zone_node.reserve(city.zones.size());
  for (const Zone& z : city.zones) {
    city.zone_node.push_back(tree.Nearest(z.centroid).id);
  }

  // spec stays defaulted except the lattice dims, which downstream
  // consumers (Fig. 5 choropleth) treat as unknown for loaded cities.
  city.spec.name = "loaded";
  city.spec.zones_x = static_cast<int>(city.zones.size());
  city.spec.zones_y = 1;
  return city;
}

}  // namespace staq::synth
