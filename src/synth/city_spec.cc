#include "synth/city_spec.h"

#include <algorithm>
#include <cmath>

namespace staq::synth {

namespace {

/// Lattice dimensions whose product approximates `target` zones.
void LatticeDims(double target, int* x, int* y) {
  int side = static_cast<int>(std::lround(std::sqrt(target)));
  *x = std::max(side, 4);
  *y = std::max(side, 4);
}

int ScaledCount(int full_count, double scale) {
  // Small categories (a handful of hospitals / job centres) lose their
  // spatial structure if scaled all the way down, so they are floored at 4
  // (or the full count when the paper's city has fewer than that).
  int floor_count = std::min(full_count, 4);
  int scaled = static_cast<int>(std::lround(full_count * scale));
  return std::max(floor_count, scaled);
}

}  // namespace

const char* PoiCategoryName(PoiCategory c) {
  switch (c) {
    case PoiCategory::kSchool:
      return "school";
    case PoiCategory::kHospital:
      return "hospital";
    case PoiCategory::kVaxCenter:
      return "vax_center";
    case PoiCategory::kJobCenter:
      return "job_center";
  }
  return "unknown";
}

CitySpec CitySpec::Brindale(double scale, uint64_t seed) {
  CitySpec spec;
  spec.name = "brindale";
  spec.seed = seed;
  spec.scale = scale;
  LatticeDims(3217.0 * scale, &spec.zones_x, &spec.zones_y);
  spec.zone_spacing_m = 450;
  spec.centre_density_scale_m = 0.3 * spec.zones_x * spec.zone_spacing_m;

  // Transit network scales with the city's linear extent.
  double linear = std::sqrt(scale);
  spec.num_radial_routes = std::max(6, static_cast<int>(std::lround(18 * linear)));
  spec.num_orbital_routes = std::max(2, static_cast<int>(std::lround(5 * linear)));
  spec.num_crosstown_routes =
      std::max(3, static_cast<int>(std::lround(12 * linear)));
  spec.peak_headway_s = 420;
  spec.offpeak_headway_s = 840;
  spec.bus_speed_mps = 8.0;

  // Paper Table I POI counts for Birmingham. Job centres sit part-central,
  // part-where-people-live (DWP offices are spread across boroughs).
  spec.pois = {
      {PoiCategory::kSchool, ScaledCount(874, scale),
       PoiPlacement::kPopulationWeighted},
      {PoiCategory::kHospital, ScaledCount(56, scale), PoiPlacement::kDispersed},
      {PoiCategory::kVaxCenter, ScaledCount(82, scale), PoiPlacement::kMixed},
      {PoiCategory::kJobCenter, ScaledCount(20, scale), PoiPlacement::kMixed},
  };
  return spec;
}

CitySpec CitySpec::Covely(double scale, uint64_t seed) {
  CitySpec spec;
  spec.name = "covely";
  spec.seed = seed;
  spec.scale = scale;
  LatticeDims(1014.0 * scale, &spec.zones_x, &spec.zones_y);
  // Slightly tighter zone pitch: Coventry is more compact, which raises the
  // walk-only trip share the paper highlights (7.1% vs 4.3%).
  spec.zone_spacing_m = 400;
  spec.centre_density_scale_m = 0.35 * spec.zones_x * spec.zone_spacing_m;

  double linear = std::sqrt(scale);
  spec.num_radial_routes = std::max(4, static_cast<int>(std::lround(10 * linear)));
  spec.num_orbital_routes = std::max(1, static_cast<int>(std::lround(3 * linear)));
  spec.num_crosstown_routes =
      std::max(2, static_cast<int>(std::lround(6 * linear)));
  spec.peak_headway_s = 600;
  spec.offpeak_headway_s = 1200;
  spec.bus_speed_mps = 7.5;

  // Paper Table I POI counts for Coventry.
  spec.pois = {
      {PoiCategory::kSchool, ScaledCount(230, scale),
       PoiPlacement::kPopulationWeighted},
      {PoiCategory::kHospital, ScaledCount(6, scale), PoiPlacement::kDispersed},
      {PoiCategory::kVaxCenter, ScaledCount(22, scale), PoiPlacement::kMixed},
      {PoiCategory::kJobCenter, ScaledCount(2, scale), PoiPlacement::kCentral},
  };
  return spec;
}

}  // namespace staq::synth
