#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "util/failpoint.h"

namespace staq::net {

namespace {

util::Status Unavailable(const char* what) {
  return util::Status::Unavailable(std::string(what) + ": " +
                                   std::strerror(errno));
}

/// Evaluates a failpoint site and maps its throw onto the kUnavailable
/// path the real syscall failure at that spot would take.
util::Status HitFailPoint(const char* site) {
  try {
    STAQ_FAILPOINT(site);
  } catch (const std::exception& e) {
    return util::Status::Unavailable(std::string(site) + ": " + e.what());
  }
  return util::Status::OK();
}

timeval ToTimeval(double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  return tv;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status Socket::SetTimeout(double seconds) {
  timeval tv = ToTimeval(seconds);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Unavailable("setsockopt(timeout)");
  }
  return util::Status::OK();
}

util::Status Socket::SendAll(const void* data, size_t size) {
  STAQ_RETURN_NOT_OK(HitFailPoint("net.write"));
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that died mid-response must surface as EPIPE,
    // not kill the process with SIGPIPE.
    ssize_t n = ::send(fd_, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Unavailable("send");
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return util::Status::OK();
}

util::Status Socket::RecvAll(void* data, size_t size) {
  STAQ_RETURN_NOT_OK(HitFailPoint("net.read"));
  uint8_t* p = static_cast<uint8_t*>(data);
  while (size > 0) {
    ssize_t n = ::recv(fd_, p, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Unavailable("recv");
    }
    if (n == 0) {
      return util::Status::Unavailable("connection closed by peer");
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return util::Status::OK();
}

util::Status Socket::SendFrame(MsgType type, uint64_t request_id,
                               const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  EncodeFrame(type, request_id, payload, &frame);
  return SendAll(frame.data(), frame.size());
}

util::Result<Frame> Socket::RecvFrame() {
  uint8_t header[kFrameHeaderSize];
  STAQ_RETURN_NOT_OK(RecvAll(header, sizeof(header)));
  uint32_t body_len = 0;
  uint64_t checksum = 0;
  STAQ_RETURN_NOT_OK(ParseFrameHeader(header, &body_len, &checksum));
  std::vector<uint8_t> body(body_len);
  STAQ_RETURN_NOT_OK(RecvAll(body.data(), body.size()));
  return ParseFrameBody(body.data(), body.size(), checksum);
}

util::Result<Socket> Connect(const std::string& host, uint16_t port,
                             double timeout_s) {
  STAQ_RETURN_NOT_OK(HitFailPoint("net.connect"));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable("socket");
  Socket socket(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (timeout_s > 0) STAQ_RETURN_NOT_OK(socket.SetTimeout(timeout_s));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Unavailable("connect");
  }
  // Responses are small and written whole; never batch them behind Nagle.
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

util::Result<Listener> Listener::Bind(uint16_t port) {
  Listener listener;
  listener.listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener.listen_fd_ < 0) return Unavailable("socket");

  int one = 1;
  (void)::setsockopt(listener.listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listener.listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Unavailable("bind");
  }
  if (::listen(listener.listen_fd_, 64) != 0) return Unavailable("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listener.listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return Unavailable("getsockname");
  }
  listener.port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return Unavailable("pipe");
  listener.wake_read_fd_ = pipe_fds[0];
  listener.wake_write_fd_ = pipe_fds[1];
  return listener;
}

Listener::~Listener() {
  Shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

Listener::Listener(Listener&& other) noexcept
    : listen_fd_(std::exchange(other.listen_fd_, -1)),
      wake_read_fd_(std::exchange(other.wake_read_fd_, -1)),
      wake_write_fd_(std::exchange(other.wake_write_fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    this->~Listener();
    new (this) Listener(std::move(other));
  }
  return *this;
}

util::Result<Socket> Listener::Accept() {
  STAQ_RETURN_NOT_OK(HitFailPoint("net.accept"));
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_fd_, POLLIN, 0}};
    int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Unavailable("poll");
    }
    if (fds[1].revents != 0) {
      return util::Status::Cancelled("listener shut down");
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Unavailable("accept");
    }
    Socket socket(fd);
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return socket;
  }
}

void Listener::Shutdown() {
  if (wake_write_fd_ >= 0) {
    uint8_t byte = 1;
    // Best effort; a full pipe already guarantees the wakeup is pending.
    (void)!::write(wake_write_fd_, &byte, 1);
  }
}

}  // namespace staq::net
