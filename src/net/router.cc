#include "net/router.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/hash.h"

namespace staq::net {

namespace {

/// Transport failures and behind-the-floor replicas are worth trying
/// elsewhere; semantic failures (bad request, NotFound) are not.
bool Retryable(const util::Status& status) {
  return status.code() == util::StatusCode::kUnavailable;
}

}  // namespace

QueryRouter::QueryRouter(std::vector<std::vector<Backend>> shards,
                         Options options)
    : options_(options) {
  STAQ_CHECK(!shards.empty(), "router needs at least one shard");
  shards_.reserve(shards.size());
  for (auto& backends : shards) {
    STAQ_CHECK(!backends.empty(), "every shard needs at least one backend");
    std::vector<Slot> slots;
    slots.reserve(backends.size());
    for (auto& backend : backends) {
      Slot slot;
      slot.backend = std::move(backend);
      slots.push_back(std::move(slot));
    }
    shards_.push_back(std::move(slots));
  }
  next_replica_.assign(shards_.size(), 0);
  min_sequence_.assign(shards_.size(), 0);
}

size_t QueryRouter::ShardOf(const ShardKey& key, size_t num_shards) {
  STAQ_CHECK(num_shards > 0, "ShardOf over zero shards");
  const std::string canonical = key.Canonical();
  return static_cast<size_t>(
      util::XxHash64(canonical.data(), canonical.size()) % num_shards);
}

util::Result<AqClient*> QueryRouter::Acquire(size_t shard, size_t replica) {
  Slot& slot = shards_[shard][replica];
  if (!slot.client.connected()) {
    auto client = AqClient::Connect(slot.backend.host, slot.backend.port,
                                    options_.connect_timeout_s);
    if (!client.ok()) return client.status();
    slot.client = std::move(client).value();
    ++stats_.redials;
  }
  return &slot.client;
}

util::Result<QueryResultMsg> QueryRouter::Query(const ShardKey& key,
                                                const serve::AqRequest& request,
                                                uint64_t min_sequence) {
  ++stats_.queries;
  const size_t shard = ShardOf(key, shards_.size());
  const uint64_t floor = std::max(min_sequence, min_sequence_[shard]);
  const size_t num_backends = shards_[shard].size();
  const int attempts =
      std::min<int>(options_.max_attempts, static_cast<int>(num_backends));

  util::Status last =
      util::Status::Unavailable("no backend attempted (attempt budget 0)");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const size_t replica = next_replica_[shard] % num_backends;
    next_replica_[shard] = replica + 1;
    if (attempt > 0) ++stats_.failovers;

    auto client = Acquire(shard, replica);
    if (!client.ok()) {
      last = client.status();
      continue;
    }
    auto result = client.value()->Query(request, floor);
    if (result.ok()) return result;
    if (!Retryable(result.status())) return result.status();
    last = result.status();
  }
  return last;
}

util::Result<MutateResultMsg> QueryRouter::MutateOnPrimary(
    const ShardKey& key, const wal::MutationRecord& record) {
  ++stats_.mutations;
  const size_t shard = ShardOf(key, shards_.size());
  auto client = Acquire(shard, /*replica=*/0);
  if (!client.ok()) return client.status();

  util::Result<MutateResultMsg> result =
      util::Status::Internal("unreachable");
  switch (record.type) {
    case wal::MutationType::kAddPoi:
      result = client.value()->AddPoi(record.category, record.position);
      break;
    case wal::MutationType::kRemovePoi:
      result = client.value()->RemovePoi(record.poi_id);
      break;
    case wal::MutationType::kSetInterval:
      result = client.value()->SetInterval(record.interval);
      break;
    case wal::MutationType::kSuspendRoute:
      result = client.value()->SuspendRoute(record.target);
      break;
    case wal::MutationType::kCloseStop:
      result = client.value()->CloseStop(record.target);
      break;
    case wal::MutationType::kScaleHeadway:
      result = client.value()->ScaleHeadway(record.target, record.factor);
      break;
    case wal::MutationType::kSetFare:
      result = client.value()->SetFare(record.target, record.value);
      break;
    case wal::MutationType::kScaleWalkSpeed:
      result = client.value()->ScaleWalkSpeed(record.value);
      break;
  }
  if (result.ok()) {
    // Read-your-writes: reads through this router now require the write's
    // sequence, whichever replica answers them.
    min_sequence_[shard] = std::max(min_sequence_[shard],
                                    result.value().sequence);
  }
  return result;
}

util::Result<MutateResultMsg> QueryRouter::AddPoi(const ShardKey& key,
                                                  synth::PoiCategory category,
                                                  const geo::Point& position) {
  return MutateOnPrimary(key,
                         wal::MutationRecord::AddPoi(0, category, position, 0));
}

util::Result<MutateResultMsg> QueryRouter::RemovePoi(const ShardKey& key,
                                                     uint32_t poi_id) {
  return MutateOnPrimary(key, wal::MutationRecord::RemovePoi(0, poi_id));
}

util::Result<MutateResultMsg> QueryRouter::SetInterval(
    const ShardKey& key, const gtfs::TimeInterval& interval) {
  return MutateOnPrimary(key, wal::MutationRecord::SetInterval(0, interval));
}

util::Result<MutateResultMsg> QueryRouter::SuspendRoute(const ShardKey& key,
                                                        uint32_t route) {
  return MutateOnPrimary(key, wal::MutationRecord::SuspendRoute(0, route));
}

util::Result<MutateResultMsg> QueryRouter::CloseStop(const ShardKey& key,
                                                     uint32_t stop) {
  return MutateOnPrimary(key, wal::MutationRecord::CloseStop(0, stop));
}

util::Result<MutateResultMsg> QueryRouter::ScaleHeadway(const ShardKey& key,
                                                        uint32_t route,
                                                        uint32_t factor) {
  return MutateOnPrimary(key,
                         wal::MutationRecord::ScaleHeadway(0, route, factor));
}

util::Result<MutateResultMsg> QueryRouter::SetFare(const ShardKey& key,
                                                   uint32_t route,
                                                   double fare) {
  return MutateOnPrimary(key, wal::MutationRecord::SetFare(0, route, fare));
}

util::Result<MutateResultMsg> QueryRouter::ScaleWalkSpeed(const ShardKey& key,
                                                          double factor) {
  return MutateOnPrimary(key, wal::MutationRecord::ScaleWalkSpeed(0, factor));
}

}  // namespace staq::net
