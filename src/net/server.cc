#include "net/server.h"

#include <sys/socket.h>

#include <utility>

#include "util/logging.h"
#include "util/strings.h"

namespace staq::net {

AqTcpServer::AqTcpServer(serve::AqServer* server, Options options)
    : server_(server), options_(options) {}

AqTcpServer::~AqTcpServer() { Stop(); }

util::Status AqTcpServer::Start() {
  auto listener = Listener::Bind(options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return util::Status::OK();
}

void AqTcpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    // Unblock the handler's recv; the thread then exits on kUnavailable.
    if (conn->socket.valid()) ::shutdown(conn->socket.fd(), SHUT_RDWR);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

AqTcpServer::Stats AqTcpServer::stats() const {
  Stats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.frames = frames_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return stats;
}

void AqTcpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (accepted.status().code() == util::StatusCode::kCancelled) return;
      if (!running_.load(std::memory_order_acquire)) return;
      // Transient accept failure (fd exhaustion, injected fault): log and
      // keep accepting — one bad accept must not take the server down.
      util::LogWarning("accept failed: " + accepted.status().ToString());
      continue;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    Socket socket = std::move(accepted).value();
    if (options_.io_timeout_s > 0) {
      (void)socket.SetTimeout(options_.io_timeout_s);
    }
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    raw->socket = std::move(socket);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] {
      // The handler reads from raw->socket directly so Stop() can shut the
      // fd down underneath a blocked recv.
      Socket& sock = raw->socket;
      while (running_.load(std::memory_order_acquire)) {
        auto frame = sock.RecvFrame();
        if (!frame.ok()) {
          // kUnavailable: client went away (normal). Anything else is a
          // protocol violation worth counting.
          if (frame.status().code() != util::StatusCode::kUnavailable) {
            protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
        if (!ServeFrame(sock, frame.value())) break;
      }
      sock.Close();
    });
  }
}

util::Status AqTcpServer::SendError(Socket& socket, uint64_t request_id,
                                    const util::Status& status) {
  errors_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint8_t> payload;
  EncodeErrorMsg(status, &payload);
  return socket.SendFrame(MsgType::kError, request_id, payload);
}

bool AqTcpServer::ServeFrame(Socket& socket, const Frame& frame) {
  frames_.fetch_add(1, std::memory_order_relaxed);
  store::ByteReader in(frame.payload.data(), frame.payload.size());
  std::vector<uint8_t> payload;
  switch (frame.type) {
    case MsgType::kHello: {
      Hello hello;
      if (!DecodeHello(&in, &hello)) break;
      if (hello.protocol_version != kProtocolVersion) {
        (void)SendError(socket, frame.request_id,
                        util::Status::InvalidArgument(util::Format(
                            "unsupported protocol version %u (server speaks "
                            "%u)",
                            hello.protocol_version, kProtocolVersion)));
        return false;
      }
      HelloAck ack;
      ack.sequence = server_->sequence();
      EncodeHelloAck(ack, &payload);
      return socket.SendFrame(MsgType::kHelloAck, frame.request_id, payload)
          .ok();
    }
    case MsgType::kQuery: {
      QueryMsg msg;
      if (!DecodeQueryMsg(&in, &msg)) break;
      if (msg.min_sequence > server_->sequence()) {
        util::Status behind = util::Status::Unavailable(util::Format(
            "replica at sequence %llu, request requires %llu",
            static_cast<unsigned long long>(server_->sequence()),
            static_cast<unsigned long long>(msg.min_sequence)));
        return SendError(socket, frame.request_id, behind).ok();
      }
      serve::AqTicket ticket = server_->Submit(msg.request);
      const uint64_t admitted_epoch = ticket.epoch();
      auto result = ticket.Get();
      if (!result.ok()) {
        return SendError(socket, frame.request_id, result.status()).ok();
      }
      QueryResultMsg reply;
      reply.result = std::move(result).value();
      reply.sequence = admitted_epoch == serve::AqTicket::kNoEpoch
                           ? server_->sequence()
                           : server_->base_sequence() + admitted_epoch;
      EncodeQueryResultMsg(reply, &payload);
      return socket.SendFrame(MsgType::kQueryResult, frame.request_id, payload)
          .ok();
    }
    case MsgType::kMutate: {
      wal::MutationRecord record;
      if (!DecodeMutationRecord(&in, &record) || !in.exhausted()) break;
      if (!options_.allow_mutations) {
        return SendError(socket, frame.request_id,
                         util::Status::FailedPrecondition(
                             "read-only replica: mutations go to the "
                             "primary"))
            .ok();
      }
      util::Result<serve::ScenarioStore::MutationReport> report =
          util::Status::Internal("unreachable");
      switch (record.type) {
        case wal::MutationType::kAddPoi:
          report = server_->AddPoi(record.category, record.position);
          break;
        case wal::MutationType::kRemovePoi:
          report = server_->RemovePoi(record.poi_id);
          break;
        case wal::MutationType::kSetInterval:
          report = server_->SetInterval(record.interval);
          break;
        case wal::MutationType::kSuspendRoute:
          report = server_->SuspendRoute(record.target);
          break;
        case wal::MutationType::kCloseStop:
          report = server_->CloseStop(record.target);
          break;
        case wal::MutationType::kScaleHeadway:
          report = server_->ScaleHeadway(record.target, record.factor);
          break;
        case wal::MutationType::kSetFare:
          report = server_->SetFare(record.target, record.value);
          break;
        case wal::MutationType::kScaleWalkSpeed:
          report = server_->ScaleWalkSpeed(record.value);
          break;
      }
      if (!report.ok()) {
        return SendError(socket, frame.request_id, report.status()).ok();
      }
      MutateResultMsg reply;
      reply.report = report.value();
      reply.sequence = server_->base_sequence() + reply.report.epoch;
      EncodeMutateResultMsg(reply, &payload);
      return socket
          .SendFrame(MsgType::kMutateResult, frame.request_id, payload)
          .ok();
    }
    case MsgType::kInfo: {
      InfoResultMsg reply;
      reply.sequence = server_->sequence();
      reply.epoch = server_->epoch();
      EncodeInfoResultMsg(reply, &payload);
      return socket.SendFrame(MsgType::kInfoResult, frame.request_id, payload)
          .ok();
    }
    default:
      // Response types have no business arriving at a server.
      break;
  }
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  (void)SendError(socket, frame.request_id,
                  util::Status::InvalidArgument(
                      std::string("malformed ") + MsgTypeName(frame.type) +
                      " request"));
  return false;
}

}  // namespace staq::net
