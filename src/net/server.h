// AqTcpServer — the TCP front end of one AqServer.
//
// One accept thread plus one handler thread per connection (blocking I/O,
// see net/socket.h). Handlers speak the net/wire.h protocol: Hello is
// answered with HelloAck (version check), then Query / Mutate / Info
// requests run against the wrapped AqServer and answer with their result
// frame or an Error frame carrying the operation's util::Status verbatim —
// a remote caller sees exactly the status an in-process caller would.
//
// Roles: a primary serves mutations; a replica starts with
// `allow_mutations = false` and answers Mutate with kFailedPrecondition
// ("read-only replica") so a misrouted write can never fork history.
// Epoch-consistent reads: a Query carrying min_sequence > the server's
// current sequence() answers kUnavailable — the replica is behind, and the
// router retries a fresher backend instead of serving stale labels.
//
// Stop() is idempotent and joins everything: the listener wakes via its
// self-pipe, per-connection sockets are shut down, handler threads drain.
// A stopped server can NOT be restarted — construct a fresh one (the
// kill-and-recover e2e restarts a whole replica this way on purpose).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "serve/server.h"

namespace staq::net {

class AqTcpServer {
 public:
  struct Options {
    /// 127.0.0.1 port to listen on; 0 picks an ephemeral port (tests).
    uint16_t port = 0;
    /// false: answer every Mutate with kFailedPrecondition (replica role).
    bool allow_mutations = true;
    /// Per-connection I/O timeout, seconds (0 = unbounded).
    double io_timeout_s = 30.0;
  };

  struct Stats {
    uint64_t connections = 0;      // accepted
    uint64_t frames = 0;           // requests served (all types)
    uint64_t errors = 0;           // Error frames sent
    uint64_t protocol_errors = 0;  // connections dropped on garbage input
  };

  /// `server` must outlive this object. Call Start() to begin serving.
  AqTcpServer(serve::AqServer* server, Options options);
  ~AqTcpServer();

  AqTcpServer(const AqTcpServer&) = delete;
  AqTcpServer& operator=(const AqTcpServer&) = delete;

  /// Binds the port and spawns the accept loop. kUnavailable if the port
  /// cannot be bound.
  util::Status Start();

  /// Shuts the listener and every live connection down and joins all
  /// threads. Safe to call twice; called by the destructor.
  void Stop();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  Stats stats() const;

 private:
  /// One live connection's socket, shared with Stop() so shutdown can
  /// interrupt a blocked read.
  struct Conn {
    Socket socket;
    std::thread thread;
  };

  void AcceptLoop();
  void HandleConnection(Socket socket);
  /// Serves one decoded request frame; returns false when the connection
  /// should close (protocol violation).
  bool ServeFrame(Socket& socket, const Frame& frame);
  util::Status SendError(Socket& socket, uint64_t request_id,
                         const util::Status& status);

  serve::AqServer* server_;
  Options options_;
  Listener listener_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};

  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> frames_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace staq::net
