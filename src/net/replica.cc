#include "net/replica.h"

#include <chrono>
#include <utility>

#include "util/logging.h"

namespace staq::net {

util::Status ReplayLog(serve::AqServer* server, const std::string& wal_dir) {
  auto contents = wal::ReadLog(wal_dir);
  if (!contents.ok()) return contents.status();
  for (const wal::MutationRecord& record : contents.value().records) {
    if (record.sequence <= server->sequence()) continue;
    auto applied = server->ApplyMutation(record);
    if (!applied.ok()) return applied.status();
  }
  return util::Status::OK();
}

util::Result<std::unique_ptr<Replica>> Replica::Start(
    synth::City city, const gtfs::TimeInterval& interval, Options options) {
  if (options.snapshot_path.empty()) {
    return util::Status::InvalidArgument(
        "a replica needs a bootstrap snapshot");
  }

  std::unique_ptr<Replica> replica(new Replica());
  replica->options_ = options;

  serve::AqServer::Options serve_options = options.serve;
  serve_options.warm_start_path = options.snapshot_path;
  replica->server_ = std::make_unique<serve::AqServer>(
      std::move(city), interval, serve_options);
  if (!replica->server_->warm_started()) {
    // The AqServer fell back to a cold build: its history has no relation
    // to the primary's, and replaying the log into it would be nonsense.
    return util::Status::FailedPrecondition(
        "replica bootstrap snapshot '" + options.snapshot_path +
        "' did not load; refusing to serve an unrelated cold build");
  }

  STAQ_RETURN_NOT_OK(ReplayLog(replica->server_.get(), options.wal_dir));

  AqTcpServer::Options tcp_options = options.tcp;
  tcp_options.allow_mutations = false;
  replica->tcp_ =
      std::make_unique<AqTcpServer>(replica->server_.get(), tcp_options);
  STAQ_RETURN_NOT_OK(replica->tcp_->Start());

  replica->tail_thread_ = std::thread([raw = replica.get()] {
    raw->TailLoop();
  });
  return replica;
}

Replica::~Replica() { Stop(); }

void Replica::Stop() {
  stop_.store(true, std::memory_order_release);
  if (tail_thread_.joinable()) tail_thread_.join();
  if (tcp_ != nullptr) tcp_->Stop();
}

void Replica::TailLoop() {
  wal::WalFollower follower(options_.wal_dir, server_->sequence());
  std::vector<wal::MutationRecord> batch;
  while (!stop_.load(std::memory_order_acquire)) {
    batch.clear();
    util::Status polled = follower.Poll(&batch);
    if (!polled.ok()) {
      // An unreadable log never self-heals; keep serving the last
      // consistent state and let diverged()/sequence() show the stall.
      util::LogError("replica tail stopped: " + polled.ToString());
      diverged_.store(true, std::memory_order_release);
      return;
    }
    for (const wal::MutationRecord& record : batch) {
      if (stop_.load(std::memory_order_acquire)) return;
      auto applied = server_->ApplyMutation(record);
      if (!applied.ok()) {
        util::LogError("replica diverged at record #" +
                       std::to_string(record.sequence) + ": " +
                       applied.status().ToString());
        diverged_.store(true, std::memory_order_release);
        return;
      }
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.poll_interval_s));
  }
}

util::Status Replica::CatchUp(uint64_t target_sequence, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (server_->sequence() < target_sequence) {
    if (diverged_.load(std::memory_order_acquire)) {
      return util::Status::Aborted("replica diverged; it will never catch up");
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return util::Status::DeadlineExceeded(
          "replica still at sequence " + std::to_string(server_->sequence()) +
          ", waiting for " + std::to_string(target_sequence));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return util::Status::OK();
}

}  // namespace staq::net
