// Blocking POSIX sockets for the staq serving tier.
//
// The TCP front end follows the classic one-thread-per-connection shape
// (the ClickHouse TCPHandler model): a Listener accepts on a dedicated
// thread, every accepted Socket is handed to its own handler thread, and
// all I/O is plain blocking read/write with send/receive timeouts. staq
// serves a handful of analytical clients, not ten thousand idle ones, so
// the simplicity of blocking I/O beats an event loop here.
//
// Error mapping is the important contract: every transport-level failure —
// connect refused, peer reset, timeout, short read at EOF — returns
// kUnavailable, the one code the query router treats as "this backend is
// gone, try another". Protocol-level failures keep their own codes
// (kInvalidArgument for garbage frames, kDataLoss for checksum
// mismatches) because retrying those elsewhere is pointless.
//
// Failure sites (util/failpoint.h): "net.connect", "net.accept",
// "net.read", "net.write" — each degrades into the kUnavailable path the
// real syscall failure would take.
#pragma once

#include <cstdint>
#include <string>

#include "net/wire.h"
#include "util/status.h"

namespace staq::net {

/// Owning wrapper around one connected stream socket. Movable, not
/// copyable; closes on destruction. Read and write halves may be used from
/// two different threads, but each half from only one at a time.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Applies SO_RCVTIMEO/SO_SNDTIMEO so a dead peer cannot park a handler
  /// thread forever. 0 disables (blocking without bound).
  util::Status SetTimeout(double seconds);

  /// Writes the whole buffer (kUnavailable on any failure).
  util::Status SendAll(const void* data, size_t size);
  /// Reads exactly `size` bytes (kUnavailable on EOF or failure).
  util::Status RecvAll(void* data, size_t size);

  /// Frames `payload` as one wire message and writes it.
  util::Status SendFrame(MsgType type, uint64_t request_id,
                         const std::vector<uint8_t>& payload);
  /// Reads one complete frame: header, bounds check, body, checksum.
  util::Result<Frame> RecvFrame();

 private:
  int fd_ = -1;
};

/// Connects to host:port. `timeout_s` bounds the connect itself and is
/// then installed as the socket's I/O timeout.
util::Result<Socket> Connect(const std::string& host, uint16_t port,
                             double timeout_s = 5.0);

/// Listening socket with a self-pipe wakeup so Stop() can interrupt a
/// blocking Accept() deterministically (no polling, no signals).
class Listener {
 public:
  /// Binds and listens on 127.0.0.1:`port` with SO_REUSEADDR (a restarted
  /// replica rebinds its old port immediately). Port 0 picks an ephemeral
  /// port; read it back from port().
  static util::Result<Listener> Bind(uint16_t port);

  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  uint16_t port() const { return port_; }
  bool valid() const { return listen_fd_ >= 0; }

  /// Blocks until a connection arrives (returns the accepted socket), the
  /// listener is shut down (kCancelled), or accept fails (kUnavailable).
  util::Result<Socket> Accept();

  /// Wakes every blocked Accept() and makes all future ones return
  /// kCancelled. Idempotent; callable from any thread.
  void Shutdown();

 private:
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;   // self-pipe: Shutdown writes, Accept polls
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace staq::net
