// staq wire protocol — versioned, checksummed, length-prefixed frames.
//
// Every message travels as one frame:
//
//   frame  = magic "STAQ" u32 | body_len u32 | xxh64(body) u64 | body
//   body   = msg_type u8 | request_id varint | payload
//
// The 16-byte frame header is fixed-width so a reader can pull it with one
// blocking read, validate magic and length bounds *before* allocating, and
// then verify the body checksum before touching a single payload byte — a
// corrupted or misdirected stream degrades into a clean kDataLoss, never
// into parsing garbage. `request_id` is chosen by the client and echoed in
// the response so one connection can be debugged from a packet dump; the
// blocking client uses it as a monotonic counter.
//
// A conversation opens with Hello/HelloAck (protocol version exchange; the
// server rejects versions it does not speak) and then runs request ->
// response: Query, Mutate, and Info requests each answer with their result
// message or with Error. Error carries a util::Status by value — code
// enum + message — so a remote failure resurfaces in the caller exactly as
// the in-process call would have returned it (the util::Status error model
// *is* the wire error model). Transport-level failures (peer gone,
// truncated stream) map to kUnavailable, the router's signal to fail over.
//
// Payload encodings reuse the snapshot store codecs (store/coding.h):
// varints for ids and counts, raw IEEE bits for doubles — the bit-identity
// contract extends over the wire, which the distributed e2e test asserts
// byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/access_query.h"
#include "serve/request.h"
#include "serve/scenario.h"
#include "store/coding.h"
#include "util/status.h"
#include "wal/record.h"

namespace staq::net {

/// "STAQ" little-endian.
inline constexpr uint32_t kFrameMagic = 0x51415453;
inline constexpr uint32_t kProtocolVersion = 1;
/// magic + body_len + checksum.
inline constexpr size_t kFrameHeaderSize = 16;
/// Query results carry two doubles per zone; the largest cities stay far
/// below this. Anything bigger in a header is corruption, not a request.
inline constexpr uint32_t kMaxFrameBody = 64u << 20;

enum class MsgType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kQuery = 3,
  kQueryResult = 4,
  kMutate = 5,
  kMutateResult = 6,
  kInfo = 7,
  kInfoResult = 8,
  kError = 9,
};

const char* MsgTypeName(MsgType type);

/// One decoded frame body. `payload` is owned (copied out of the stream
/// buffer; frames are small next to the query work they trigger).
struct Frame {
  MsgType type = MsgType::kError;
  uint64_t request_id = 0;
  std::vector<uint8_t> payload;
};

/// Serialises a complete frame (header + body) ready for one write.
void EncodeFrame(MsgType type, uint64_t request_id,
                 const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* out);

/// Validates a frame header: magic, and body_len <= kMaxFrameBody.
/// kInvalidArgument means the peer is not speaking this protocol.
util::Status ParseFrameHeader(const uint8_t header[kFrameHeaderSize],
                              uint32_t* body_len, uint64_t* checksum);

/// Verifies `checksum` over the body bytes and decodes type + request_id.
/// kDataLoss on checksum mismatch, kInvalidArgument on an unknown type.
util::Result<Frame> ParseFrameBody(const uint8_t* body, size_t size,
                                   uint64_t checksum);

// --- handshake -------------------------------------------------------------

struct Hello {
  uint32_t protocol_version = kProtocolVersion;
};
struct HelloAck {
  uint32_t protocol_version = kProtocolVersion;
  /// The server's absolute scenario sequence at accept time, so a client
  /// knows immediately how fresh this backend is.
  uint64_t sequence = 0;
};

void EncodeHello(const Hello& hello, std::vector<uint8_t>* out);
bool DecodeHello(store::ByteReader* in, Hello* out);
void EncodeHelloAck(const HelloAck& ack, std::vector<uint8_t>* out);
bool DecodeHelloAck(store::ByteReader* in, HelloAck* out);

// --- query -----------------------------------------------------------------

/// kQuery payload: the request plus the epoch-consistency floor. A server
/// whose sequence() < min_sequence answers kUnavailable instead of serving
/// stale state — the client retries elsewhere or waits (read-your-writes
/// across replicas).
struct QueryMsg {
  serve::AqRequest request;
  uint64_t min_sequence = 0;
};
/// kQueryResult payload: the answer plus the sequence it was admitted at.
struct QueryResultMsg {
  core::AccessQueryResult result;
  uint64_t sequence = 0;
};

void EncodeQueryMsg(const QueryMsg& msg, std::vector<uint8_t>* out);
bool DecodeQueryMsg(store::ByteReader* in, QueryMsg* out);
void EncodeQueryResultMsg(const QueryResultMsg& msg, std::vector<uint8_t>* out);
bool DecodeQueryResultMsg(store::ByteReader* in, QueryResultMsg* out);

// --- mutation --------------------------------------------------------------

/// kMutate payload is a wal::MutationRecord with sequence 0 (the primary,
/// not the client, assigns history positions) and, for AddPoi, poi_id 0
/// (ditto). Reusing the WAL codec keeps "what a client asks" and "what the
/// log replays" the same bytes.
/// kMutateResult payload: the sequence the mutation installed plus the
/// server's cost report.
struct MutateResultMsg {
  uint64_t sequence = 0;
  serve::ScenarioStore::MutationReport report;
};

void EncodeMutateResultMsg(const MutateResultMsg& msg,
                           std::vector<uint8_t>* out);
bool DecodeMutateResultMsg(store::ByteReader* in, MutateResultMsg* out);

// --- info ------------------------------------------------------------------

/// kInfo has an empty payload; kInfoResult answers with the server's
/// replication position (router health probes, replica catch-up waits).
struct InfoResultMsg {
  uint64_t sequence = 0;
  uint64_t epoch = 0;
};

void EncodeInfoResultMsg(const InfoResultMsg& msg, std::vector<uint8_t>* out);
bool DecodeInfoResultMsg(store::ByteReader* in, InfoResultMsg* out);

// --- errors ----------------------------------------------------------------

/// kError payload: code u8 + message. DecodeErrorMsg reconstructs the
/// status; an unknown code byte (a newer peer) degrades to kInternal with
/// the message preserved rather than failing the decode.
void EncodeErrorMsg(const util::Status& status, std::vector<uint8_t>* out);
bool DecodeErrorMsg(store::ByteReader* in, util::Status* out);

}  // namespace staq::net
