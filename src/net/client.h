// AqClient — blocking client for one AqTcpServer connection.
//
// Connect() dials the backend, performs the Hello/HelloAck handshake
// (version check; the ack also reports the backend's sequence), and the
// client then issues synchronous request/response calls. Remote errors
// come back as the util::Status the server produced — calling through an
// AqClient is the same error surface as calling the AqServer directly,
// plus kUnavailable for transport failures.
//
// Not thread-safe: one connection, one outstanding request at a time
// (request_ids are a local monotonic counter and each response is matched
// against its request). The query router owns one client per backend and
// is itself per-thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/socket.h"
#include "net/wire.h"

namespace staq::net {

class AqClient {
 public:
  /// Dials host:port and shakes hands. kUnavailable when the backend is
  /// down, kInvalidArgument when it speaks a different protocol version.
  static util::Result<AqClient> Connect(const std::string& host, uint16_t port,
                                        double timeout_s = 30.0);

  AqClient() = default;
  AqClient(AqClient&&) = default;
  AqClient& operator=(AqClient&&) = default;

  bool connected() const { return socket_.valid(); }
  void Close() { socket_.Close(); }

  /// The backend's sequence reported in the handshake.
  uint64_t hello_sequence() const { return hello_sequence_; }

  /// Runs one access query. `min_sequence` > 0 demands the backend has
  /// applied at least that mutation (kUnavailable otherwise — retry a
  /// fresher backend).
  util::Result<QueryResultMsg> Query(const serve::AqRequest& request,
                                     uint64_t min_sequence = 0);

  /// Mutations. The backend assigns sequence and (for AddPoi) the POI id.
  util::Result<MutateResultMsg> AddPoi(synth::PoiCategory category,
                                       const geo::Point& position);
  util::Result<MutateResultMsg> RemovePoi(uint32_t poi_id);
  util::Result<MutateResultMsg> SetInterval(const gtfs::TimeInterval& interval);

  /// Timetable disruptions (scenario subsystem). Targets are resolved
  /// route/stop ids in the backend's feed; wal::kAllTargets selects every
  /// route where the mutation allows it.
  util::Result<MutateResultMsg> SuspendRoute(uint32_t route);
  util::Result<MutateResultMsg> CloseStop(uint32_t stop);
  util::Result<MutateResultMsg> ScaleHeadway(uint32_t route, uint32_t factor);
  util::Result<MutateResultMsg> SetFare(uint32_t route, double fare);
  util::Result<MutateResultMsg> ScaleWalkSpeed(double factor);

  /// Replication position probe.
  util::Result<InfoResultMsg> Info();

 private:
  /// Sends `payload` as `type` and reads the response frame, unwrapping
  /// kError payloads into their status and checking the echoed request id.
  util::Result<Frame> Call(MsgType type, const std::vector<uint8_t>& payload);

  util::Result<MutateResultMsg> Mutate(const wal::MutationRecord& record);

  Socket socket_;
  uint64_t next_request_id_ = 1;
  uint64_t hello_sequence_ = 0;
};

}  // namespace staq::net
