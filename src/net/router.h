// QueryRouter — client-side sharding and failover for the serving tier.
//
// A deployment runs N shards, each serving one slice of the (city,
// scenario) keyspace, and each shard runs one primary plus any number of
// read replicas. The router is a *client-side* library (the Cassandra /
// Vitess shape, not a proxy hop): it hashes the shard key, keeps one
// lazily-dialed connection per backend, and retries.
//
//   * Placement: shard = XxHash64(key.Canonical()) % num_shards — the same
//     hash the store and WAL checksum with, so placement is stable across
//     processes and runs.
//   * Reads fan over the shard's backends round-robin, failing over on
//     kUnavailable (backend down, or behind the router's min-sequence
//     floor) until the attempt budget runs out.
//   * Writes go only to replicas[0], the shard's primary — replicas are
//     read-only and refuse mutations, so a misconfigured router cannot
//     fork history. After a successful mutation the router raises its
//     per-shard min_sequence floor: subsequent reads through this router
//     see that write no matter which replica answers (read-your-writes).
//
// Not thread-safe: connections are serially reused. Give each client
// thread its own router — the bench and e2e do — rather than serialising
// every request through one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/client.h"

namespace staq::net {

/// One backend address (always 127.0.0.1 in tests/benches; any IPv4
/// literal works).
struct Backend {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// What a query is about: the city family and the named scenario whose
/// mutation history it addresses. Everything about one key lands on one
/// shard, so a scenario's epoch chain lives in one WAL.
struct ShardKey {
  std::string city;
  std::string scenario;

  /// Canonical form fed to the placement hash.
  std::string Canonical() const { return city + "/" + scenario; }
};

class QueryRouter {
 public:
  struct Options {
    /// Distinct backends tried per request before giving up.
    int max_attempts = 3;
    double connect_timeout_s = 5.0;
    double io_timeout_s = 30.0;
  };

  struct Stats {
    uint64_t queries = 0;
    uint64_t mutations = 0;
    uint64_t failovers = 0;  // retries on another backend
    uint64_t redials = 0;    // reconnects to a backend
  };

  /// `shards[i]` is shard i's backend list; `shards[i][0]` is its primary.
  QueryRouter(std::vector<std::vector<Backend>> shards, Options options);
  // Defaulted-argument form spelled as a delegating overload: GCC defers
  // nested-class member initializers to the end of the enclosing class, so
  // Options{} cannot appear in a default argument here.
  explicit QueryRouter(std::vector<std::vector<Backend>> shards)
      : QueryRouter(std::move(shards), Options()) {}

  /// Stable placement: XxHash64 of the canonical key, mod `num_shards`.
  static size_t ShardOf(const ShardKey& key, size_t num_shards);

  size_t num_shards() const { return shards_.size(); }
  Stats stats() const { return stats_; }

  /// Routes a read to `key`'s shard, failing over across its backends on
  /// kUnavailable. The effective min_sequence is the max of the caller's
  /// floor and the router's read-your-writes floor for that shard.
  util::Result<QueryResultMsg> Query(const ShardKey& key,
                                     const serve::AqRequest& request,
                                     uint64_t min_sequence = 0);

  /// Routes a mutation to `key`'s primary (no failover: a write that may
  /// or may not have landed must surface, not silently retry) and raises
  /// the shard's read floor on success.
  util::Result<MutateResultMsg> AddPoi(const ShardKey& key,
                                       synth::PoiCategory category,
                                       const geo::Point& position);
  util::Result<MutateResultMsg> RemovePoi(const ShardKey& key,
                                          uint32_t poi_id);
  util::Result<MutateResultMsg> SetInterval(const ShardKey& key,
                                            const gtfs::TimeInterval& interval);

  /// Timetable disruptions — routed to the shard primary like every write.
  util::Result<MutateResultMsg> SuspendRoute(const ShardKey& key,
                                             uint32_t route);
  util::Result<MutateResultMsg> CloseStop(const ShardKey& key, uint32_t stop);
  util::Result<MutateResultMsg> ScaleHeadway(const ShardKey& key,
                                             uint32_t route, uint32_t factor);
  util::Result<MutateResultMsg> SetFare(const ShardKey& key, uint32_t route,
                                        double fare);
  util::Result<MutateResultMsg> ScaleWalkSpeed(const ShardKey& key,
                                               double factor);

 private:
  struct Slot {
    Backend backend;
    AqClient client;  // dialed lazily; dropped on transport errors
  };

  /// The connected client for shard/replica, dialing if necessary.
  util::Result<AqClient*> Acquire(size_t shard, size_t replica);
  util::Result<MutateResultMsg> MutateOnPrimary(
      const ShardKey& key, const wal::MutationRecord& record);

  std::vector<std::vector<Slot>> shards_;
  /// Round-robin read cursor per shard (spreads load across replicas).
  std::vector<size_t> next_replica_;
  /// Read-your-writes floor per shard.
  std::vector<uint64_t> min_sequence_;
  Options options_;
  Stats stats_;
};

}  // namespace staq::net
