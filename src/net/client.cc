#include "net/client.h"

#include <utility>

namespace staq::net {

util::Result<AqClient> AqClient::Connect(const std::string& host,
                                         uint16_t port, double timeout_s) {
  auto socket = net::Connect(host, port, timeout_s);
  if (!socket.ok()) return socket.status();

  AqClient client;
  client.socket_ = std::move(socket).value();

  Hello hello;
  std::vector<uint8_t> payload;
  EncodeHello(hello, &payload);
  auto ack_frame = client.Call(MsgType::kHello, payload);
  if (!ack_frame.ok()) return ack_frame.status();
  if (ack_frame.value().type != MsgType::kHelloAck) {
    return util::Status::InvalidArgument("handshake answered with " +
                                         std::string(MsgTypeName(
                                             ack_frame.value().type)));
  }
  store::ByteReader in(ack_frame.value().payload.data(),
                       ack_frame.value().payload.size());
  HelloAck ack;
  if (!DecodeHelloAck(&in, &ack)) {
    return util::Status::InvalidArgument("malformed HelloAck");
  }
  client.hello_sequence_ = ack.sequence;
  return client;
}

util::Result<Frame> AqClient::Call(MsgType type,
                                   const std::vector<uint8_t>& payload) {
  if (!socket_.valid()) {
    return util::Status::Unavailable("client is not connected");
  }
  const uint64_t request_id = next_request_id_++;
  util::Status sent = socket_.SendFrame(type, request_id, payload);
  if (!sent.ok()) {
    // The connection's state is unknown after a half-written frame; drop
    // it so the next call fails fast instead of desynchronising.
    socket_.Close();
    return sent;
  }
  auto frame = socket_.RecvFrame();
  if (!frame.ok()) {
    socket_.Close();
    return frame.status();
  }
  if (frame.value().request_id != request_id) {
    socket_.Close();
    return util::Status::Internal("response for a different request id");
  }
  if (frame.value().type == MsgType::kError) {
    store::ByteReader in(frame.value().payload.data(),
                         frame.value().payload.size());
    util::Status remote;
    if (!DecodeErrorMsg(&in, &remote) || remote.ok()) {
      return util::Status::Internal("malformed Error frame");
    }
    return remote;
  }
  return frame;
}

util::Result<QueryResultMsg> AqClient::Query(const serve::AqRequest& request,
                                             uint64_t min_sequence) {
  QueryMsg msg;
  msg.request = request;
  msg.min_sequence = min_sequence;
  std::vector<uint8_t> payload;
  EncodeQueryMsg(msg, &payload);
  auto frame = Call(MsgType::kQuery, payload);
  if (!frame.ok()) return frame.status();
  if (frame.value().type != MsgType::kQueryResult) {
    return util::Status::InvalidArgument("query answered with " +
                                         std::string(MsgTypeName(
                                             frame.value().type)));
  }
  store::ByteReader in(frame.value().payload.data(),
                       frame.value().payload.size());
  QueryResultMsg result;
  if (!DecodeQueryResultMsg(&in, &result) || !in.exhausted()) {
    return util::Status::DataLoss("malformed QueryResult payload");
  }
  return result;
}

util::Result<MutateResultMsg> AqClient::Mutate(
    const wal::MutationRecord& record) {
  std::vector<uint8_t> payload;
  EncodeMutationRecord(record, &payload);
  auto frame = Call(MsgType::kMutate, payload);
  if (!frame.ok()) return frame.status();
  if (frame.value().type != MsgType::kMutateResult) {
    return util::Status::InvalidArgument("mutation answered with " +
                                         std::string(MsgTypeName(
                                             frame.value().type)));
  }
  store::ByteReader in(frame.value().payload.data(),
                       frame.value().payload.size());
  MutateResultMsg result;
  if (!DecodeMutateResultMsg(&in, &result) || !in.exhausted()) {
    return util::Status::DataLoss("malformed MutateResult payload");
  }
  return result;
}

util::Result<MutateResultMsg> AqClient::AddPoi(synth::PoiCategory category,
                                               const geo::Point& position) {
  // sequence/poi_id 0: the primary assigns both (see net/wire.h).
  return Mutate(wal::MutationRecord::AddPoi(0, category, position, 0));
}

util::Result<MutateResultMsg> AqClient::RemovePoi(uint32_t poi_id) {
  return Mutate(wal::MutationRecord::RemovePoi(0, poi_id));
}

util::Result<MutateResultMsg> AqClient::SetInterval(
    const gtfs::TimeInterval& interval) {
  return Mutate(wal::MutationRecord::SetInterval(0, interval));
}

util::Result<MutateResultMsg> AqClient::SuspendRoute(uint32_t route) {
  return Mutate(wal::MutationRecord::SuspendRoute(0, route));
}

util::Result<MutateResultMsg> AqClient::CloseStop(uint32_t stop) {
  return Mutate(wal::MutationRecord::CloseStop(0, stop));
}

util::Result<MutateResultMsg> AqClient::ScaleHeadway(uint32_t route,
                                                     uint32_t factor) {
  return Mutate(wal::MutationRecord::ScaleHeadway(0, route, factor));
}

util::Result<MutateResultMsg> AqClient::SetFare(uint32_t route, double fare) {
  return Mutate(wal::MutationRecord::SetFare(0, route, fare));
}

util::Result<MutateResultMsg> AqClient::ScaleWalkSpeed(double factor) {
  return Mutate(wal::MutationRecord::ScaleWalkSpeed(0, factor));
}

util::Result<InfoResultMsg> AqClient::Info() {
  auto frame = Call(MsgType::kInfo, {});
  if (!frame.ok()) return frame.status();
  if (frame.value().type != MsgType::kInfoResult) {
    return util::Status::InvalidArgument("info answered with " +
                                         std::string(MsgTypeName(
                                             frame.value().type)));
  }
  store::ByteReader in(frame.value().payload.data(),
                       frame.value().payload.size());
  InfoResultMsg result;
  if (!DecodeInfoResultMsg(&in, &result) || !in.exhausted()) {
    return util::Status::DataLoss("malformed InfoResult payload");
  }
  return result;
}

}  // namespace staq::net
