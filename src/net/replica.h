// Replica — snapshot + WAL-replay replication for the serving tier.
//
// A replica is an AqServer bootstrapped into the primary's history plus a
// tail thread that keeps it there:
//
//   1. Bootstrap: warm-start from the primary's exported snapshot (the
//      snapshot's source sequence becomes the replica's base), then replay
//      every WAL record past that sequence (ReplayLog).
//   2. Tail: poll the log for newly durable records and apply each through
//      AqServer::ApplyMutation. Replay is bit-identical (edit-stable
//      TODAM keyed on the logged stable POI ids), so the replica's answers
//      equal the primary's at every sequence — the distributed e2e asserts
//      this byte for byte.
//   3. Serve: a read-only AqTcpServer (mutations are refused; they belong
//      to the primary). Epoch-consistent reads work via min_sequence: a
//      replica that has not caught up to a query's floor answers
//      kUnavailable and the router goes elsewhere.
//
// The log travels as shared storage (the replica reads the primary's WAL
// directory — the file-log-store model): there is no bespoke streaming
// protocol to trust, the WAL's own checksums and sequence chain are the
// transfer integrity check, and a replica can bootstrap while the primary
// keeps appending (torn tails are simply "not durable yet").
//
// Divergence (kAborted from ApplyMutation — a replayed AddPoi landed on a
// different POI id, or a sequence gap) permanently stops the tail: the
// replica keeps serving its last consistent state, reports diverged(), and
// falls behind until an operator rebuilds it from a fresh snapshot.
// Serving a fork would be silently wrong everywhere; stale-but-consistent
// is visible and routable-around.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "net/server.h"
#include "serve/server.h"
#include "wal/wal.h"

namespace staq::net {

/// Replays every WAL record in `wal_dir` past `server->sequence()` into
/// the server. Records at or below the server's sequence are skipped (the
/// snapshot already contains them); a torn tail ends the replay cleanly.
/// Returns the first replay error (kAborted = divergence, kDataLoss =
/// unreadable log) — shared by replica bootstrap and primary restart.
util::Status ReplayLog(serve::AqServer* server, const std::string& wal_dir);

class Replica {
 public:
  struct Options {
    /// Bootstrap snapshot (primary's ExportSnapshot output). Required: a
    /// replica must start from the primary's history, not a cold build of
    /// its own (cold builds have no sequence to chain the log onto).
    std::string snapshot_path;
    /// The primary's WAL directory to replay and tail.
    std::string wal_dir;
    /// Tail poll cadence. Mutations are rare next to queries; tens of
    /// milliseconds keeps replicas fresh without hammering the directory.
    double poll_interval_s = 0.05;
    serve::AqServer::Options serve;
    /// allow_mutations is forced to false whatever the caller sets.
    AqTcpServer::Options tcp;
  };

  /// Builds the server (warm start), replays the log, starts the tail
  /// thread and the TCP front end. `city`/`interval` are the cold-build
  /// fallback inputs the AqServer constructor requires; a replica whose
  /// snapshot fails to load refuses to start (kFailedPrecondition) instead
  /// of silently serving an unrelated cold build.
  static util::Result<std::unique_ptr<Replica>> Start(
      synth::City city, const gtfs::TimeInterval& interval, Options options);

  ~Replica();
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Stops the TCP server and the tail thread. Idempotent.
  void Stop();

  serve::AqServer& server() { return *server_; }
  uint16_t port() const { return tcp_->port(); }
  uint64_t sequence() const { return server_->sequence(); }
  bool diverged() const { return diverged_.load(std::memory_order_acquire); }

  /// Blocks until the replica has applied at least `target_sequence`
  /// (kDeadlineExceeded after `timeout_s`; kAborted once diverged).
  util::Status CatchUp(uint64_t target_sequence, double timeout_s);

 private:
  Replica() = default;
  void TailLoop();

  Options options_;
  std::unique_ptr<serve::AqServer> server_;
  std::unique_ptr<AqTcpServer> tcp_;
  std::thread tail_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> diverged_{false};
};

}  // namespace staq::net
