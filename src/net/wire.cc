#include "net/wire.h"

#include <cstring>

#include "ml/model_factory.h"
#include "util/hash.h"

namespace staq::net {

namespace {

/// Codes a decoder accepts from the wire. Must track the StatusCode enum;
/// the status test's round-trip suite keeps the two honest.
inline constexpr uint8_t kMaxStatusCode =
    static_cast<uint8_t>(util::StatusCode::kAborted);

bool DecodeDouble(store::ByteReader* in, double* out) {
  return in->ReadFixed(out);
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "Hello";
    case MsgType::kHelloAck:
      return "HelloAck";
    case MsgType::kQuery:
      return "Query";
    case MsgType::kQueryResult:
      return "QueryResult";
    case MsgType::kMutate:
      return "Mutate";
    case MsgType::kMutateResult:
      return "MutateResult";
    case MsgType::kInfo:
      return "Info";
    case MsgType::kInfoResult:
      return "InfoResult";
    case MsgType::kError:
      return "Error";
  }
  return "unknown";
}

void EncodeFrame(MsgType type, uint64_t request_id,
                 const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  body.reserve(1 + 10 + payload.size());
  body.push_back(static_cast<uint8_t>(type));
  store::PutVarint64(&body, request_id);
  body.insert(body.end(), payload.begin(), payload.end());

  out->clear();
  out->reserve(kFrameHeaderSize + body.size());
  store::PutFixed(out, kFrameMagic);
  store::PutFixed(out, static_cast<uint32_t>(body.size()));
  store::PutFixed(out, util::XxHash64(body.data(), body.size()));
  out->insert(out->end(), body.begin(), body.end());
}

util::Status ParseFrameHeader(const uint8_t header[kFrameHeaderSize],
                              uint32_t* body_len, uint64_t* checksum) {
  store::ByteReader in(header, kFrameHeaderSize);
  uint32_t magic = 0;
  (void)in.ReadFixed(&magic);
  (void)in.ReadFixed(body_len);
  (void)in.ReadFixed(checksum);
  if (magic != kFrameMagic) {
    return util::Status::InvalidArgument(
        "peer is not speaking the staq wire protocol (bad frame magic)");
  }
  if (*body_len == 0 || *body_len > kMaxFrameBody) {
    return util::Status::InvalidArgument("frame body length out of bounds");
  }
  return util::Status::OK();
}

util::Result<Frame> ParseFrameBody(const uint8_t* body, size_t size,
                                   uint64_t checksum) {
  if (util::XxHash64(body, size) != checksum) {
    return util::Status::DataLoss("frame checksum mismatch");
  }
  store::ByteReader in(body, size);
  uint8_t type = 0;
  Frame frame;
  if (!in.ReadFixed(&type) || !in.ReadVarint64(&frame.request_id)) {
    return util::Status::InvalidArgument("truncated frame body");
  }
  if (type < static_cast<uint8_t>(MsgType::kHello) ||
      type > static_cast<uint8_t>(MsgType::kError)) {
    return util::Status::InvalidArgument("unknown message type");
  }
  frame.type = static_cast<MsgType>(type);
  frame.payload.assign(in.cursor(), in.cursor() + in.remaining());
  return frame;
}

// --- handshake -------------------------------------------------------------

void EncodeHello(const Hello& hello, std::vector<uint8_t>* out) {
  store::PutVarint64(out, hello.protocol_version);
}

bool DecodeHello(store::ByteReader* in, Hello* out) {
  uint64_t version = 0;
  if (!in->ReadVarint64(&version) || version == 0 ||
      version > std::numeric_limits<uint32_t>::max()) {
    return false;
  }
  out->protocol_version = static_cast<uint32_t>(version);
  return true;
}

void EncodeHelloAck(const HelloAck& ack, std::vector<uint8_t>* out) {
  store::PutVarint64(out, ack.protocol_version);
  store::PutVarint64(out, ack.sequence);
}

bool DecodeHelloAck(store::ByteReader* in, HelloAck* out) {
  uint64_t version = 0;
  if (!in->ReadVarint64(&version) || version == 0 ||
      version > std::numeric_limits<uint32_t>::max() ||
      !in->ReadVarint64(&out->sequence)) {
    return false;
  }
  out->protocol_version = static_cast<uint32_t>(version);
  return true;
}

// --- query -----------------------------------------------------------------

void EncodeQueryMsg(const QueryMsg& msg, std::vector<uint8_t>* out) {
  const serve::AqRequest& r = msg.request;
  store::PutVarint64(out, msg.min_sequence);
  out->push_back(static_cast<uint8_t>(r.category));
  out->push_back(r.options.exact ? 1 : 0);
  store::PutFixed(out, r.options.beta);
  out->push_back(static_cast<uint8_t>(r.options.model));
  out->push_back(static_cast<uint8_t>(r.options.cost));
  store::PutFixed(out, r.options.gravity.decay_scale_m);
  store::PutFixed(out, r.options.gravity.keep_scale);
  store::PutVarint64(out,
                     static_cast<uint64_t>(r.options.gravity.sample_rate_per_hour));
  store::PutFixed(out, r.options.gac.lambda_tan);
  store::PutFixed(out, r.options.gac.lambda_wt);
  store::PutFixed(out, r.options.gac.lambda_ivt);
  store::PutFixed(out, r.options.gac.lambda_et);
  store::PutFixed(out, r.options.gac.transfer_penalty_s);
  store::PutFixed(out, r.options.gac.value_of_time);
  store::PutVarint64(out, r.options.seed);
  store::PutFixed(out, r.deadline_s);
}

bool DecodeQueryMsg(store::ByteReader* in, QueryMsg* out) {
  *out = QueryMsg();
  serve::AqRequest& r = out->request;
  uint8_t category = 0, exact = 0, model = 0, cost = 0;
  uint64_t sample_rate = 0;
  if (!in->ReadVarint64(&out->min_sequence) || !in->ReadFixed(&category) ||
      category >= synth::kNumPoiCategories || !in->ReadFixed(&exact) ||
      exact > 1 || !DecodeDouble(in, &r.options.beta) ||
      !in->ReadFixed(&model) || model >= ml::kNumModelKinds ||
      !in->ReadFixed(&cost) ||
      cost > static_cast<uint8_t>(core::CostKind::kGeneralizedCost) ||
      !DecodeDouble(in, &r.options.gravity.decay_scale_m) ||
      !DecodeDouble(in, &r.options.gravity.keep_scale) ||
      !in->ReadVarint64(&sample_rate) ||
      sample_rate > std::numeric_limits<int>::max() ||
      !DecodeDouble(in, &r.options.gac.lambda_tan) ||
      !DecodeDouble(in, &r.options.gac.lambda_wt) ||
      !DecodeDouble(in, &r.options.gac.lambda_ivt) ||
      !DecodeDouble(in, &r.options.gac.lambda_et) ||
      !DecodeDouble(in, &r.options.gac.transfer_penalty_s) ||
      !DecodeDouble(in, &r.options.gac.value_of_time) ||
      !in->ReadVarint64(&r.options.seed) || !DecodeDouble(in, &r.deadline_s)) {
    return false;
  }
  r.category = static_cast<synth::PoiCategory>(category);
  r.options.exact = exact == 1;
  r.options.model = static_cast<ml::ModelKind>(model);
  r.options.cost = static_cast<core::CostKind>(cost);
  r.options.gravity.sample_rate_per_hour = static_cast<int>(sample_rate);
  return true;
}

void EncodeQueryResultMsg(const QueryResultMsg& msg,
                          std::vector<uint8_t>* out) {
  const core::AccessQueryResult& r = msg.result;
  store::PutVarint64(out, msg.sequence);
  store::PutFixedColumn(out, r.mac);
  store::PutFixedColumn(out, r.acsd);
  store::PutDeltaColumn(out, r.classes);
  store::PutFixed(out, r.mean_mac);
  store::PutFixed(out, r.mean_acsd);
  store::PutFixed(out, r.fairness);
  store::PutFixed(out, r.population_fairness);
  store::PutFixed(out, r.vulnerable_fairness);
  store::PutVarint64(out, r.spqs);
  store::PutFixed(out, r.elapsed_s);
  store::PutVarint64(out, r.gravity_trips);
}

bool DecodeQueryResultMsg(store::ByteReader* in, QueryResultMsg* out) {
  *out = QueryResultMsg();
  core::AccessQueryResult& r = out->result;
  return in->ReadVarint64(&out->sequence) &&
         store::ReadFixedColumn(in, &r.mac) &&
         store::ReadFixedColumn(in, &r.acsd) &&
         store::ReadDeltaColumn(in, &r.classes) &&
         DecodeDouble(in, &r.mean_mac) && DecodeDouble(in, &r.mean_acsd) &&
         DecodeDouble(in, &r.fairness) &&
         DecodeDouble(in, &r.population_fairness) &&
         DecodeDouble(in, &r.vulnerable_fairness) &&
         in->ReadVarint64(&r.spqs) && DecodeDouble(in, &r.elapsed_s) &&
         in->ReadVarint64(&r.gravity_trips);
}

// --- mutation --------------------------------------------------------------

void EncodeMutateResultMsg(const MutateResultMsg& msg,
                           std::vector<uint8_t>* out) {
  const serve::ScenarioStore::MutationReport& rep = msg.report;
  store::PutVarint64(out, msg.sequence);
  store::PutVarint64(out, rep.epoch);
  store::PutVarint64(out, rep.poi_id);
  store::PutVarint64(out, rep.states_patched);
  store::PutVarint64(out, rep.states_shared);
  store::PutVarint64(out, rep.zones_relabeled);
  store::PutVarint64(out, rep.zones_total);
  store::PutVarint64(out, rep.spqs);
  store::PutFixed(out, rep.seconds);
}

bool DecodeMutateResultMsg(store::ByteReader* in, MutateResultMsg* out) {
  *out = MutateResultMsg();
  serve::ScenarioStore::MutationReport& rep = out->report;
  uint64_t poi_id = 0, patched = 0, shared = 0, relabeled = 0, total = 0;
  if (!in->ReadVarint64(&out->sequence) || !in->ReadVarint64(&rep.epoch) ||
      !in->ReadVarint64(&poi_id) || !in->ReadVarint64(&patched) ||
      !in->ReadVarint64(&shared) || !in->ReadVarint64(&relabeled) ||
      !in->ReadVarint64(&total) || !in->ReadVarint64(&rep.spqs) ||
      !DecodeDouble(in, &rep.seconds)) {
    return false;
  }
  const uint64_t u32_max = std::numeric_limits<uint32_t>::max();
  if (poi_id > u32_max || patched > u32_max || shared > u32_max ||
      relabeled > u32_max || total > u32_max) {
    return false;
  }
  rep.poi_id = static_cast<uint32_t>(poi_id);
  rep.states_patched = static_cast<uint32_t>(patched);
  rep.states_shared = static_cast<uint32_t>(shared);
  rep.zones_relabeled = static_cast<uint32_t>(relabeled);
  rep.zones_total = static_cast<uint32_t>(total);
  return true;
}

// --- info ------------------------------------------------------------------

void EncodeInfoResultMsg(const InfoResultMsg& msg, std::vector<uint8_t>* out) {
  store::PutVarint64(out, msg.sequence);
  store::PutVarint64(out, msg.epoch);
}

bool DecodeInfoResultMsg(store::ByteReader* in, InfoResultMsg* out) {
  *out = InfoResultMsg();
  return in->ReadVarint64(&out->sequence) && in->ReadVarint64(&out->epoch);
}

// --- errors ----------------------------------------------------------------

void EncodeErrorMsg(const util::Status& status, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(status.code()));
  store::PutLengthPrefixed(out, status.message());
}

bool DecodeErrorMsg(store::ByteReader* in, util::Status* out) {
  uint8_t code = 0;
  std::string message;
  if (!in->ReadFixed(&code) || !in->ReadLengthPrefixed(&message)) {
    return false;
  }
  if (code > kMaxStatusCode) {
    // A newer peer's code we do not know: keep the message, degrade the
    // category instead of rejecting the whole frame.
    *out = util::Status::Internal("remote error (unknown code): " + message);
    return true;
  }
  *out = util::Status::FromCode(static_cast<util::StatusCode>(code),
                                std::move(message));
  return true;
}

}  // namespace staq::net
